//! # magellan-par — the shared work-stealing chunk executor
//!
//! The paper's production stage exists to "scale the resulting workflow out
//! on multiple cores" (§4.1, Table 2). This crate is the substrate every
//! Magellan hot path runs on: blocking, sim-joins, feature extraction,
//! forest training, batch prediction, and Falcon's active-learning scoring
//! all fan out through [`chunk_map`].
//!
//! ## Execution model
//!
//! The input index space `0..len` is cut into fixed chunks. Workers (the
//! calling thread plus `n_workers - 1` scoped threads) *race on a shared
//! atomic chunk cursor*: whoever is idle claims the next unprocessed chunk.
//! This is work stealing in its simplest deterministic form — a fast worker
//! "steals" chunks that static partitioning would have assigned to a slow
//! one, so stragglers never serialize the tail of a phase.
//!
//! ## The determinism contract
//!
//! Every chunk's output is written into a slot indexed by chunk id and the
//! slots are concatenated **in chunk order** after the scope joins. As long
//! as the chunk function is a pure function of the index range (no shared
//! mutable state, no RNG keyed on the worker), the merged output is
//! **bit-identical to the serial run for any worker count and any chunk
//! size** — `n_workers` and scheduling jitter can change only *who* computes
//! a chunk and *when*, never *what* it computes or *where* it lands.
//! `crates/core/tests/par_determinism.rs` enforces this end to end for
//! every routed hot path.
//!
//! Callers opt in per crate:
//!
//! * `magellan-simjoin` — probe-side partitioning of `join_tokenized`;
//! * `magellan-block` — per-left-row candidate generation via
//!   `Blocker::block_par`;
//! * `magellan-features` — pair chunks in `extract_feature_matrix_par`;
//! * `magellan-ml` — per-tree forest training and batch `predict_proba`;
//! * `magellan-falcon` — the example-scoring loop of active learning;
//! * `magellan-core` — `ProductionExecutor` drives whole workflows and
//!   surfaces the per-phase [`ParStats`] counters in its report.
//!
//! ## Panic containment & self-healing
//!
//! Every chunk attempt runs under `catch_unwind`. A chunk that panics —
//! whether from an injected fault ([`ParConfig::faults`], a
//! `magellan-faults` chunk-fault slice) or a genuine bug — is retried by
//! the same worker up to [`ParConfig::chunk_retries`] times. If a chunk
//! exhausts its in-worker retries the worker *dies* (stops claiming work,
//! modelling a crashed thread); surviving workers keep draining the chunk
//! cursor, and after the scope joins the calling thread serially re-runs
//! every still-missing chunk with fresh attempt numbers. Only a chunk
//! that keeps panicking through the serial fallback escapes — that is a
//! deterministic bug, and hiding it would be worse than crashing.
//!
//! Because the chunk function is pure and injection is keyed on
//! `(region, chunk, attempt)` — never on which worker runs the chunk —
//! **recovered output is bit-identical to the fault-free run**, preserving
//! the determinism contract under chaos. Recovery is surfaced in
//! [`ParStats`]: `panics_contained`, `chunks_recovered`, `worker_deaths`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use magellan_obs::EvVal;

pub use magellan_faults::ChunkFaults;

/// The payload of a fault-plan-injected chunk panic. Public so panic
/// hooks (see [`silence_contained_panics`]) can recognize and mute it.
#[derive(Debug)]
pub struct InjectedFault {
    /// Chunk the fault fired in.
    pub chunk: usize,
    /// 0-based attempt that was killed.
    pub attempt: u32,
}

/// Install a process-wide panic hook that stays silent for
/// [`InjectedFault`] payloads and delegates everything else to the
/// previous hook. Chaos tests call this once so thousands of injected,
/// *contained* panics do not flood stderr; genuine panics still print.
pub fn silence_contained_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

/// How a parallel region should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads, including the calling thread (≥ 1).
    pub n_workers: usize,
    /// Items per chunk; `None` picks a size that gives each worker several
    /// chunks to steal (`len / (8 · n_workers)`, clamped to ≥ 1).
    pub chunk_size: Option<usize>,
    /// In-worker retries per chunk after a contained panic before the
    /// worker gives up on the chunk and dies.
    pub chunk_retries: u32,
    /// Deterministic chunk-panic injector (production: `ChunkFaults::none()`).
    pub faults: ChunkFaults,
}

impl ParConfig {
    /// Serial execution (one worker, everything in one chunk per default).
    pub fn serial() -> Self {
        ParConfig {
            n_workers: 1,
            chunk_size: None,
            chunk_retries: 3,
            faults: ChunkFaults::none(),
        }
    }

    /// `n` workers with the default chunk policy.
    pub fn workers(n: usize) -> Self {
        ParConfig {
            n_workers: n.max(1),
            ..ParConfig::serial()
        }
    }

    /// Override the chunk size.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk.max(1));
        self
    }

    /// Enable deterministic chunk-fault injection for this region.
    pub fn with_faults(mut self, faults: ChunkFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Chunk size used for an input of `len` items.
    pub fn effective_chunk_size(&self, len: usize) -> usize {
        match self.chunk_size {
            Some(c) => c.max(1),
            // ~8 chunks per worker: enough slack for stealing to even out
            // skew, few enough that per-chunk overhead stays invisible.
            None => (len / (8 * self.n_workers)).max(1),
        }
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::serial()
    }
}

/// Counters describing one parallel region — the instrumentation the
/// production executor surfaces per phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParStats {
    /// Workers that participated.
    pub n_workers: usize,
    /// Items in the input index space.
    pub items: usize,
    /// Chunks the input was cut into.
    pub chunks_total: usize,
    /// Chunks executed by a worker other than their static-partition owner
    /// (the "stolen" work that dynamic scheduling moved off stragglers).
    pub chunks_stolen: usize,
    /// Panics caught by per-chunk `catch_unwind` (injected or genuine).
    pub panics_contained: usize,
    /// Chunks that panicked at least once but ultimately produced their
    /// output (in-worker retry or serial fallback).
    pub chunks_recovered: usize,
    /// Workers that died (abandoned the claim loop after a chunk
    /// exhausted its in-worker retries).
    pub worker_deaths: usize,
    /// Busy wall-clock per worker (time inside the chunk function).
    pub worker_busy: Vec<Duration>,
    /// Wall-clock of the whole region, including merge.
    pub elapsed: Duration,
    /// Prepared-cache counters of the region (zero for regions that don't
    /// run on a record-preparation cache). Filled by the interned
    /// feature-extraction layer in `magellan-features`.
    pub cache: CacheStats,
    /// Sim-join pruning-cascade counters of the region (zero for regions
    /// that aren't similarity joins). Filled by the CSR join engine in
    /// `magellan-simjoin`.
    pub join: JoinStats,
}

/// Effectiveness counters of a record-preparation (tokenize-once) cache:
/// how much per-pair string work the prepared layer absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `(record, attribute × tokenizer)` cells prepared (normalized +
    /// tokenized + interned exactly once each).
    pub records_prepared: usize,
    /// Tokenizer invocations actually performed while preparing.
    pub tokenize_calls: usize,
    /// Tokenizer invocations the per-pair scalar path would have
    /// performed for the same workload (2 × pairs × token features),
    /// minus the ones the cache actually spent — i.e. work saved.
    pub tokenize_calls_saved: usize,
    /// Prepared-cell requests (one per referenced record × combination
    /// per extraction call).
    pub lookups: usize,
    /// Requests served by an already-prepared cell (cross-call /
    /// cross-phase reuse).
    pub hits: usize,
    /// Distinct tokens in the shared interner after the region.
    pub interner_tokens: usize,
}

impl CacheStats {
    /// Fraction of prepared-cell requests served from cache, in `[0, 1]`.
    /// Zero-lookup regions report `0.0`, never `NaN`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Publish these cache counters into the ambient `magellan-obs`
    /// registry under `magellan_features_cache_*` names (the struct lives
    /// here because `ParStats` carries it; the metrics belong to the
    /// feature-cache subsystem). All fields are scheduling-independent,
    /// so everything is published in both clock modes. No-op when the
    /// counters are all zero or no recorder is installed.
    pub fn publish(&self) {
        if *self == CacheStats::default() {
            return;
        }
        let Some(obs) = magellan_obs::current() else {
            return;
        };
        obs.counter_add(
            "magellan_features_cache_records_prepared_total",
            self.records_prepared as u64,
        );
        obs.counter_add(
            "magellan_features_cache_tokenize_calls_total",
            self.tokenize_calls as u64,
        );
        obs.counter_add(
            "magellan_features_cache_tokenize_calls_saved_total",
            self.tokenize_calls_saved as u64,
        );
        obs.counter_add("magellan_features_cache_lookups_total", self.lookups as u64);
        obs.counter_add("magellan_features_cache_hits_total", self.hits as u64);
        obs.gauge_set(
            "magellan_features_interner_tokens",
            self.interner_tokens as f64,
        );
    }

    /// Fold another region's cache counters into this one. Counters sum;
    /// `interner_tokens` is a high-water mark (regions share one
    /// interner, so the max is the final vocabulary size).
    pub fn merge(&mut self, other: &CacheStats) {
        self.records_prepared += other.records_prepared;
        self.tokenize_calls += other.tokenize_calls;
        self.tokenize_calls_saved += other.tokenize_calls_saved;
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.interner_tokens = self.interner_tokens.max(other.interner_tokens);
    }
}

/// Pruning-cascade counters of a set-similarity join region: how many
/// candidates each filter stage of the CSR engine killed before the
/// (expensive) verification merge, and how much merge work verification
/// actually spent. The stages fire in order: size window → accumulating
/// positional filter → bounded suffix verification → exact qualification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Probe records processed (non-empty token sets on the probe side).
    pub probes: usize,
    /// Distinct `(probe, indexed)` candidate pairs generated by prefix
    /// collisions that fell inside the size window.
    pub candidates: usize,
    /// Posting entries skipped wholesale by the binary-searched size
    /// window (postings are size-sorted per token, so these are never
    /// even branched on).
    pub killed_by_size: usize,
    /// Candidates abandoned by the accumulating positional filter: their
    /// `shared-so-far + remaining-tokens` upper bound fell below the
    /// required overlap during prefix probing.
    pub killed_by_position: usize,
    /// Candidates abandoned *inside* the bounded suffix merge: the
    /// running upper bound proved the required overlap unreachable
    /// before the merge finished.
    pub killed_by_suffix: usize,
    /// Candidates whose exact overlap was fully computed (the only ones
    /// that pay a complete verification).
    pub verified: usize,
    /// Token comparison steps spent inside verification merges
    /// (bounded, galloping, and plain phases combined).
    pub verify_steps: usize,
    /// Qualifying pairs emitted.
    pub pairs: usize,
    /// Regions in which cost-based probe-side selection swapped the
    /// probe side (indexed the left collection, probed with the right).
    pub probe_swaps: usize,
    /// Verification merges answered by the merge family (the scalar
    /// reference walk — which after the PR 9 retune serves every
    /// balanced shape — or the block-branchless kernel if a caller
    /// dispatches it explicitly). Selection is a pure function of the
    /// operand lengths, so this splits [`JoinStats::verified`]
    /// deterministically.
    pub kernel_merge: usize,
    /// Verification merges answered by the galloping kernel (operand
    /// skew at or beyond the shared `GALLOP_RATIO`).
    pub kernel_gallop: usize,
    /// Verification merges answered by the bitset/popcount kernel.
    /// Zero under the default policy (the kernel measured slower than
    /// the scalar walk at every tested shape); stays dispatchable for
    /// callers that select it explicitly.
    pub kernel_bitset: usize,
    /// Edit-join candidates killed by the q-gram signature prefilter
    /// before any banded-DP cell was computed.
    pub killed_by_qgram_sig: usize,
    /// Edit-join candidates whose signatures survived the prefilter
    /// (denominator for the prefilter kill rate).
    pub qgram_sig_checked: usize,
    /// Delta-join probes: new/changed records probed against a standing
    /// index instead of a full-corpus re-join.
    pub delta_probes: usize,
    /// Signed pair deltas emitted with polarity `Added`.
    pub delta_pairs_added: usize,
    /// Signed pair deltas emitted with polarity `Removed`.
    pub delta_pairs_removed: usize,
    /// Stale postings skipped at probe time because their record was
    /// tombstoned (deleted or superseded) after the posting was packed.
    pub tombstones_skipped: usize,
    /// Postings scanned in the uncompacted tail overlay (records added
    /// since the last CSR compaction).
    pub tail_postings_scanned: usize,
    /// CSR compactions: tombstone density crossed the threshold and the
    /// postings buffer was re-packed over the live records.
    pub compactions: usize,
}

impl JoinStats {
    /// Publish these pruning-cascade counters into the ambient
    /// `magellan-obs` registry under `magellan_simjoin_*` names. All
    /// fields are pure functions of the join inputs (the cascade is
    /// deterministic), so everything is published in both clock modes.
    /// No-op when the counters are all zero or no recorder is installed.
    pub fn publish(&self) {
        if *self == JoinStats::default() {
            return;
        }
        let Some(obs) = magellan_obs::current() else {
            return;
        };
        obs.counter_add("magellan_simjoin_probes_total", self.probes as u64);
        obs.counter_add("magellan_simjoin_candidates_total", self.candidates as u64);
        obs.counter_add("magellan_simjoin_killed_by_size_total", self.killed_by_size as u64);
        obs.counter_add(
            "magellan_simjoin_killed_by_position_total",
            self.killed_by_position as u64,
        );
        obs.counter_add(
            "magellan_simjoin_killed_by_suffix_total",
            self.killed_by_suffix as u64,
        );
        obs.counter_add("magellan_simjoin_verified_total", self.verified as u64);
        obs.counter_add("magellan_simjoin_verify_steps_total", self.verify_steps as u64);
        obs.counter_add("magellan_simjoin_pairs_total", self.pairs as u64);
        obs.counter_add("magellan_simjoin_probe_swaps_total", self.probe_swaps as u64);
        obs.counter_add("magellan_simjoin_kernel_merge_total", self.kernel_merge as u64);
        obs.counter_add("magellan_simjoin_kernel_gallop_total", self.kernel_gallop as u64);
        obs.counter_add("magellan_simjoin_kernel_bitset_total", self.kernel_bitset as u64);
        obs.counter_add(
            "magellan_simjoin_killed_by_qgram_sig_total",
            self.killed_by_qgram_sig as u64,
        );
        obs.counter_add(
            "magellan_simjoin_qgram_sig_checked_total",
            self.qgram_sig_checked as u64,
        );
        obs.counter_add("magellan_simjoin_delta_probes_total", self.delta_probes as u64);
        obs.counter_add(
            "magellan_simjoin_delta_pairs_added_total",
            self.delta_pairs_added as u64,
        );
        obs.counter_add(
            "magellan_simjoin_delta_pairs_removed_total",
            self.delta_pairs_removed as u64,
        );
        obs.counter_add(
            "magellan_simjoin_tombstones_skipped_total",
            self.tombstones_skipped as u64,
        );
        obs.counter_add(
            "magellan_simjoin_tail_postings_scanned_total",
            self.tail_postings_scanned as u64,
        );
        obs.counter_add("magellan_simjoin_compactions_total", self.compactions as u64);
    }

    /// Fold another region's join counters into this one (all sums).
    pub fn merge(&mut self, other: &JoinStats) {
        self.probes += other.probes;
        self.candidates += other.candidates;
        self.killed_by_size += other.killed_by_size;
        self.killed_by_position += other.killed_by_position;
        self.killed_by_suffix += other.killed_by_suffix;
        self.verified += other.verified;
        self.verify_steps += other.verify_steps;
        self.pairs += other.pairs;
        self.probe_swaps += other.probe_swaps;
        self.kernel_merge += other.kernel_merge;
        self.kernel_gallop += other.kernel_gallop;
        self.kernel_bitset += other.kernel_bitset;
        self.killed_by_qgram_sig += other.killed_by_qgram_sig;
        self.qgram_sig_checked += other.qgram_sig_checked;
        self.delta_probes += other.delta_probes;
        self.delta_pairs_added += other.delta_pairs_added;
        self.delta_pairs_removed += other.delta_pairs_removed;
        self.tombstones_skipped += other.tombstones_skipped;
        self.tail_postings_scanned += other.tail_postings_scanned;
        self.compactions += other.compactions;
    }

    /// Fraction of generated candidates killed by the positional filter.
    pub fn position_kill_rate(&self) -> f64 {
        ratio(self.killed_by_position, self.candidates)
    }

    /// Fraction of generated candidates killed mid-verification by the
    /// bounded suffix merge.
    pub fn suffix_kill_rate(&self) -> f64 {
        ratio(self.killed_by_suffix, self.candidates)
    }

    /// Fraction of generated candidates that survived to a full exact
    /// verification.
    pub fn verify_rate(&self) -> f64 {
        ratio(self.verified, self.candidates)
    }

    /// Fraction of signature-checked edit-join candidates the q-gram
    /// signature prefilter killed before any banded-DP work.
    pub fn qgram_sig_kill_rate(&self) -> f64 {
        ratio(self.killed_by_qgram_sig, self.qgram_sig_checked)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl ParStats {
    /// Sum of per-worker busy time.
    pub fn busy_total(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// Items per second of wall-clock. Guarded against zero/degenerate
    /// durations: an instant (or merged-empty) region reports `0.0`,
    /// never `NaN` or `inf`.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 && secs.is_finite() {
            self.items as f64 / secs
        } else {
            0.0
        }
    }

    /// Parallel efficiency in `[0, 1]`: busy time ÷ (workers × wall-clock).
    /// Zero-duration or zero-worker regions report `0.0`, never `NaN`/`inf`.
    pub fn utilization(&self) -> f64 {
        let denom = self.n_workers as f64 * self.elapsed.as_secs_f64();
        if denom > 0.0 && denom.is_finite() {
            (self.busy_total().as_secs_f64() / denom).min(1.0)
        } else {
            0.0
        }
    }

    /// Publish this region's executor counters into the ambient
    /// `magellan-obs` registry under `magellan_par_*{phase="…"}` names.
    /// No-op when no recorder is installed. On a **pinned** (deterministic)
    /// recorder only scheduling-*independent* counters are published —
    /// steals, deaths, worker counts, and wall-clock depend on how the OS
    /// interleaved workers and would break the byte-identical-export
    /// contract. The struct itself keeps carrying everything, so reports
    /// and tests lose nothing.
    pub fn publish(&self, phase: &str) {
        let Some(obs) = magellan_obs::current() else {
            return;
        };
        let l = |name: &str| format!("magellan_par_{name}{{phase=\"{phase}\"}}");
        obs.counter_add(&l("items_total"), self.items as u64);
        obs.counter_add(&l("chunks_total"), self.chunks_total as u64);
        obs.counter_add(&l("panics_contained_total"), self.panics_contained as u64);
        obs.counter_add(&l("chunks_recovered_total"), self.chunks_recovered as u64);
        if !obs.is_pinned() {
            obs.counter_add(&l("chunks_stolen_total"), self.chunks_stolen as u64);
            obs.counter_add(&l("worker_deaths_total"), self.worker_deaths as u64);
            obs.gauge_set(&l("workers"), self.n_workers as f64);
            obs.gauge_set(&l("utilization"), self.utilization());
            obs.hist_record(&l("elapsed_us"), self.elapsed.as_micros() as u64);
        }
    }

    /// Fold another region's counters into this one (per-phase totals).
    pub fn merge(&mut self, other: &ParStats) {
        self.n_workers = self.n_workers.max(other.n_workers);
        self.items += other.items;
        self.chunks_total += other.chunks_total;
        self.chunks_stolen += other.chunks_stolen;
        self.panics_contained += other.panics_contained;
        self.chunks_recovered += other.chunks_recovered;
        self.worker_deaths += other.worker_deaths;
        if self.worker_busy.len() < other.worker_busy.len() {
            self.worker_busy.resize(other.worker_busy.len(), Duration::ZERO);
        }
        for (mine, theirs) in self.worker_busy.iter_mut().zip(&other.worker_busy) {
            *mine += *theirs;
        }
        self.elapsed += other.elapsed;
        self.cache.merge(&other.cache);
        self.join.merge(&other.join);
    }
}

#[derive(Default)]
struct WorkerLog {
    busy: Duration,
    stolen: usize,
    contained: usize,
    recovered: usize,
    died: bool,
}

/// The static-partition owner of chunk `c` — used only to count steals.
fn home_worker(chunk: usize, n_chunks: usize, n_workers: usize) -> usize {
    debug_assert!(chunk < n_chunks);
    chunk * n_workers / n_chunks
}

/// Map chunks of `0..len` through `f` on a work-stealing worker pool and
/// return the per-chunk outputs **in chunk order** plus region counters.
///
/// `f` must be a pure function of its index range for the determinism
/// contract to hold (see the crate docs). Panics inside `f` (and panics
/// injected via [`ParConfig::faults`]) are contained per chunk: the chunk
/// is retried in-worker, dead workers' chunks fall back to a serial
/// re-run on the calling thread, and only a chunk that *keeps* panicking
/// re-raises its original payload.
pub fn chunk_map<R, F>(len: usize, cfg: &ParConfig, f: F) -> (Vec<R>, ParStats)
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let t0 = Instant::now();
    let n_workers = cfg.n_workers.max(1);
    let chunk = cfg.effective_chunk_size(len);
    let n_chunks = len.div_ceil(chunk);
    let mut stats = ParStats {
        n_workers,
        items: len,
        chunks_total: n_chunks,
        worker_busy: vec![Duration::ZERO; n_workers],
        ..ParStats::default()
    };
    if len == 0 {
        stats.elapsed = t0.elapsed();
        return (Vec::new(), stats);
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    // Capture the ambient recorder (and the caller's current span) once,
    // so worker threads can re-install it and parent their chunk spans
    // under the calling scope. `None` = observability disabled; the whole
    // region then costs exactly one thread-local read.
    let obs_parent: Option<(magellan_obs::Obs, Option<u64>)> =
        magellan_obs::current().map(|o| (o, magellan_obs::current_span()));

    // One fault-contained attempt at a chunk. Injection fires *before* the
    // chunk function runs, so a retried chunk recomputes `f` from scratch
    // and the recovered output is bit-identical.
    let run_attempt = |c: usize, attempt: u32, range: Range<usize>| -> std::thread::Result<R> {
        catch_unwind(AssertUnwindSafe(|| {
            if cfg.faults.injects(c as u64, attempt) {
                std::panic::panic_any(InjectedFault { chunk: c, attempt });
            }
            f(range)
        }))
    };

    let worker = |w: usize| -> WorkerLog {
        // Re-install the caller's recorder on this worker thread so chunk
        // spans parent under the caller's span (deterministic ids: the
        // span path never mentions the worker).
        let _obs_guard = obs_parent
            .as_ref()
            .map(|(obs, parent)| obs.install_under(*parent));
        let mut log = WorkerLog::default();
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            if home_worker(c, n_chunks, n_workers) != w {
                log.stolen += 1;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(len);
            let chunk_span = magellan_obs::span("chunk", c as u64);
            let t = Instant::now();
            let mut attempt = 0u32;
            let completed = loop {
                // Attempts after the first get their own nested span, so
                // the trace shows chunk → retry scopes.
                let retry_span = (attempt > 0)
                    .then(|| magellan_obs::span("retry", u64::from(attempt)));
                match run_attempt(c, attempt, lo..hi) {
                    Ok(out) => {
                        drop(retry_span);
                        if attempt > 0 {
                            log.recovered += 1;
                            magellan_obs::event(
                                "chunk_recovered",
                                &[
                                    ("chunk", EvVal::U(c as u64)),
                                    ("attempts", EvVal::U(u64::from(attempt) + 1)),
                                ],
                            );
                        }
                        if let Ok(mut slot) = slots[c].lock() {
                            *slot = Some(out);
                        }
                        break true;
                    }
                    Err(payload) => {
                        drop(retry_span);
                        log.contained += 1;
                        let injected = payload.downcast_ref::<InjectedFault>().is_some();
                        magellan_obs::event(
                            if injected { "fault_injected" } else { "panic_contained" },
                            &[
                                ("chunk", EvVal::U(c as u64)),
                                ("attempt", EvVal::U(u64::from(attempt))),
                            ],
                        );
                        magellan_obs::flight_on_failure(
                            "panic_contained",
                            &[
                                ("chunk", EvVal::U(c as u64)),
                                ("attempt", EvVal::U(u64::from(attempt))),
                                ("injected", EvVal::U(u64::from(injected))),
                            ],
                        );
                        if attempt >= cfg.chunk_retries {
                            break false;
                        }
                        attempt += 1;
                        magellan_obs::event(
                            "retry_scheduled",
                            &[
                                ("chunk", EvVal::U(c as u64)),
                                ("attempt", EvVal::U(u64::from(attempt))),
                            ],
                        );
                    }
                }
            };
            log.busy += t.elapsed();
            drop(chunk_span);
            if !completed {
                // The worker dies: it abandons the claim loop, modelling a
                // crashed thread. Its unfinished chunk (and anything still
                // unclaimed if every worker dies) is picked up by the
                // serial fallback below.
                log.died = true;
                magellan_obs::event(
                    "worker_died",
                    &[("worker", EvVal::U(w as u64)), ("chunk", EvVal::U(c as u64))],
                );
                break;
            }
        }
        log
    };

    if n_workers == 1 {
        let log = worker(0);
        stats.worker_busy[0] = log.busy;
        stats.chunks_stolen = log.stolen;
        stats.panics_contained = log.contained;
        stats.chunks_recovered = log.recovered;
        stats.worker_deaths = usize::from(log.died);
    } else {
        let logs: Vec<Option<WorkerLog>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..n_workers)
                .map(|w| scope.spawn(move || worker(w)))
                .collect();
            let mut logs = vec![Some(worker(0))];
            for h in handles {
                // A join error would mean a panic escaped the containment
                // above; treat it as a worker death rather than crashing
                // the whole region.
                logs.push(h.join().ok());
            }
            logs
        });
        for (w, log) in logs.into_iter().enumerate() {
            match log {
                Some(log) => {
                    stats.worker_busy[w] = log.busy;
                    stats.chunks_stolen += log.stolen;
                    stats.panics_contained += log.contained;
                    stats.chunks_recovered += log.recovered;
                    stats.worker_deaths += usize::from(log.died);
                }
                None => stats.worker_deaths += 1,
            }
        }
    }

    // Serial fallback: re-run every chunk that never produced output
    // (abandoned by a dead worker, or never claimed because all workers
    // died). Fresh attempt numbers get past bounded injected faults; a
    // chunk that still panics carries a deterministic bug, and its final
    // payload is re-raised.
    let mut missing: Vec<usize> = Vec::new();
    for (c, slot) in slots.iter().enumerate() {
        let empty = matches!(slot.lock().as_deref(), Ok(None));
        if empty || slot.is_poisoned() {
            missing.push(c);
        }
    }
    if !missing.is_empty() {
        let t = Instant::now();
        // The fallback is the last line of defense, so it gets its own
        // fixed retry budget independent of (possibly zero) chunk_retries:
        // bounded injected faults always clear it, deterministic bugs
        // still escape after it.
        const FALLBACK_RETRIES: u32 = 8;
        for c in missing {
            let lo = c * chunk;
            let hi = (lo + chunk).min(len);
            let first_fallback = cfg.chunk_retries + 1;
            let mut attempt = first_fallback;
            // A distinct span name keeps fallback re-runs from colliding
            // with the worker-side `chunk` span of the same index.
            let _fb_span = magellan_obs::span("chunk_fallback", c as u64);
            loop {
                let retry_span = (attempt > first_fallback)
                    .then(|| magellan_obs::span("retry", u64::from(attempt)));
                match run_attempt(c, attempt, lo..hi) {
                    Ok(out) => {
                        drop(retry_span);
                        stats.chunks_recovered += 1;
                        magellan_obs::event(
                            "chunk_recovered",
                            &[
                                ("chunk", EvVal::U(c as u64)),
                                ("fallback", EvVal::U(1)),
                            ],
                        );
                        if let Ok(mut slot) = slots[c].lock() {
                            *slot = Some(out);
                        }
                        break;
                    }
                    Err(payload) => {
                        drop(retry_span);
                        stats.panics_contained += 1;
                        let injected = payload.downcast_ref::<InjectedFault>().is_some();
                        magellan_obs::event(
                            if injected { "fault_injected" } else { "panic_contained" },
                            &[
                                ("chunk", EvVal::U(c as u64)),
                                ("attempt", EvVal::U(u64::from(attempt))),
                                ("fallback", EvVal::U(1)),
                            ],
                        );
                        if attempt >= first_fallback + FALLBACK_RETRIES.max(cfg.chunk_retries) {
                            // Persistent panic: a real bug, not a fault.
                            resume_unwind(payload);
                        }
                        attempt += 1;
                    }
                }
            }
        }
        stats.worker_busy[0] += t.elapsed();
    }

    let out: Vec<R> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or(None)
                .expect("serial fallback fills every chunk")
        })
        .collect();
    stats.elapsed = t0.elapsed();
    (out, stats)
}

/// Ordered parallel map over indices: `out[i] == f(i)` for all `i`,
/// regardless of worker count.
pub fn map_indexed<T, F>(len: usize, cfg: &ParConfig, f: F) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (chunks, stats) = chunk_map(len, cfg, |range| range.map(&f).collect::<Vec<T>>());
    (chunks.into_iter().flatten().collect(), stats)
}

/// Fallible ordered parallel map: first error (by index order) wins.
pub fn try_map_indexed<T, E, F>(
    len: usize,
    cfg: &ParConfig,
    f: F,
) -> Result<(Vec<T>, ParStats), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let (chunks, stats) = chunk_map(len, cfg, |range| {
        range.map(&f).collect::<Result<Vec<T>, E>>()
    });
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_indexed_is_identity_ordered_for_any_worker_count() {
        for n_workers in [1, 2, 3, 7, 16] {
            for len in [0, 1, 2, 5, 97, 1000] {
                let cfg = ParConfig::workers(n_workers);
                let (out, stats) = map_indexed(len, &cfg, |i| i * 3 + 1);
                assert_eq!(out, (0..len).map(|i| i * 3 + 1).collect::<Vec<_>>());
                assert_eq!(stats.items, len);
                assert_eq!(stats.n_workers, n_workers);
                if len > 0 {
                    assert_eq!(
                        stats.chunks_total,
                        len.div_ceil(cfg.effective_chunk_size(len))
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_sizes_that_do_not_divide_len_still_cover_everything() {
        for chunk in [1, 2, 3, 7, 100] {
            let cfg = ParConfig::workers(4).with_chunk_size(chunk);
            let (out, stats) = map_indexed(101, &cfg, |i| i);
            assert_eq!(out, (0..101).collect::<Vec<_>>());
            assert_eq!(stats.chunks_total, 101usize.div_ceil(chunk));
        }
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let cfg = ParConfig::workers(8).with_chunk_size(3);
        let (_, _) = map_indexed(500, &cfg, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn try_map_propagates_first_error() {
        let cfg = ParConfig::workers(4).with_chunk_size(2);
        let r: Result<(Vec<usize>, ParStats), String> =
            try_map_indexed(50, &cfg, |i| if i == 33 { Err(format!("boom {i}")) } else { Ok(i) });
        assert_eq!(r.err(), Some("boom 33".to_owned()));
        let ok: Result<(Vec<usize>, ParStats), String> =
            try_map_indexed(10, &cfg, Ok);
        assert_eq!(ok.unwrap().0, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_account_for_work() {
        let cfg = ParConfig::workers(4).with_chunk_size(8);
        let (_, stats) = map_indexed(256, &cfg, |i| {
            // A little real work so busy time registers.
            (0..200).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        assert_eq!(stats.chunks_total, 32);
        assert_eq!(stats.worker_busy.len(), 4);
        assert!(stats.chunks_stolen <= stats.chunks_total);
        assert!(stats.elapsed > Duration::ZERO);
        assert!(stats.utilization() <= 1.0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ParStats {
            n_workers: 2,
            items: 10,
            chunks_total: 5,
            chunks_stolen: 1,
            panics_contained: 2,
            chunks_recovered: 1,
            worker_deaths: 1,
            worker_busy: vec![Duration::from_millis(5), Duration::from_millis(3)],
            elapsed: Duration::from_millis(6),
            cache: CacheStats {
                records_prepared: 10,
                tokenize_calls: 10,
                tokenize_calls_saved: 90,
                lookups: 10,
                hits: 0,
                interner_tokens: 40,
            },
            join: JoinStats {
                probes: 10,
                candidates: 100,
                killed_by_size: 5,
                killed_by_position: 40,
                killed_by_suffix: 20,
                verified: 40,
                verify_steps: 400,
                pairs: 8,
                probe_swaps: 1,
                kernel_merge: 30,
                kernel_gallop: 10,
                kernel_bitset: 4,
                killed_by_qgram_sig: 6,
                qgram_sig_checked: 12,
                delta_probes: 4,
                delta_pairs_added: 3,
                delta_pairs_removed: 2,
                tombstones_skipped: 7,
                tail_postings_scanned: 9,
                compactions: 1,
            },
        };
        let b = ParStats {
            n_workers: 4,
            items: 6,
            chunks_total: 2,
            chunks_stolen: 0,
            panics_contained: 1,
            chunks_recovered: 1,
            worker_deaths: 0,
            worker_busy: vec![Duration::from_millis(1); 4],
            elapsed: Duration::from_millis(2),
            cache: CacheStats {
                records_prepared: 5,
                tokenize_calls: 5,
                tokenize_calls_saved: 15,
                lookups: 10,
                hits: 5,
                interner_tokens: 25,
            },
            join: JoinStats {
                probes: 5,
                candidates: 50,
                killed_by_size: 3,
                killed_by_position: 10,
                killed_by_suffix: 10,
                verified: 30,
                verify_steps: 100,
                pairs: 4,
                probe_swaps: 0,
                kernel_merge: 25,
                kernel_gallop: 5,
                kernel_bitset: 2,
                killed_by_qgram_sig: 2,
                qgram_sig_checked: 4,
                delta_probes: 1,
                delta_pairs_added: 1,
                delta_pairs_removed: 1,
                tombstones_skipped: 3,
                tail_postings_scanned: 1,
                compactions: 1,
            },
        };
        a.merge(&b);
        assert_eq!(a.n_workers, 4);
        assert_eq!(a.items, 16);
        assert_eq!(a.chunks_total, 7);
        assert_eq!(a.panics_contained, 3);
        assert_eq!(a.chunks_recovered, 2);
        assert_eq!(a.worker_deaths, 1);
        assert_eq!(a.worker_busy.len(), 4);
        assert_eq!(a.elapsed, Duration::from_millis(8));
        // Cache counters sum; the interner size is a high-water mark.
        assert_eq!(a.cache.records_prepared, 15);
        assert_eq!(a.cache.tokenize_calls_saved, 105);
        assert_eq!(a.cache.lookups, 20);
        assert_eq!(a.cache.hits, 5);
        assert_eq!(a.cache.interner_tokens, 40);
        assert!((a.cache.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Join counters sum across regions.
        assert_eq!(a.join.probes, 15);
        assert_eq!(a.join.candidates, 150);
        assert_eq!(a.join.killed_by_size, 8);
        assert_eq!(a.join.killed_by_position, 50);
        assert_eq!(a.join.killed_by_suffix, 30);
        assert_eq!(a.join.verified, 70);
        assert_eq!(a.join.verify_steps, 500);
        assert_eq!(a.join.pairs, 12);
        assert_eq!(a.join.probe_swaps, 1);
        assert_eq!(a.join.kernel_merge, 55);
        assert_eq!(a.join.kernel_gallop, 15);
        assert_eq!(a.join.kernel_bitset, 6);
        assert_eq!(a.join.killed_by_qgram_sig, 8);
        assert_eq!(a.join.qgram_sig_checked, 16);
        assert_eq!(a.join.delta_probes, 5);
        assert_eq!(a.join.delta_pairs_added, 4);
        assert_eq!(a.join.delta_pairs_removed, 3);
        assert_eq!(a.join.tombstones_skipped, 10);
        assert_eq!(a.join.tail_postings_scanned, 10);
        assert_eq!(a.join.compactions, 2);
        assert!((a.join.qgram_sig_kill_rate() - 0.5).abs() < 1e-12);
        assert!((a.join.position_kill_rate() - 50.0 / 150.0).abs() < 1e-12);
        assert!((a.join.suffix_kill_rate() - 0.2).abs() < 1e-12);
        assert!((a.join.verify_rate() - 70.0 / 150.0).abs() < 1e-12);
        assert_eq!(JoinStats::default().position_kill_rate(), 0.0);
    }

    #[test]
    fn serial_config_is_the_default() {
        assert_eq!(ParConfig::default(), ParConfig::serial());
        assert_eq!(ParConfig::workers(0).n_workers, 1);
        assert_eq!(ParConfig::serial().faults, ChunkFaults::none());
    }

    #[test]
    fn zero_duration_stats_report_finite_rates() {
        // Default (never-run) stats: no NaN/inf from the divides.
        let stats = ParStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.utilization(), 0.0);
        // Items without elapsed time (merged-empty regions).
        let stats = ParStats {
            n_workers: 4,
            items: 100,
            chunks_total: 10,
            worker_busy: vec![Duration::from_millis(1); 4],
            elapsed: Duration::ZERO,
            ..ParStats::default()
        };
        assert!(stats.throughput().is_finite());
        assert_eq!(stats.throughput(), 0.0);
        assert!(stats.utilization().is_finite());
        assert_eq!(stats.utilization(), 0.0);
        // Zero-worker stats (empty merge target) stay finite too.
        let stats = ParStats {
            items: 5,
            elapsed: Duration::from_millis(3),
            ..ParStats::default()
        };
        assert!(stats.utilization().is_finite());
        // The empty-input region itself.
        let (out, stats) = map_indexed(0, &ParConfig::workers(3), |i: usize| i);
        assert!(out.is_empty());
        assert!(stats.throughput().is_finite());
        assert!(stats.utilization().is_finite());
    }

    #[test]
    fn injected_chunk_panics_are_contained_and_output_identical() {
        silence_contained_panics();
        let reference: Vec<usize> = (0..500).map(|i| i * 3 + 1).collect();
        let faults = magellan_faults::FaultPlan::seeded(17).chunk_faults(1);
        assert!(faults.per_mille > 0);
        for n_workers in [1, 2, 4, 8] {
            let cfg = ParConfig::workers(n_workers)
                .with_chunk_size(7)
                .with_faults(faults);
            let (out, stats) = map_indexed(500, &cfg, |i| i * 3 + 1);
            assert_eq!(out, reference, "{n_workers} workers");
            assert!(
                stats.panics_contained > 0,
                "plan should fire at this rate ({n_workers} workers)"
            );
            assert!(stats.chunks_recovered > 0);
            assert!(stats.chunks_recovered <= stats.chunks_total);
        }
    }

    #[test]
    fn worker_death_falls_back_to_serial_and_recovers() {
        silence_contained_panics();
        // chunk_retries = 0: the first contained panic kills the worker,
        // forcing the dead-worker path and the serial fallback.
        let faults = magellan_faults::FaultPlan::seeded(23).chunk_faults(2);
        for n_workers in [1, 2, 4] {
            let mut cfg = ParConfig::workers(n_workers)
                .with_chunk_size(3)
                .with_faults(faults);
            cfg.chunk_retries = 0;
            let (out, stats) = map_indexed(300, &cfg, |i| i + 7);
            assert_eq!(out, (7..307).collect::<Vec<_>>(), "{n_workers} workers");
            assert!(stats.worker_deaths > 0, "{n_workers} workers: no deaths");
            assert!(stats.chunks_recovered > 0);
        }
    }

    #[test]
    fn genuine_transient_panic_in_chunk_fn_is_retried() {
        silence_contained_panics();
        // A chunk function that panics the first time each chunk is tried
        // (simulating a transient environment failure), then succeeds.
        let first_try: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        let cfg = ParConfig::workers(4).with_chunk_size(2);
        let (out, stats) = chunk_map(100, &cfg, |range| {
            let c = range.start / 2;
            if first_try[c].fetch_add(1, Ordering::Relaxed) == 0 {
                std::panic::panic_any(InjectedFault { chunk: c, attempt: 0 });
            }
            range.sum::<usize>()
        });
        let expected: Vec<usize> = (0..50).map(|c| 2 * c * 2 + 1).collect();
        assert_eq!(out, expected);
        assert_eq!(stats.panics_contained, 50);
        assert_eq!(stats.chunks_recovered, 50);
        assert_eq!(stats.worker_deaths, 0);
    }

    #[test]
    #[should_panic(expected = "deterministic bug")]
    fn persistent_panics_escape_after_serial_fallback() {
        silence_contained_panics();
        let cfg = ParConfig::workers(2).with_chunk_size(5);
        let _ = map_indexed(20, &cfg, |i| {
            if i == 13 {
                panic!("deterministic bug");
            }
            i
        });
    }
}
