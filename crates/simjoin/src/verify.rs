//! Bounded, galloping set-overlap verification.
//!
//! Verification is the last stage of the filter-verify cascade and the
//! only one that touches full token sets. Two observations make it far
//! cheaper than a plain merge:
//!
//! 1. **Failure early-exit.** The merge tracks how many tokens remain on
//!    each side; the overlap found so far plus the smaller remainder is
//!    an upper bound on the final overlap. The moment that bound drops
//!    below the required `need`, the candidate can be abandoned — no
//!    similarity involving it can qualify.
//! 2. **Success fast-path.** Once `need` is reached the candidate is
//!    *known* to qualify, but the reported similarity must still be the
//!    **exact** overlap (bit-identical to the unbounded join), so the
//!    merge continues — just without bound bookkeeping.
//!
//! For heavily skewed set sizes (one side ≥ [`GALLOP_RATIO`]× the other)
//! the linear merge degrades to O(|long|); we instead gallop: for each
//! token of the short side, exponential search + binary search locate
//! its position in the long side in O(log gap) steps.
//!
//! ## Kernel dispatch (PR 6)
//!
//! The balanced merge itself now comes in two flavors behind
//! [`overlap_sorted_bounded`]:
//!
//! * the **preserved scalar reference** ([`overlap_sorted_bounded_scalar`])
//!   — the PR 4 branchy merge, verbatim; and
//! * a **block-branchless merge** that advances both cursors with
//!   unconditional `usize::from` compare outcomes (the
//!   `magellan_textsim::kernels` merge kernel) and re-checks the failure
//!   bound only once per [`BOUND_CHECK_INTERVAL`]-step block.
//!
//! Coarsening the bound check is *output-invisible*: the mid-merge bound
//! exits are purely a speed device — the final `n >= need` decision (and
//! the exact overlap on success) is computed identically, so the
//! `Option<usize>` result matches the scalar reference on every input.
//! Only `steps` telemetry (a deterministic function of the inputs in
//! both modes) differs between the two. Dispatch honors the process-wide
//! [`magellan_textsim::kernels::mode`] switch so benches and the oracle
//! harness can pin the scalar path.

use magellan_textsim::kernels::{self, Kernel, KernelMode};

/// Size ratio beyond which the merge switches to galloping search.
/// Equal to [`magellan_textsim::kernels::GALLOP_RATIO`] so the two
/// tiers' selection telemetry composes.
pub const GALLOP_RATIO: usize = kernels::GALLOP_RATIO;

/// Steps the block-branchless merge runs between failure-bound checks.
pub const BOUND_CHECK_INTERVAL: usize = 32;

/// Exact intersection size of two sorted deduped id sets **if** it can
/// still reach `need`; `None` as soon as the running upper bound
/// (`overlap so far + min(remaining_a, remaining_b)`) falls below
/// `need`. `steps` accumulates comparison/advance steps for telemetry
/// ([`magellan_par::JoinStats::verify_steps`]); the count is a
/// deterministic function of the inputs.
///
/// `need == 0` trivially succeeds but still computes the exact overlap
/// (callers report similarities from it).
///
/// Dispatches between the galloping kernel, the block-branchless merge,
/// and (when the process-wide kernel mode pins the scalar reference)
/// [`overlap_sorted_bounded_scalar`]. All three agree on the result for
/// every input; see the module docs for why.
#[inline]
pub fn overlap_sorted_bounded(a: &[u32], b: &[u32], need: usize, steps: &mut usize) -> Option<usize> {
    overlap_sorted_bounded_with(verify_kernel(a, b), a, b, need, steps)
}

/// [`overlap_sorted_bounded`] with the kernel choice supplied by the
/// caller. The join's verify stage already calls [`verify_kernel`] once
/// for its selection telemetry — this entry lets it reuse that choice
/// instead of re-deriving it per candidate (the dispatch arithmetic was
/// a measurable fraction of verification on tiny word-set operands).
#[inline]
pub fn overlap_sorted_bounded_with(
    kernel: Kernel,
    a: &[u32],
    b: &[u32],
    need: usize,
    steps: &mut usize,
) -> Option<usize> {
    match kernel {
        Kernel::Scalar => overlap_sorted_bounded_scalar(a, b, need, steps),
        Kernel::Gallop => {
            if a.len() <= b.len() {
                gallop_overlap(a, b, need, steps)
            } else {
                gallop_overlap(b, a, need, steps)
            }
        }
        Kernel::Bitset => bitset_overlap(a, b, need, steps),
        Kernel::Merge => merge_overlap_blocked(a, b, need, steps),
    }
}

/// Bounded overlap by the bitset/popcount kernel: the exact overlap is
/// computed word-parallel over the overlapping id span (no early exit —
/// rasterization is so much cheaper per element that a bound could only
/// slow it down), then compared against `need`. Exactness comes from
/// [`kernels::intersect_bitset`]'s kernel contract, so the result
/// matches the scalar reference on every input. Steps telemetry charges
/// one step per rasterized element — a pure function of the operands,
/// like every other kernel's count.
#[inline]
fn bitset_overlap(a: &[u32], b: &[u32], need: usize, steps: &mut usize) -> Option<usize> {
    *steps += a.len() + b.len();
    let n = kernels::intersect_bitset(a, b);
    if n >= need {
        Some(n)
    } else {
        None
    }
}

/// Which verification kernel [`overlap_sorted_bounded`] will use for
/// these operands — a pure function of the operand lengths and the
/// process-wide kernel mode, so the selection counters built from it
/// ([`magellan_par::JoinStats`]) are deterministic.
///
/// Operands whose whole merge fits inside one
/// [`BOUND_CHECK_INTERVAL`]-step block select the scalar reference:
/// block-coarsening the bound check cannot save anything there, and a
/// head-to-head grid measurement (PR 9) confirmed the per-element bound
/// — which resolves typical word-set verifications in ~1–2 steps —
/// beats running the branchless block to completion.
#[inline]
pub fn verify_kernel(a: &[u32], b: &[u32]) -> Kernel {
    if kernels::mode() == KernelMode::ScalarReference {
        return Kernel::Scalar;
    }
    // Single-block operands first: one add + compare answers the
    // overwhelmingly common word-set shape before any ratio arithmetic
    // runs. They stay on the scalar reference — measured head-to-head
    // (PR 9), its per-element failure bound resolves these merges in
    // ~1–2 steps, which beats running the branchless block to the end;
    // the branchless merge only wins once the merge is long enough to
    // amortize (multi-block shapes below).
    if a.len() + b.len() <= BOUND_CHECK_INTERVAL {
        Kernel::Scalar
    } else if a.len() >= GALLOP_RATIO.saturating_mul(b.len().max(1))
        || b.len() >= GALLOP_RATIO.saturating_mul(a.len().max(1))
    {
        Kernel::Gallop
    } else {
        // Balanced multi-block operands also stay on the scalar
        // reference. This is a measured decision (PR 9), not an
        // oversight: LLVM already compiles the reference's three-way
        // `match` into branchless select/cmov code, so the
        // "block-branchless" merge buys nothing and pays for its block
        // bookkeeping (0.89× at whole-join level on a wide sparse
        // near-duplicate grid whose verifications all run the merge to
        // completion), and rasterizing to a bitmap loses the
        // per-element failure bound entirely (0.62× on wide dense
        // grids). Both kernels remain dispatchable through
        // [`overlap_sorted_bounded_with`] and contract-tested against
        // the reference; the adaptive policy just never selects a
        // kernel that measures slower than the path it replaces.
        Kernel::Scalar
    }
}

/// Bounded overlap by block-branchless merge: both cursors advance by
/// unconditional compare outcomes ([`kernels::intersect_merge`]'s inner
/// step) and the failure bound is re-checked once per
/// [`BOUND_CHECK_INTERVAL`] steps. Same result contract as
/// [`overlap_sorted_bounded_scalar`] on every input.
#[inline]
fn merge_overlap_blocked(a: &[u32], b: &[u32], need: usize, steps: &mut usize) -> Option<usize> {
    let (la, lb) = (a.len(), b.len());
    let mut i = 0;
    let mut j = 0;
    let mut n: usize = 0;
    while i < la && j < lb {
        if n >= need {
            // Qualification settled: finish branchless, no bound checks,
            // for the exact overlap the similarity needs.
            while i < la && j < lb {
                let x = a[i];
                let y = b[j];
                n += usize::from(x == y);
                i += usize::from(x <= y);
                j += usize::from(y <= x);
                *steps += 1;
            }
            return Some(n);
        }
        // Upper bound: matched so far plus the best case on the shorter
        // remainder. Checked per block, not per element — the final
        // `n >= need` decision below is what guarantees correctness.
        if n + (la - i).min(lb - j) < need {
            return None;
        }
        let mut k = 0;
        while i < la && j < lb && k < BOUND_CHECK_INTERVAL {
            let x = a[i];
            let y = b[j];
            n += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
            k += 1;
        }
        *steps += k;
    }
    if n >= need {
        Some(n)
    } else {
        None
    }
}

/// The **preserved scalar reference** for bounded verification: the PR 4
/// branchy merge with per-element bound bookkeeping, verbatim. The
/// kernel-dispatch tests hold [`overlap_sorted_bounded`] to this
/// function's result on every input.
#[inline]
pub fn overlap_sorted_bounded_scalar(
    a: &[u32],
    b: &[u32],
    need: usize,
    steps: &mut usize,
) -> Option<usize> {
    // Gallop when one side dwarfs the other; the bound logic is the same.
    if a.len() >= GALLOP_RATIO.saturating_mul(b.len().max(1)) {
        return gallop_overlap(b, a, need, steps);
    }
    if b.len() >= GALLOP_RATIO.saturating_mul(a.len().max(1)) {
        return gallop_overlap(a, b, need, steps);
    }

    let mut i = 0;
    let mut j = 0;
    let mut n: usize = 0;
    while i < a.len() && j < b.len() {
        *steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
        if n >= need {
            // Qualification is settled; finish the merge un-checked for
            // the exact overlap the similarity needs.
            return Some(n + overlap_tail(&a[i..], &b[j..], steps));
        }
        // Upper bound: everything matched so far plus the best case on
        // the shorter remainder.
        if n + (a.len() - i).min(b.len() - j) < need {
            return None;
        }
    }
    // Loop can only end with n < need (success returns inside), and the
    // bound check guarantees need > n ⇒ unreachable unless need == 0.
    if n >= need {
        Some(n)
    } else {
        None
    }
}

/// Unbounded merge tail used once success is guaranteed.
#[inline]
fn overlap_tail(a: &[u32], b: &[u32], steps: &mut usize) -> usize {
    if a.len() >= GALLOP_RATIO.saturating_mul(b.len().max(1))
        || b.len() >= GALLOP_RATIO.saturating_mul(a.len().max(1))
    {
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        return gallop_overlap(short, long, 0, steps).unwrap_or(0);
    }
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        *steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Bounded overlap where `short` is probed against `long` by
/// exponential (galloping) + binary search. Same contract as
/// [`overlap_sorted_bounded`].
fn gallop_overlap(short: &[u32], long: &[u32], need: usize, steps: &mut usize) -> Option<usize> {
    let mut n: usize = 0;
    let mut base = 0usize; // long[..base] already consumed
    for (k, &t) in short.iter().enumerate() {
        if base >= long.len() {
            break;
        }
        // Exponential search for the first index in long[base..] with
        // long[idx] >= t.
        let tail = &long[base..];
        let mut hi = 1usize;
        while hi < tail.len() && tail[hi - 1] < t {
            *steps += 1;
            hi <<= 1;
        }
        let lo = (hi >> 1).min(tail.len());
        let hi = hi.min(tail.len());
        let off = lo + tail[lo..hi].partition_point(|&v| v < t);
        *steps += 1;
        base += off;
        if base < long.len() && long[base] == t {
            n += 1;
            base += 1;
        }
        // Upper bound: matched so far + remaining short tokens (long
        // remainder is never the binding constraint under gallop entry,
        // but take the min anyway for correctness near exhaustion).
        let rem = (short.len() - k - 1).min(long.len() - base.min(long.len()));
        if n >= need {
            // Success: finish exactly, still galloping, no bound checks.
            for &t2 in &short[k + 1..] {
                if base >= long.len() {
                    break;
                }
                let tail = &long[base..];
                let mut hi2 = 1usize;
                while hi2 < tail.len() && tail[hi2 - 1] < t2 {
                    *steps += 1;
                    hi2 <<= 1;
                }
                let lo2 = (hi2 >> 1).min(tail.len());
                let hi2 = hi2.min(tail.len());
                let off2 = lo2 + tail[lo2..hi2].partition_point(|&v| v < t2);
                *steps += 1;
                base += off2;
                if base < long.len() && long[base] == t2 {
                    n += 1;
                    base += 1;
                }
            }
            return Some(n);
        }
        if n + rem < need {
            return None;
        }
    }
    if n >= need {
        Some(n)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::overlap_sorted;

    fn bounded(a: &[u32], b: &[u32], need: usize) -> Option<usize> {
        let mut steps = 0;
        overlap_sorted_bounded(a, b, need, &mut steps)
    }

    #[test]
    fn exact_when_need_reachable() {
        let a = [1, 3, 5, 7, 9];
        let b = [3, 4, 5, 6, 7];
        assert_eq!(overlap_sorted(&a, &b), 3);
        for need in 0..=3 {
            assert_eq!(bounded(&a, &b, need), Some(3), "need={need}");
        }
        assert_eq!(bounded(&a, &b, 4), None);
    }

    #[test]
    fn failure_early_exit_is_conservative() {
        // Bound must only fire when the overlap truly cannot reach need.
        let a = [10, 20, 30];
        let b = [1, 2, 3, 30];
        assert_eq!(bounded(&a, &b, 1), Some(1));
        assert_eq!(bounded(&a, &b, 2), None);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(bounded(&[], &[], 0), Some(0));
        assert_eq!(bounded(&[], &[1, 2], 1), None);
        assert_eq!(bounded(&[1], &[], 0), Some(0));
    }

    #[test]
    fn galloping_matches_linear() {
        // One side 100× the other triggers the gallop path.
        let long: Vec<u32> = (0..3200).map(|i| i * 3).collect();
        let short = vec![3, 9, 100, 3000, 9000, 9597];
        let exact = overlap_sorted(&short, &long);
        assert_eq!(exact, 5); // 3, 9, 3000, 9000, 9597 are multiples of 3 in range
        for need in 0..=exact {
            assert_eq!(bounded(&short, &long, need), Some(exact), "need={need}");
            assert_eq!(bounded(&long, &short, need), Some(exact), "swapped need={need}");
        }
        assert_eq!(bounded(&short, &long, exact + 1), None);
    }

    #[test]
    fn bounded_agrees_with_unbounded_on_grid() {
        // Deterministic pseudo-random soup; compare against the plain merge.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let la = (next() % 40) as usize;
            let lb = if trial % 3 == 0 {
                (next() % 800) as usize // force skew sometimes
            } else {
                (next() % 40) as usize
            };
            let mut a: Vec<u32> = (0..la).map(|_| (next() % 120) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| (next() % 120) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let exact = overlap_sorted(&a, &b);
            for need in [0, 1, exact / 2, exact, exact + 1, exact + 5] {
                let got = bounded(&a, &b, need);
                if need <= exact {
                    assert_eq!(got, Some(exact), "trial={trial} need={need}");
                } else {
                    assert_eq!(got, None, "trial={trial} need={need}");
                }
                // Kernel contract: the adaptive dispatch result equals the
                // preserved scalar reference on every (input, need).
                let mut s = 0;
                assert_eq!(
                    got,
                    overlap_sorted_bounded_scalar(&a, &b, need, &mut s),
                    "dispatch diverged from scalar: trial={trial} need={need}"
                );
            }
        }
    }

    #[test]
    fn blocked_merge_agrees_with_scalar_across_block_boundaries() {
        // Shapes sized around BOUND_CHECK_INTERVAL so the block-coarsened
        // bound check is exercised right at its edges.
        for la in [1, 31, 32, 33, 63, 64, 65, 200] {
            let a: Vec<u32> = (0..la as u32).map(|v| v * 2).collect();
            let b: Vec<u32> = (0..la as u32).map(|v| v * 3).collect();
            let exact = overlap_sorted(&a, &b);
            for need in [0, 1, exact, exact + 1, la] {
                let mut s1 = 0;
                let mut s2 = 0;
                assert_eq!(
                    overlap_sorted_bounded(&a, &b, need, &mut s1),
                    overlap_sorted_bounded_scalar(&a, &b, need, &mut s2),
                    "la={la} need={need}"
                );
            }
        }
    }

    #[test]
    fn verify_kernel_selection_is_length_pure() {
        // Single-block operands stay on the scalar reference.
        assert_eq!(verify_kernel(&[1, 2, 3], &[4, 5]), Kernel::Scalar);
        assert_eq!(verify_kernel(&[], &[]), Kernel::Scalar);
        // Balanced multi-block operands stay scalar too — dense or
        // sparse, the reference walk measured fastest (see
        // `verify_kernel`); only a ≥16× length ratio changes kernels.
        let mid: Vec<u32> = (0..20).collect();
        assert_eq!(verify_kernel(&mid, &mid), Kernel::Scalar);
        let sparse: Vec<u32> = (0..20).map(|i| i * 1000).collect();
        assert_eq!(verify_kernel(&sparse, &sparse), Kernel::Scalar);
        let long: Vec<u32> = (0..100).collect();
        assert_eq!(verify_kernel(&[1], &long), Kernel::Gallop);
        assert_eq!(verify_kernel(&long, &[1]), Kernel::Gallop);
    }
}
