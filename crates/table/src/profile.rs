//! Dataset profiling: the guide's "data exploration" step.
//!
//! The paper recommends pandas-profiling / OpenRefine for exploration
//! (Table 3, row "Data Exploration"); this module provides the equivalent
//! per-column statistics used to choose blocking attributes — null rates,
//! distinctness, and string-length distributions.

use std::collections::HashMap;

use crate::table::Table;
use crate::value::Dtype;
use crate::Result;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Column dtype.
    pub dtype: Dtype,
    /// Total number of cells.
    pub count: usize,
    /// Number of null cells.
    pub nulls: usize,
    /// Number of distinct non-null values (by display form).
    pub distinct: usize,
    /// Minimum string length over non-null cells (display form).
    pub min_len: usize,
    /// Maximum string length over non-null cells (display form).
    pub max_len: usize,
    /// Mean string length over non-null cells (display form).
    pub mean_len: f64,
    /// The most frequent non-null value and its count, if any.
    pub top: Option<(String, usize)>,
}

impl ColumnProfile {
    /// Fraction of cells that are null.
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.nulls as f64 / self.count as f64
        }
    }

    /// Distinct values per non-null cell: 1.0 means the column is unique
    /// (a key candidate); near 0.0 means heavy repetition (a good
    /// equivalence-blocking attribute only if semantically meaningful).
    pub fn distinctness(&self) -> f64 {
        let nonnull = self.count - self.nulls;
        if nonnull == 0 {
            0.0
        } else {
            self.distinct as f64 / nonnull as f64
        }
    }
}

/// Profile every column of a table.
pub fn profile_table(table: &Table) -> Vec<ColumnProfile> {
    table
        .schema()
        .names()
        .iter()
        .map(|n| profile_column(table, n).expect("name from schema"))
        .collect()
}

/// Profile one column by name.
pub fn profile_column(table: &Table, name: &str) -> Result<ColumnProfile> {
    let idx = table.schema().try_index_of(name)?;
    let dtype = table.schema().field(idx).dtype;
    let mut nulls = 0usize;
    let mut freq: HashMap<String, usize> = HashMap::new();
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut total_len = 0usize;
    for r in table.rows() {
        let v = table.value(r, idx);
        if v.is_null() {
            nulls += 1;
            continue;
        }
        let s = v.display_string();
        min_len = min_len.min(s.len());
        max_len = max_len.max(s.len());
        total_len += s.len();
        *freq.entry(s).or_insert(0) += 1;
    }
    let nonnull = table.nrows() - nulls;
    let top = freq
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(v, c)| (v.clone(), *c));
    Ok(ColumnProfile {
        name: name.to_owned(),
        dtype,
        count: table.nrows(),
        nulls,
        distinct: freq.len(),
        min_len: if nonnull == 0 { 0 } else { min_len },
        max_len,
        mean_len: if nonnull == 0 {
            0.0
        } else {
            total_len as f64 / nonnull as f64
        },
        top,
    })
}

/// Suggest key-candidate columns: unique and never null.
pub fn key_candidates(table: &Table) -> Vec<String> {
    profile_table(table)
        .into_iter()
        .filter(|p| p.nulls == 0 && p.count > 0 && p.distinct == p.count)
        .map(|p| p.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t() -> Table {
        Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("city", Dtype::Str), ("age", Dtype::Int)],
            vec![
                vec!["a1".into(), "Madison".into(), Value::Int(40)],
                vec!["a2".into(), "Madison".into(), Value::Null],
                vec!["a3".into(), Value::Null, Value::Int(31)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn profile_counts_nulls_and_distincts() {
        let p = profile_column(&t(), "city").unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.nulls, 1);
        assert_eq!(p.distinct, 1);
        assert_eq!(p.top, Some(("Madison".to_owned(), 2)));
        assert!((p.null_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.distinctness() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_stats_over_display_form() {
        let p = profile_column(&t(), "age").unwrap();
        assert_eq!(p.min_len, 2);
        assert_eq!(p.max_len, 2);
        assert!((p.mean_len - 2.0).abs() < 1e-12);
    }

    #[test]
    fn key_candidates_require_uniqueness_and_no_nulls() {
        assert_eq!(key_candidates(&t()), vec!["id".to_owned()]);
    }

    #[test]
    fn empty_table_profiles_cleanly() {
        let empty = Table::from_rows("E", &[("x", Dtype::Str)], vec![]).unwrap();
        let p = profile_column(&empty, "x").unwrap();
        assert_eq!(p.count, 0);
        assert_eq!(p.distinct, 0);
        assert_eq!(p.null_fraction(), 0.0);
        assert!(key_candidates(&empty).is_empty());
    }

    #[test]
    fn unknown_column_is_an_error() {
        assert!(profile_column(&t(), "nope").is_err());
    }
}
