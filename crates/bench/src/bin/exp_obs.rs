//! Observability overhead + trace-validation experiment.
//!
//! Two modes:
//!
//! * **default** — measures the full production pipeline with no
//!   recorder installed (every obs call a thread-local-read no-op) vs.
//!   with a wall recorder installed and recording, verifies the
//!   pinned-clock byte-identity contract at 1 and 8 workers, guards the
//!   recording overhead, and writes `results/exp_obs.txt` plus
//!   `BENCH_obs.json` at the repo root.
//! * **`--validate <trace.json>`** — parses a Chrome trace exported via
//!   `MAGELLAN_TRACE` and asserts it carries the expected nested phase
//!   spans (CI's trace gate). Exits non-zero on any violation.

use std::fmt::Write as _;
use std::time::Instant;

use magellan_block::OverlapBlocker;
use magellan_core::exec::ProductionExecutor;
use magellan_core::par::ParConfig;
use magellan_core::rules::RuleLayer;
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, EmScenario, ScenarioConfig};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::model::ConstantClassifier;
use magellan_obs::{log, Obs};

/// Recording must not cost more than this fraction of the untraced
/// pipeline (generous to absorb CI machine noise; local runs come in far
/// below it — the recorded figure lands in `BENCH_obs.json`).
const MAX_OVERHEAD: f64 = 0.50;

/// Phase spans every production trace must carry.
const REQUIRED_SPANS: [&str; 6] = ["run", "blocking", "matching", "extract", "predict", "chunk"];

fn scenario(n: usize) -> EmScenario {
    persons(&ScenarioConfig {
        size_a: n,
        size_b: n,
        n_matches: n / 4,
        dirt: DirtModel::light(),
        seed: 23,
    })
}

fn workflow() -> EmWorkflow {
    EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("city", "city", FeatureKind::ExactMatch),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::empty(),
        threshold: 0.5,
    }
}

fn time_secs(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// `--validate <path>`: parse a `MAGELLAN_TRACE` export and assert the
/// production span hierarchy made it out intact.
fn validate(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read trace {path:?}: {e}"));
    let json = magellan_obs::parse_json(&text)
        .unwrap_or_else(|e| panic!("trace {path:?} is not valid JSON: {e}"));
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("trace {path:?} has no traceEvents array"));
    assert!(!events.is_empty(), "trace {path:?} is empty");

    let mut max_depth = 0u64;
    let mut names: Vec<&str> = Vec::new();
    for ev in events {
        let Some(name) = ev.get("name").and_then(|v| v.as_str()) else {
            continue;
        };
        if ev.get("ph").and_then(|v| v.as_str()) == Some("X") {
            names.push(name);
            if let Some(d) = ev.get("args").and_then(|a| a.get("depth")).and_then(|v| v.as_f64())
            {
                max_depth = max_depth.max(d as u64);
            }
        }
    }
    for want in REQUIRED_SPANS {
        assert!(
            names.iter().any(|n| *n == want),
            "trace {path:?} is missing {want:?} spans (has: {names:?})"
        );
    }
    assert!(
        max_depth >= 4,
        "trace {path:?} nests only {max_depth} span levels, expected ≥ 4"
    );
    log!(
        info,
        "trace {path} OK: {} complete spans, max depth {max_depth}, all of {REQUIRED_SPANS:?} present",
        names.len()
    );
}

/// `--validate-flight <path>`: parse a `MAGELLAN_FLIGHT_DUMP` artifact
/// and assert the post-mortem schema: version marker, seed keying, at
/// least one captured failure, and no worker count in the body (worker
/// count keys the artifact *path* only, so bodies stay byte-identical
/// across worker counts).
fn validate_flight(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read flight dump {path:?}: {e}"));
    let json = magellan_obs::parse_json(&text)
        .unwrap_or_else(|e| panic!("flight dump {path:?} is not valid JSON: {e}"));
    assert_eq!(
        json.get("magellan_flight").and_then(|v| v.as_f64()),
        Some(1.0),
        "flight dump {path:?} is missing the version marker"
    );
    assert!(json.get("seed").is_some(), "flight dump {path:?} is not keyed by seed");
    assert!(
        json.get("workers").is_none(),
        "flight dump {path:?} leaked the worker count into the body"
    );
    let failures = json
        .get("failure_events")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("flight dump {path:?} has no failure_events array"));
    assert!(!failures.is_empty(), "flight dump {path:?} captured no failures");
    for f in failures {
        assert!(
            f.get("reason").and_then(|v| v.as_str()).is_some(),
            "failure event without a reason in {path:?}"
        );
    }
    let spans = json.get("spans").and_then(|v| v.as_array()).map_or(0, <[_]>::len);
    log!(
        info,
        "flight dump {path} OK: {} failure event(s), {spans} recent span(s), seed {}",
        failures.len(),
        json.get("seed").and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
    );
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        let path = args.get(2).expect("--validate needs a trace path");
        validate(path);
        return;
    }
    if args.get(1).map(String::as_str) == Some("--validate-flight") {
        let path = args.get(2).expect("--validate-flight needs a dump path");
        validate_flight(path);
        return;
    }

    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let n = if smoke { 250 } else { 1200 };
    let reps = if smoke { 2 } else { 5 };
    let s = scenario(n);
    let wf = workflow();
    let exec = ProductionExecutor::new(4);

    // --- determinism smoke: pinned exports are byte-identical ----------
    let pinned_run = |workers: usize| {
        let obs = Obs::pinned();
        let _g = obs.install();
        ProductionExecutor::new(workers)
            .with_chunk_size(16)
            .run(&wf, &s.table_a, &s.table_b)
            .expect("pinned run");
        let snap = obs.snapshot();
        (snap.to_prometheus(), snap.to_chrome_trace())
    };
    let (prom1, trace1) = pinned_run(1);
    let (prom8, trace8) = pinned_run(8);
    assert_eq!(prom1, prom8, "pinned Prometheus export diverged across worker counts");
    assert_eq!(trace1, trace8, "pinned Chrome trace diverged across worker counts");

    // --- overhead: untraced (no recorder) vs. recording wall tracing ---
    // Time the raw phase calls, not the executor: the executor installs
    // its own recorder when none is ambient (its report always carries a
    // snapshot), whereas the library phases only record when a recorder
    // is installed — which is exactly the on/off contrast to measure.
    let cfg = ParConfig::workers(4);
    let run_phases = |wf: &EmWorkflow| {
        let (cands, _) = wf
            .blocker
            .block_par(&s.table_a, &s.table_b, &cfg)
            .expect("blocking");
        let pairs = cands.pairs();
        let (matrix, _) = magellan_features::extract_feature_matrix_par(
            pairs,
            &s.table_a,
            &s.table_b,
            &wf.features,
            &cfg,
        )
        .expect("extraction");
        let (predicted, _) = magellan_par::map_indexed(matrix.len(), &cfg, |i| {
            wf.matcher.predict_proba(&matrix.rows[i]) >= wf.threshold
        });
        std::hint::black_box((matrix.len(), predicted.len()));
    };
    run_phases(&wf); // warm-up: allocator + caches settle before timing
    // Interleave the two arms (off, on, off, on, ...) so slow machine-wide
    // drift — thermal throttling, page-cache churn, a neighbour process —
    // lands on both equally instead of biasing whichever arm ran second,
    // and take the min of reps: the minimum is the classic noise-floor
    // estimator (noise only ever adds time). Recording genuinely cannot
    // make the pipeline faster, so the ratio is clamped at zero — an
    // unclamped negative figure would just be residual measurement noise.
    let obs = Obs::wall();
    let mut t_off = f64::INFINITY;
    let mut t_on = f64::INFINITY;
    for _ in 0..reps {
        t_off = t_off.min(time_secs(|| run_phases(&wf)));
        t_on = t_on.min(time_secs(|| {
            let _g = obs.install();
            let _run = magellan_obs::span("run", 0);
            run_phases(&wf);
        }));
    }
    let overhead = if t_off > 0.0 { (t_on / t_off - 1.0).max(0.0) } else { 0.0 };

    // --- trace volume: one executor run on a fresh recorder -----------
    let vol = Obs::wall();
    let report = {
        let _g = vol.install();
        exec.run(&wf, &s.table_a, &s.table_b).expect("traced run")
    };
    let snap = report.obs;
    drop(vol);

    assert!(
        overhead < MAX_OVERHEAD,
        "observability overhead {:.1}% blew the {:.0}% guard (off {:.1} ms, on {:.1} ms)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
        t_off * 1e3,
        t_on * 1e3,
    );

    let mut txt = String::new();
    writeln!(
        txt,
        "Observability overhead — {n} x {n} tuples, 4 workers, {reps} interleaved reps"
    )
    .unwrap();
    writeln!(txt, "untraced run:  {:>9.2} ms (min of reps)", t_off * 1e3).unwrap();
    writeln!(txt, "traced run:    {:>9.2} ms (min of reps)", t_on * 1e3).unwrap();
    writeln!(txt, "overhead:      {:>8.1}% (guard {:.0}%)", overhead * 100.0, MAX_OVERHEAD * 100.0)
        .unwrap();
    writeln!(
        txt,
        "trace volume:  {} spans, {} events, {} metric families per run",
        snap.spans.len(),
        snap.events.len(),
        snap.metrics.len()
    )
    .unwrap();
    writeln!(txt, "pinned determinism: exports byte-identical at 1 and 8 workers").unwrap();
    log!(info, "{txt}");
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/exp_obs.txt", &txt).expect("write results/exp_obs.txt");

    if !smoke {
        let json = format!(
            "{{\n  \"experiment\": \"obs_overhead\",\n  \"workload\": {{\"rows_a\": {n}, \"rows_b\": {n}, \"workers\": 4, \"reps\": {reps}, \"smoke\": {smoke}, \"n_candidates\": {}}},\n  \"untraced_ms\": {:.3},\n  \"traced_ms\": {:.3},\n  \"overhead_pct\": {:.2},\n  \"guard_pct\": {:.0},\n  \"trace\": {{\"spans\": {}, \"events\": {}, \"metric_families\": {}, \"max_span_depth\": {}}},\n  \"pinned_byte_identical_workers\": [1, 8]\n}}\n",
            report.n_candidates,
            t_off * 1e3,
            t_on * 1e3,
            overhead * 100.0,
            MAX_OVERHEAD * 100.0,
            snap.spans.len(),
            snap.events.len(),
            snap.metrics.len(),
            snap.max_depth(),
        );
        std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
        log!(info, "wrote results/exp_obs.txt and BENCH_obs.json");
    } else {
        log!(info, "smoke mode: wrote results/exp_obs.txt only");
    }
}
