//! The CloudMatcher service registry — the paper's Table 4 and the unit of
//! the envisioned microservice decomposition (§5.3, §6).
//!
//! CloudMatcher 2.0 "extracts a set of basic services from the Falcon EM
//! workflow ... then allows users to flexibly combine them to form
//! different EM workflows (including the original Falcon one)". The
//! registry below records each service's kind, the engine it runs on, and
//! — for composite services — the basic services it composes. The
//! `implemented_by` field maps each service to the Rust API that realizes
//! it, which is how the Fig. 6 "ecosystem" rendering is generated.

/// Basic vs. composite (Table 4 groups them this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// A single self-contained step.
    Basic,
    /// A composition of basic services.
    Composite,
}

/// One CloudMatcher service.
#[derive(Debug, Clone)]
pub struct Service {
    /// Service name as the UI would list it.
    pub name: &'static str,
    /// Basic or composite.
    pub kind: ServiceKind,
    /// Engine the service's work runs on.
    pub engine: crate::cloud::Engine,
    /// One-line description.
    pub description: &'static str,
    /// The Rust API implementing it in this reproduction.
    pub implemented_by: &'static str,
    /// For composites: the names of the composed basic services.
    pub composes: &'static [&'static str],
}

/// The standard service registry (Table 4).
pub fn services() -> Vec<Service> {
    use crate::cloud::Engine::*;
    use ServiceKind::*;
    let s = |name, kind, engine, description, implemented_by, composes| Service {
        name,
        kind,
        engine,
        description,
        implemented_by,
        composes,
    };
    vec![
        // --- basic services ---
        s("upload dataset", Basic, Batch, "ingest a CSV table",
          "magellan_table::csv::read_csv_path", &[]),
        s("profile dataset", Basic, Batch, "per-column statistics",
          "magellan_table::profile::profile_table", &[]),
        s("edit metadata", Basic, Batch, "set/validate key metadata",
          "magellan_table::Catalog::set_key", &[]),
        s("browse dataset", Basic, Batch, "paginated table view",
          "magellan_table::Table::head", &[]),
        s("down sample", Basic, Batch, "index-guided table shrinking",
          "magellan_core::downsample::down_sample", &[]),
        s("sample pairs", Basic, Batch, "draw candidate pairs for labeling",
          "magellan_falcon::workflow (sampler)", &[]),
        s("generate features", Basic, Batch, "type-driven feature grid",
          "magellan_features::generate_features", &[]),
        s("extract feature vectors", Basic, Batch, "evaluate features over pairs",
          "magellan_features::extract_feature_matrix", &[]),
        s("label pairs (user)", Basic, UserInteraction, "interactive match/no-match answers",
          "magellan_core::labeling::OracleLabeler", &[]),
        s("label pairs (crowd)", Basic, Crowd, "majority vote of paid annotators",
          "magellan_falcon::cloud (CrowdLabeler)", &[]),
        s("train classifier", Basic, Batch, "fit a random forest",
          "magellan_ml::RandomForestLearner::fit_forest", &[]),
        s("apply classifier", Basic, Batch, "predict over a candidate set",
          "magellan_ml::RandomForestClassifier", &[]),
        s("learn blocking rules", Basic, Batch, "extract tree paths as rules",
          "magellan_falcon::rules::extract_blocking_rules", &[]),
        s("evaluate blocking rules", Basic, Batch, "precision/coverage of each rule",
          "magellan_falcon::rules (precision eval)", &[]),
        s("execute blocking rules", Basic, Batch, "rules as sim-join plans",
          "magellan_block::RuleBasedBlocker::block", &[]),
        s("compute accuracy", Basic, Batch, "P/R/F1 against labeled pairs",
          "magellan_core::evaluate::evaluate_matches", &[]),
        s("export results", Basic, Batch, "write matches as CSV",
          "magellan_table::csv::write_csv_path", &[]),
        s("estimate cost", Basic, Batch, "predict crowd $ and latency",
          "magellan_falcon::cloud::CostModel", &[]),
        // --- composite services ---
        s("active learning", Composite, UserInteraction,
          "iteratively label the most uncertain pairs",
          "magellan_falcon::active::active_learn",
          &["sample pairs", "extract feature vectors", "label pairs (user)", "train classifier"]),
        s("get blocking rules", Composite, Batch,
          "suggest precise blocking rules to the user",
          "magellan_falcon::rules::extract_blocking_rules",
          &["active learning", "learn blocking rules", "evaluate blocking rules"]),
        s("falcon", Composite, Batch,
          "the end-to-end self-service EM workflow",
          "magellan_falcon::workflow::run_falcon",
          &["get blocking rules", "execute blocking rules", "active learning", "apply classifier", "compute accuracy"]),
    ]
}

/// Render the Fig. 6 style ecosystem summary: on-premise packages plus the
/// cloud services, with composition edges.
pub fn ecosystem_summary() -> String {
    let mut out = String::new();
    out.push_str("Magellan-rs ecosystem\n");
    out.push_str("== on-premise packages (PyData role) ==\n");
    for p in [
        "magellan-table", "magellan-textsim", "magellan-simjoin", "magellan-ml",
        "magellan-block", "magellan-features", "magellan-core (PyMatcher)",
        "magellan-datagen",
    ] {
        out.push_str("  ");
        out.push_str(p);
        out.push('\n');
    }
    out.push_str("== cloud services (CloudMatcher role) ==\n");
    for svc in services() {
        let kind = match svc.kind {
            ServiceKind::Basic => "basic",
            ServiceKind::Composite => "composite",
        };
        out.push_str(&format!(
            "  [{kind:9}] {:26} ({:?}) -> {}\n",
            svc.name, svc.engine, svc.implemented_by
        ));
        if !svc.composes.is_empty() {
            out.push_str(&format!("             composes: {}\n", svc.composes.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table4_shape() {
        let all = services();
        let basic = all.iter().filter(|s| s.kind == ServiceKind::Basic).count();
        let composite = all.iter().filter(|s| s.kind == ServiceKind::Composite).count();
        // The paper: "CloudMatcher provides 18 basic services and 2
        // composite services" (Appendix D) plus the falcon composite.
        assert_eq!(basic, 18);
        assert_eq!(composite, 3);
    }

    #[test]
    fn composite_components_exist() {
        let all = services();
        let names: Vec<&str> = all.iter().map(|s| s.name).collect();
        for svc in &all {
            for dep in svc.composes {
                assert!(names.contains(dep), "{}: missing component {dep}", svc.name);
            }
        }
    }

    #[test]
    fn names_unique_and_implementations_present() {
        let all = services();
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
        assert!(all.iter().all(|s| !s.implemented_by.is_empty()));
    }

    #[test]
    fn labeling_services_run_on_human_engines() {
        for svc in services() {
            if svc.name.starts_with("label pairs") {
                assert_ne!(svc.engine, crate::cloud::Engine::Batch, "{}", svc.name);
            }
        }
    }

    #[test]
    fn ecosystem_summary_renders() {
        let s = ecosystem_summary();
        assert!(s.contains("magellan-core (PyMatcher)"));
        assert!(s.contains("falcon"));
        assert!(s.contains("composes:"));
    }
}
