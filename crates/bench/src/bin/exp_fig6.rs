//! Figure 6 — the new envisioned Magellan ecosystem: on-premise packages
//! plus cloud-native interoperable services, rendered from the live
//! package and service registries.

use magellan_core::registry::commands_per_step;
use magellan_falcon::services::ecosystem_summary;

fn main() {
    println!("Fig. 6 analog — the envisioned Magellan ecosystem\n");
    println!("{}", ecosystem_summary());
    println!("== on-premise command surface (per guide step) ==");
    for (step, n) in commands_per_step() {
        println!("  {:26} {n:3} commands", step.to_string());
    }
}
