//! Sim-join engine experiment: pairs/sec of the adaptive CSR engine
//! (flat postings, accumulating positional + suffix pruning, bounded
//! galloping verification, cost-based probe side) vs the pre-CSR HashMap
//! engine it replaced, across a collection-size × threshold ×
//! token-frequency-skew grid, plus the pruning-cascade kill rates.
//!
//! Writes `results/exp_simjoin.txt` (human-readable table) and
//! `BENCH_simjoin.json` at the repo root (the ISSUE's before/after
//! record; "before" = `join_tokenized_hashmap`, byte-for-byte the seed
//! engine, still compiled in as the oracle baseline).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_par::ParConfig;
use magellan_simjoin::{
    join_tokenized_hashmap, join_tokenized_par_side, join_tokenized_stats, ProbeSide,
    SetSimMeasure, TokenizedCollection,
};
use magellan_textsim::tokenize::WhitespaceTokenizer;
use magellan_textsim::kernels::set_mode;
use magellan_textsim::KernelMode;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Deterministic token soup with controllable frequency skew (`skew = 0`
/// is uniform; larger values concentrate mass on heavy-hitter tokens).
fn make_strings(n: usize, seed: u64, vocab: usize, skew: f64) -> Vec<Option<String>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|_| {
            let k = 3 + (next() % 6) as usize;
            Some(
                (0..k)
                    .map(|_| {
                        let u = next() as f64 / u32::MAX as f64;
                        format!("tok{}", (vocab as f64 * u.powf(1.0 + skew)) as usize)
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

/// Long records (120–167 tokens) for the size-skew grid: probing a short
/// record against these puts a ≥16× length ratio on the verification
/// operands, the shape the galloping kernel exists for.
fn make_long_strings(n: usize, seed: u64, vocab: usize) -> Vec<Option<String>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|_| {
            let k = 120 + (next() % 48) as usize;
            Some(
                (0..k)
                    .map(|_| format!("tok{}", next() as usize % vocab))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

struct Grid {
    name: &'static str,
    skew: f64,
    threshold: f64,
    measure: fn(f64) -> SetSimMeasure,
    measure_name: &'static str,
    vocab: usize,
    /// Shrink the right side to long records (`n / 25` of them): total
    /// tokens stay below the left side's, so Auto probes short-vs-long.
    long_right: bool,
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let n = if smoke { 400 } else { 4000 };
    let reps = if smoke { 2 } else { 5 };
    let jaccard: fn(f64) -> SetSimMeasure = SetSimMeasure::Jaccard;
    let overlap: fn(f64) -> SetSimMeasure = |t| SetSimMeasure::OverlapSize(t as usize);
    let grids = [
        Grid { name: "skewed", skew: 3.0, threshold: 0.7, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false },
        Grid { name: "skewed_loose", skew: 3.0, threshold: 0.5, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false },
        Grid { name: "uniform", skew: 0.0, threshold: 0.7, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false },
        // ≥16× record-length skew: 3–8-token probes against 120–167-token
        // indexed records. Regression guard for the galloping verify
        // kernel — the symmetric grids above never reach the gallop ratio.
        Grid { name: "size_skew16", skew: 0.0, threshold: 2.0, measure: overlap, measure_name: "overlap_size", vocab: 4000, long_right: true },
    ];
    let tok = WhitespaceTokenizer::new();

    let mut txt = String::new();
    let mut json_grids = String::new();
    writeln!(
        txt,
        "Sim-join engine — CSR (flat postings + positional/suffix pruning + bounded verify) vs HashMap seed engine"
    )
    .unwrap();
    writeln!(txt, "{n} x {n} records per side, reps = {reps}, smoke = {smoke}").unwrap();
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    writeln!(txt, "host exposes {cores} core(s); the w>1 rows measure threading overhead on a 1-core host").unwrap();

    let mut skewed_speedup_w1 = 0.0;
    for grid in &grids {
        let left = make_strings(n, 101, grid.vocab, grid.skew);
        let right = if grid.long_right {
            make_long_strings((n / 25).max(8), 103, grid.vocab)
        } else {
            make_strings(n, 103, grid.vocab, grid.skew)
        };
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = (grid.measure)(grid.threshold);

        // Bit-identity check before timing anything: pair set, order,
        // and exact f64 similarities must match the seed engine.
        let (csr_pairs, stats) = join_tokenized_stats(&coll, measure, ProbeSide::Auto);
        let hash_pairs = join_tokenized_hashmap(&coll, measure);
        assert_eq!(csr_pairs.len(), hash_pairs.len(), "CSR engine diverged");
        for (cp, hp) in csr_pairs.iter().zip(&hash_pairs) {
            assert_eq!((cp.l, cp.r), (hp.l, hp.r), "CSR engine diverged");
            assert_eq!(cp.sim.to_bits(), hp.sim.to_bits(), "CSR similarity diverged");
        }
        let n_pairs = csr_pairs.len();
        if grid.long_right {
            // The whole point of this grid: the ≥16× operand skew must
            // actually reach the galloping kernel.
            assert!(
                stats.kernel_gallop > 0,
                "size-skew grid never fired the gallop kernel"
            );
        }

        writeln!(txt).unwrap();
        writeln!(
            txt,
            "[{}] skew={} {}={} |pairs|={n_pairs}",
            grid.name, grid.skew, grid.measure_name, grid.threshold
        )
        .unwrap();
        writeln!(
            txt,
            "cascade: probes={} candidates={} killed_by_size={} killed_by_position={} killed_by_suffix={} verified={} verify_steps={} (pos kill {:.1}%, suffix kill {:.1}%)",
            stats.probes,
            stats.candidates,
            stats.killed_by_size,
            stats.killed_by_position,
            stats.killed_by_suffix,
            stats.verified,
            stats.verify_steps,
            100.0 * stats.position_kill_rate(),
            100.0 * stats.suffix_kill_rate(),
        )
        .unwrap();
        writeln!(
            txt,
            "kernel split: merge={} gallop={}",
            stats.kernel_merge, stats.kernel_gallop
        )
        .unwrap();

        let t_hash = median_secs(reps, || {
            std::hint::black_box(join_tokenized_hashmap(&coll, measure));
        });
        let ps_hash = n_pairs as f64 / t_hash;

        // Kernel-tier delta at 1 worker: pin the scalar reference kernels,
        // time the same CSR join, restore adaptive dispatch. Outputs are
        // bit-identical either way — this isolates the kernel speedup.
        let serial = ParConfig::workers(1);
        set_mode(KernelMode::ScalarReference);
        let t_csr_scalar = median_secs(reps, || {
            std::hint::black_box(join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &serial));
        });
        set_mode(KernelMode::Adaptive);
        let t_csr_adaptive = median_secs(reps, || {
            std::hint::black_box(join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &serial));
        });
        let kernel_speedup = t_csr_scalar / t_csr_adaptive;
        writeln!(
            txt,
            "kernel tier (w=1): scalar-kernel {:.3}s vs adaptive {:.3}s -> {kernel_speedup:.2}x",
            t_csr_scalar, t_csr_adaptive
        )
        .unwrap();
        writeln!(txt, "{:>3}  {:>15}  {:>15}  {:>8}", "w", "hashmap p/s", "csr p/s", "speedup")
            .unwrap();

        let mut json_rows = String::new();
        let mut speedup_w1 = 0.0;
        for w in WORKERS {
            let cfg = ParConfig::workers(w);
            let t_csr = median_secs(reps, || {
                std::hint::black_box(join_tokenized_par_side(
                    &coll,
                    measure,
                    ProbeSide::Auto,
                    &cfg,
                ));
            });
            let ps_csr = n_pairs as f64 / t_csr;
            // Time-based, so a zero-pair grid still reports a ratio.
            let speedup = t_hash / t_csr;
            if w == 1 {
                speedup_w1 = speedup;
            }
            writeln!(txt, "{w:>3}  {ps_hash:>15.0}  {ps_csr:>15.0}  {speedup:>7.2}x").unwrap();
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            write!(
                json_rows,
                "      {{\"workers\": {w}, \"csr_pairs_per_sec\": {ps_csr:.0}, \"speedup_vs_hashmap\": {speedup:.2}}}"
            )
            .unwrap();
        }
        // Per-worker busy-time evidence for the multi-worker analysis in
        // EXPERIMENTS.md: on a 1-core host the busy sum exceeding the
        // wall clock is the threading-overhead ceiling made visible.
        let (_, pstats) =
            join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &ParConfig::workers(4));
        let busy: Vec<String> = pstats
            .worker_busy
            .iter()
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3))
            .collect();
        writeln!(
            txt,
            "w=4 evidence: busy=[{}] utilization={:.0}% chunks={} steals={}",
            busy.join(", "),
            100.0 * pstats.utilization(),
            pstats.chunks_total,
            pstats.chunks_stolen,
        )
        .unwrap();
        if grid.name == "skewed" {
            skewed_speedup_w1 = speedup_w1;
        }
        if !json_grids.is_empty() {
            json_grids.push_str(",\n");
        }
        write!(
            json_grids,
            "    {{\"grid\": \"{}\", \"skew\": {}, \"measure\": \"{}\", \"threshold\": {}, \"vocab\": {}, \"n_pairs\": {n_pairs}, \"hashmap_pairs_per_sec\": {ps_hash:.0}, \"speedup_w1\": {speedup_w1:.2}, \"kernel_speedup_w1\": {kernel_speedup:.2},\n     \"join_stats\": {{\"probes\": {}, \"candidates\": {}, \"killed_by_size\": {}, \"killed_by_position\": {}, \"killed_by_suffix\": {}, \"verified\": {}, \"verify_steps\": {}, \"kernel_merge\": {}, \"kernel_gallop\": {}, \"position_kill_rate\": {:.4}, \"suffix_kill_rate\": {:.4}}},\n     \"csr\": [\n{json_rows}\n     ]}}",
            grid.name,
            grid.skew,
            grid.measure_name,
            grid.threshold,
            grid.vocab,
            stats.probes,
            stats.candidates,
            stats.killed_by_size,
            stats.killed_by_position,
            stats.killed_by_suffix,
            stats.verified,
            stats.verify_steps,
            stats.kernel_merge,
            stats.kernel_gallop,
            stats.position_kill_rate(),
            stats.suffix_kill_rate(),
        )
        .unwrap();
    }

    writeln!(txt).unwrap();
    writeln!(
        txt,
        "skewed-grid speedup at 1 worker: {skewed_speedup_w1:.2}x (acceptance floor: 2x CSR vs hashmap)"
    )
    .unwrap();
    print!("{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"simjoin\",\n  \"workload\": {{\"rows_per_side\": {n}, \"vocab\": 800, \"reps\": {reps}, \"smoke\": {smoke}}},\n  \"skewed_speedup_w1\": {skewed_speedup_w1:.2},\n  \"grids\": [\n{json_grids}\n  ]\n}}\n"
    );

    // Best-effort writes (CI smoke may run from a read-only checkout).
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_simjoin.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_simjoin.json", &json);
    }
}
