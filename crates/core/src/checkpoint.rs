//! Phase-level checkpointing for the production executor.
//!
//! §4.1's production stage runs for hours over full tables; a process
//! death at hour three should not restart blocking from scratch. The
//! executor therefore writes a durable [`Checkpoint`] after each phase —
//! the candidate set after blocking, the match set when done — in a small
//! line-oriented text format (`emckpt v1`), consistent with every other
//! persistence surface in this workspace (workflows, models).
//!
//! The format is deliberately dumb: a corrupt or truncated checkpoint is
//! a **fatal** [`MagellanError::Checkpoint`] (retrying cannot fix bad
//! bytes), while an I/O blip during save/load is **transient** and the
//! executor retries it under its [`magellan_faults::RetryPolicy`].
//!
//! Every checkpoint ends with a `sum fnv1a <16 hex>` trailer — an FNV-1a
//! hash of all preceding bytes — so a torn write (half-old/half-new file
//! after a crash mid-rename) or bit rot is detected as a precise fatal
//! `Corrupt` error instead of being half-parsed into a plausible but
//! wrong resume state. The helpers [`fnv1a`], [`append_checksum`], and
//! [`verify_checksum`] are public so other line-oriented persistence
//! surfaces (e.g. the service-layer `emsvc v1` checkpoint) share the same
//! trailer convention.
//!
//! Stores are pluggable via [`CheckpointStore`]: [`MemStore`] backs the
//! chaos suite, [`FileStore`] backs real runs, and [`FlakyStore`] wraps
//! either with seeded transient I/O faults from a
//! [`magellan_faults::FaultPlan`] so the retry loop is exercised
//! deterministically.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

use magellan_faults::FaultPlan;

use crate::error::MagellanError;

/// The checkpointable phases of a production run, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Candidate generation over the two tables.
    Blocking,
    /// Feature extraction + prediction + rule layer.
    Matching,
}

impl Phase {
    /// Stable lowercase name used in checkpoints and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Blocking => "blocking",
            Phase::Matching => "matching",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A durable snapshot of a production run after some phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Checkpoint {
    /// Blocking finished: the candidate set survives a restart.
    Blocked {
        /// Candidate pairs `(a_row, b_row)` in blocker output order.
        candidates: Vec<(u32, u32)>,
    },
    /// The whole run finished: the match set and candidate count survive.
    Done {
        /// Predicted match pairs in decision order.
        matches: Vec<(u32, u32)>,
        /// Candidate pairs that were examined.
        n_candidates: usize,
    },
}

impl Checkpoint {
    /// The phase whose completion this checkpoint records.
    pub fn phase(&self) -> Phase {
        match self {
            Checkpoint::Blocked { .. } => Phase::Blocking,
            Checkpoint::Done { .. } => Phase::Matching,
        }
    }

    /// Serialize to the `emckpt v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("emckpt v1\n");
        match self {
            Checkpoint::Blocked { candidates } => {
                out.push_str("phase blocked\n");
                write_pairs(&mut out, candidates);
            }
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                out.push_str("phase done\n");
                out.push_str(&format!("n_candidates {n_candidates}\n"));
                write_pairs(&mut out, matches);
            }
        }
        out.push_str("end\n");
        append_checksum(&mut out);
        out
    }

    /// Parse the `emckpt v1` text format. Any deviation — wrong magic,
    /// missing or mismatched checksum trailer, unknown phase, bad pair
    /// syntax, missing `end` — is a fatal [`MagellanError::Checkpoint`]
    /// carrying the offending line number.
    pub fn from_text(text: &str) -> Result<Checkpoint, MagellanError> {
        // Magic first: "this is not a checkpoint at all" beats "this
        // checkpoint has no checksum" as a diagnosis.
        let magic = text.lines().next().ok_or_else(|| corrupt(1, "empty checkpoint"))?;
        if magic.trim() != "emckpt v1" {
            return Err(corrupt(1, format!("bad magic `{magic}`")));
        }
        let payload = verify_checksum(text)?;
        let mut lines = payload.lines().enumerate();
        lines.next(); // magic, validated above
        let (_, phase_line) = lines
            .next()
            .ok_or_else(|| corrupt(2, "missing phase line"))?;
        let phase = phase_line
            .trim()
            .strip_prefix("phase ")
            .ok_or_else(|| corrupt(2, format!("expected `phase ...`, got `{phase_line}`")))?;
        match phase {
            "blocked" => {
                let candidates = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Blocked { candidates })
            }
            "done" => {
                let (no, line) = lines
                    .next()
                    .ok_or_else(|| corrupt(3, "missing n_candidates line"))?;
                let n_candidates = line
                    .trim()
                    .strip_prefix("n_candidates ")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| {
                        corrupt(no + 1, format!("expected `n_candidates <usize>`, got `{line}`"))
                    })?;
                let matches = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Done {
                    matches,
                    n_candidates,
                })
            }
            other => Err(corrupt(2, format!("unknown phase `{other}`"))),
        }
    }
}

fn write_pairs(out: &mut String, pairs: &[(u32, u32)]) {
    out.push_str(&format!("pairs {}\n", pairs.len()));
    for (a, b) in pairs {
        out.push_str(&format!("{a} {b}\n"));
    }
}

fn read_pairs<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<Vec<(u32, u32)>, MagellanError> {
    let (no, header) = lines
        .next()
        .ok_or_else(|| corrupt(0, "missing pairs header"))?;
    let n = header
        .trim()
        .strip_prefix("pairs ")
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| corrupt(no + 1, format!("expected `pairs <len>`, got `{header}`")))?;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let (no, line) = lines
            .next()
            .ok_or_else(|| corrupt(0, "truncated pair list"))?;
        let mut it = line.trim().split_whitespace();
        let pair = (|| {
            let a = it.next()?.parse::<u32>().ok()?;
            let b = it.next()?.parse::<u32>().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((a, b))
        })()
        .ok_or_else(|| corrupt(no + 1, format!("bad pair `{line}`")))?;
        pairs.push(pair);
    }
    Ok(pairs)
}

fn expect_end<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<(), MagellanError> {
    match lines.next() {
        Some((_, l)) if l.trim() == "end" => Ok(()),
        Some((no, l)) => Err(corrupt(no + 1, format!("expected `end`, got `{l}`"))),
        None => Err(corrupt(0, "missing `end` terminator (truncated checkpoint)")),
    }
}

/// 64-bit FNV-1a over `bytes` — the tiny, dependency-free integrity hash
/// behind every checkpoint's `sum fnv1a` trailer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append a `sum fnv1a <16 hex>\n` trailer covering everything currently
/// in `text`.
pub fn append_checksum(text: &mut String) {
    let sum = fnv1a(text.as_bytes());
    text.push_str(&format!("sum fnv1a {sum:016x}\n"));
}

/// Validate the `sum fnv1a` trailer of a checkpoint text and return the
/// payload it covers (everything before the trailer line). Missing,
/// malformed, or mismatched checksums are fatal corruption errors — a
/// mismatch is exactly what a torn write or tampered file looks like.
pub fn verify_checksum(text: &str) -> Result<&str, MagellanError> {
    let idx = text.rfind("sum fnv1a ").ok_or_else(|| {
        corrupt(0, "missing `sum fnv1a` checksum trailer (truncated checkpoint)")
    })?;
    // The trailer must start a line, not hide inside one.
    if idx > 0 && text.as_bytes()[idx - 1] != b'\n' {
        return Err(corrupt(0, "checksum trailer not at start of line"));
    }
    let (payload, trailer) = text.split_at(idx);
    let hex = trailer.trim_start_matches("sum fnv1a ").trim_end();
    let stored = if hex.len() == 16 {
        u64::from_str_radix(hex, 16).ok()
    } else {
        None
    };
    let stored = stored.ok_or_else(|| {
        corrupt(0, format!("malformed checksum trailer `{}`", trailer.trim_end()))
    })?;
    let computed = fnv1a(payload.as_bytes());
    if computed != stored {
        return Err(corrupt(
            0,
            format!(
                "checksum mismatch: stored {hex}, computed {computed:016x} \
                 (torn write or tampered checkpoint)"
            ),
        ));
    }
    Ok(payload)
}

fn corrupt(line: usize, msg: impl fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: if line == 0 {
            format!("corrupt checkpoint: {msg}")
        } else {
            format!("corrupt checkpoint at line {line}: {msg}")
        },
        transient: false,
    }
}

/// Where checkpoints live. `save`/`load` may fail transiently (I/O);
/// callers retry under a [`magellan_faults::RetryPolicy`]. `load`
/// returning `Ok(None)` means "no checkpoint yet" — a fresh run.
pub trait CheckpointStore {
    /// Durably replace the stored checkpoint text.
    fn save(&mut self, text: &str) -> Result<(), MagellanError>;
    /// Read back the stored checkpoint text, if any.
    fn load(&mut self) -> Result<Option<String>, MagellanError>;
    /// Discard any stored checkpoint.
    fn clear(&mut self) -> Result<(), MagellanError>;
}

/// In-memory store for tests and the chaos suite.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    text: Option<String>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// The raw stored text, for assertions.
    pub fn raw(&self) -> Option<&str> {
        self.text.as_deref()
    }
}

impl CheckpointStore for MemStore {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        self.text = Some(text.to_string());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        Ok(self.text.clone())
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.text = None;
        Ok(())
    }
}

/// File-backed store: writes to a sibling temp file then renames, so a
/// death mid-save leaves the previous checkpoint intact.
#[derive(Debug, Clone)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// Store at `path`. The parent directory must exist.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileStore { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileStore {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        match std::fs::read_to_string(&self.path) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Wraps any store with seeded transient I/O failures drawn from a
/// [`FaultPlan`], so checkpoint retry loops can be exercised
/// deterministically. Each operation site (save/load/clear) fails for a
/// bounded run of consecutive attempts, then succeeds — mirroring the
/// plan's `max_failures_per_site` convergence guarantee.
#[derive(Debug, Clone)]
pub struct FlakyStore<S> {
    /// The real store.
    pub inner: S,
    /// Where the injected faults come from.
    pub plan: FaultPlan,
    ops: [FlakyOp; 3],
}

#[derive(Debug, Clone, Copy, Default)]
struct FlakyOp {
    /// Distinct logical operation count (bumps on success).
    op: u64,
    /// Consecutive failed attempts of the current logical operation.
    attempt: u32,
}

/// Operation sites for [`FlakyStore`]'s fault keying.
const OP_SAVE: u64 = 0x5a;
const OP_LOAD: u64 = 0x10;
const OP_CLEAR: u64 = 0xc1;

impl<S> FlakyStore<S> {
    /// Wrap `inner`, drawing faults from `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FlakyStore {
            inner,
            plan,
            ops: [FlakyOp::default(); 3],
        }
    }

    /// Returns an injected transient error, or advances to success.
    fn gate(&mut self, site: usize, tag: u64, what: &str) -> Result<(), MagellanError> {
        let st = &mut self.ops[site];
        if self.plan.io_fails(tag.wrapping_add(st.op << 8), st.attempt) {
            st.attempt += 1;
            return Err(MagellanError::Checkpoint {
                message: format!("injected transient I/O failure during checkpoint {what}"),
                transient: true,
            });
        }
        st.attempt = 0;
        st.op += 1;
        Ok(())
    }
}

impl<S: CheckpointStore> CheckpointStore for FlakyStore<S> {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        self.gate(0, OP_SAVE, "save")?;
        self.inner.save(text)
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        self.gate(1, OP_LOAD, "load")?;
        self.inner.load()
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.gate(2, OP_CLEAR, "clear")?;
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_round_trips() {
        let ck = Checkpoint::Blocked {
            candidates: vec![(0, 1), (2, 3), (7, 7)],
        };
        assert_eq!(ck.phase(), Phase::Blocking);
        let text = ck.to_text();
        assert!(text.starts_with("emckpt v1\n"));
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
    }

    #[test]
    fn done_round_trips() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        };
        assert_eq!(ck.phase(), Phase::Matching);
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
        // Empty match set round-trips too.
        let ck = Checkpoint::Done {
            matches: vec![],
            n_candidates: 0,
        };
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
    }

    /// Appends a *correct* checksum trailer so tests can probe the
    /// structural validation behind it.
    fn with_sum(payload: &str) -> String {
        let mut s = payload.to_string();
        append_checksum(&mut s);
        s
    }

    #[test]
    fn corrupt_checkpoints_are_fatal_with_line_numbers() {
        for (text, needle) in [
            (String::new(), "empty"),
            ("not a checkpoint\n".into(), "bad magic"),
            (with_sum("emckpt v1\n"), "missing phase"),
            (with_sum("emckpt v1\nphase warp\npairs 0\nend\n"), "unknown phase"),
            (with_sum("emckpt v1\nphase blocked\npairs two\nend\n"), "pairs"),
            (with_sum("emckpt v1\nphase blocked\npairs 2\n1 2\n"), "truncated"),
            (with_sum("emckpt v1\nphase blocked\npairs 1\n1 2 3\nend\n"), "bad pair"),
            (with_sum("emckpt v1\nphase blocked\npairs 1\nx y\nend\n"), "bad pair"),
            (with_sum("emckpt v1\nphase done\npairs 0\nend\n"), "n_candidates"),
            (with_sum("emckpt v1\nphase blocked\npairs 0\nEND\n"), "expected `end`"),
            // Checksum-layer failures.
            ("emckpt v1\nphase blocked\npairs 0\nend\n".into(), "missing `sum fnv1a`"),
            ("emckpt v1\nend\nsum fnv1a zz\n".into(), "malformed checksum"),
            (
                "emckpt v1\nphase blocked\npairs 0\nend\nsum fnv1a 0000000000000000\n".into(),
                "checksum mismatch",
            ),
        ] {
            let err = Checkpoint::from_text(&text).unwrap_err();
            assert!(err.fatal(), "{text:?} should be fatal");
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
        // Line numbers point at the offending line.
        let err =
            Checkpoint::from_text(&with_sum("emckpt v1\nphase blocked\npairs 1\nbad\nend\n"))
                .unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn checksum_detects_truncation_and_tampering() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9), (11, 13)],
            n_candidates: 42,
        };
        let text = ck.to_text();
        assert!(text.contains("\nsum fnv1a "), "to_text must append a trailer");
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
        // Every strict prefix is rejected — a torn write can never be
        // mistaken for a complete checkpoint. (The final newline alone is
        // cosmetic, so the loop stops one byte short of it.)
        for cut in 1..text.len() - 1 {
            assert!(
                Checkpoint::from_text(&text[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        // Flipping one digit inside the pair list is caught by the
        // checksum even though the result is structurally valid.
        let tampered = text.replacen("5 9", "5 8", 1);
        assert_ne!(tampered, text);
        let err = Checkpoint::from_text(&tampered).unwrap_err();
        assert!(err.fatal());
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // fnv1a is the reference function (pinned vector).
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn torn_write_through_flaky_store_is_detected_not_half_parsed() {
        // An old checkpoint sits in the store; a crash mid-save splices
        // the new text's head onto the old text's tail. Pre-checksum that
        // hybrid parsed cleanly into a *wrong* resume state; now it is a
        // precise fatal corruption error.
        let old = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        }
        .to_text();
        let new = Checkpoint::Done {
            matches: vec![(3, 4), (6, 8)],
            n_candidates: 43,
        }
        .to_text();
        assert_eq!(old.len(), new.len(), "same shape so the splice stays line-valid");
        // Tear inside the pair list: new header + first new pair, old tail.
        let cut = new.find("3 4\n").unwrap() + 4;
        let torn = format!("{}{}", &new[..cut], &old[cut..]);
        let plan = FaultPlan {
            io_error_per_mille: 1000,
            ..FaultPlan::seeded(17)
        };
        let mut store = FlakyStore::new(MemStore::new(), plan);
        // The save that tore: model it by placing the hybrid bytes in the
        // inner store directly (FlakyStore injects errors, not bytes).
        store.inner.save(&torn).unwrap();
        let mut clock = magellan_faults::SimClock::new();
        let loaded = magellan_faults::run_with_retry(
            &magellan_faults::RetryPolicy::default(),
            &mut clock,
            |_| store.load(),
        )
        .expect("transient injected I/O converges under retry")
        .expect("a checkpoint is present");
        let err = Checkpoint::from_text(&loaded).unwrap_err();
        assert!(err.fatal(), "torn write must be fatal, not retried");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Control: the same hybrid payload with a freshly computed trailer
        // *would* parse — the checksum is what catches the tear.
        let payload_end = torn.rfind("sum fnv1a ").unwrap();
        let mut reblessed = torn[..payload_end].to_string();
        append_checksum(&mut reblessed);
        assert!(Checkpoint::from_text(&reblessed).is_ok());
    }

    #[test]
    fn mem_store_round_trips_and_clears() {
        let mut s = MemStore::new();
        assert!(s.load().unwrap().is_none());
        s.save("hello").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("hello"));
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
    }

    #[test]
    fn file_store_round_trips_and_survives_missing_file() {
        let dir = std::env::temp_dir().join(format!(
            "magellan-ckpt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = FileStore::new(dir.join("run.emckpt"));
        assert!(s.load().unwrap().is_none());
        let ck = Checkpoint::Blocked {
            candidates: vec![(3, 4)],
        };
        s.save(&ck.to_text()).unwrap();
        let back = Checkpoint::from_text(&s.load().unwrap().unwrap()).unwrap();
        assert_eq!(back, ck);
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
        s.clear().unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flaky_store_fails_transiently_then_converges() {
        let plan = FaultPlan {
            io_error_per_mille: 1000, // every site draws at least one failure
            ..FaultPlan::seeded(3)
        };
        let mut s = FlakyStore::new(MemStore::new(), plan);
        let mut failures = 0u32;
        let text = Checkpoint::Blocked { candidates: vec![] }.to_text();
        loop {
            match s.save(&text) {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.transient(), "injected I/O faults must be transient");
                    failures += 1;
                    assert!(failures <= plan.max_failures_per_site, "must converge");
                }
            }
        }
        assert!(failures >= 1, "per_mille=1000 should inject at least once");
        // The same logical op retried is deterministic: a fresh store with
        // the same plan fails the same number of times.
        let mut s2 = FlakyStore::new(MemStore::new(), plan);
        let mut failures2 = 0u32;
        while s2.save(&text).is_err() {
            failures2 += 1;
        }
        assert_eq!(failures, failures2);
        // Load eventually works and returns what save stored.
        let loaded = loop {
            match s.load() {
                Ok(v) => break v,
                Err(e) => assert!(e.transient()),
            }
        };
        assert_eq!(loaded.as_deref(), Some(text.as_str()));
    }
}
