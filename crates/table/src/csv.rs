//! CSV reading and writing (RFC-4180 subset).
//!
//! Hand-written rather than pulled in as a dependency: the guide's
//! "read/write data" step needs only headered, comma-separated,
//! double-quote-escaped files, and EM datasets routinely embed commas and
//! quotes inside entity names, so quoting support is mandatory.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::emtbl::ColumnarBuilder;
use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Dtype, Value};
use crate::Result;

/// Rows staged per columnar batch during streaming ingest. Bounds the
/// working set of a CSV read to one batch beyond the table's own
/// columns, independent of file size.
const CSV_BATCH_ROWS: usize = 8192;

/// Physical-line reader that charges every failure to a 1-based line
/// number. Unlike [`BufRead::lines`], invalid UTF-8 is a [`TableError::Csv`]
/// naming the offending line and byte offset — not an opaque I/O error —
/// so a half-corrupted million-row file is diagnosable. Terminators
/// (`\n` / `\r\n`) are stripped.
struct CsvLines<R: Read> {
    reader: BufReader<R>,
    /// 1-based number of the last line returned.
    line_no: usize,
}

impl<R: Read> CsvLines<R> {
    fn new(reader: R) -> Self {
        CsvLines {
            reader: BufReader::new(reader),
            line_no: 0,
        }
    }

    /// The next physical line, or `None` at end of input.
    fn next_line(&mut self) -> Result<Option<String>> {
        let mut buf = Vec::new();
        let n = self.reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        match String::from_utf8(buf) {
            Ok(s) => Ok(Some(s)),
            Err(e) => Err(TableError::Csv {
                line: self.line_no,
                message: format!(
                    "invalid UTF-8 at byte {} of the line",
                    e.utf8_error().valid_up_to()
                ),
            }),
        }
    }
}

/// Parse one CSV record starting at `line_no` (1-based, for diagnostics).
/// Returns the fields. The input must be a full logical record; embedded
/// newlines inside quotes are handled by the caller feeding joined lines.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(ch),
            }
        } else {
            match ch {
                ',' => fields.push(std::mem::take(&mut cur)),
                '"' => {
                    if !cur.is_empty() {
                        return Err(TableError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".to_owned(),
                        });
                    }
                    in_quotes = true;
                }
                _ => cur.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line: line_no,
            message: "unterminated quoted field".to_owned(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// True if the record ends inside an open quoted field (i.e. the physical
/// line must be joined with the next one).
fn ends_inside_quotes(line: &str) -> bool {
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '"' {
            if in_quotes && chars.peek() == Some(&'"') {
                chars.next();
            } else {
                in_quotes = !in_quotes;
            }
        }
    }
    in_quotes
}

/// Read a headered CSV into a table, parsing every cell according to the
/// provided schema. Empty cells become nulls.
pub fn read_csv<R: Read>(
    reader: R,
    name: impl Into<String>,
    schema: Schema,
) -> Result<Table> {
    let mut lines = CsvLines::new(reader);
    let header_line = lines.next_line()?.ok_or(TableError::Csv {
        line: 1,
        message: "empty input (missing header)".to_owned(),
    })?;
    let header = parse_record(&header_line, 1)?;
    let expected: Vec<&str> = schema.names();
    if header != expected {
        return Err(TableError::Csv {
            line: 1,
            message: format!("header {header:?} does not match schema {expected:?}"),
        });
    }

    // Streaming ingest: records are parsed straight into a bounded
    // columnar batch (one reused row buffer, no per-file row Vec) and
    // flushed into the table's columns every CSV_BATCH_ROWS rows.
    let mut table = Table::new(name, schema);
    let mut builder = ColumnarBuilder::new(table.schema().clone(), CSV_BATCH_ROWS);
    let mut row_buf: Vec<Value> = Vec::with_capacity(table.ncols());
    let mut pending: Option<String> = None;
    while let Some(line) = lines.next_line()? {
        let line_no = lines.line_no;
        let record = match pending.take() {
            Some(mut buf) => {
                buf.push('\n');
                buf.push_str(&line);
                buf
            }
            None => line,
        };
        if ends_inside_quotes(&record) {
            pending = Some(record);
            continue;
        }
        // A blank line is skippable noise for multi-column schemas, but
        // for a single-column schema it *is* a record (one null cell) —
        // exactly what the writer emits for such a row.
        if record.is_empty() && table.ncols() > 1 {
            continue;
        }
        let fields = parse_record(&record, line_no)?;
        if fields.len() != table.ncols() {
            return Err(TableError::Csv {
                line: line_no,
                message: format!(
                    "record has {} fields, schema has {} columns",
                    fields.len(),
                    table.ncols()
                ),
            });
        }
        row_buf.clear();
        for (field, decl) in fields.iter().zip(builder.schema().fields()) {
            row_buf.push(parse_cell(field, decl.dtype, line_no)?);
        }
        builder.push_row(&mut row_buf)?;
        if builder.is_full() {
            table.append_batch(builder.take_batch())?;
        }
    }
    if pending.is_some() {
        return Err(TableError::Csv {
            line: lines.line_no,
            message: "unterminated quoted field at end of input".to_owned(),
        });
    }
    table.append_batch(builder.take_batch())?;
    Ok(table)
}

/// Read a headered CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>, schema: Schema) -> Result<Table> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_owned());
    read_csv(file, name, schema)
}

fn parse_cell(raw: &str, dtype: Dtype, line_no: usize) -> Result<Value> {
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    let parsed = match dtype {
        Dtype::Bool => raw.parse::<bool>().map(Value::Bool).ok(),
        Dtype::Int => raw.parse::<i64>().map(Value::Int).ok(),
        Dtype::Float => raw.parse::<f64>().map(Value::Float).ok(),
        Dtype::Str => Some(Value::Str(raw.to_owned())),
    };
    parsed.ok_or_else(|| TableError::Csv {
        line: line_no,
        message: format!("cannot parse `{raw}` as {dtype}"),
    })
}

/// Read a headered CSV and *infer* each column's dtype from its contents:
/// a column is `Int` if every non-empty cell parses as `i64`, else `Float`
/// if every non-empty cell parses as `f64`, else `Bool` if every cell is
/// `true`/`false`, else `Str`. All-empty columns default to `Str`.
pub fn read_csv_infer<R: Read>(reader: R, name: impl Into<String>) -> Result<Table> {
    let mut lines = CsvLines::new(reader);
    let header_line = lines.next_line()?.ok_or(TableError::Csv {
        line: 1,
        message: "empty input (missing header)".to_owned(),
    })?;
    let header = parse_record(&header_line, 1)?;

    // Materialize all records first (type inference needs a full pass).
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut pending: Option<String> = None;
    while let Some(line) = lines.next_line()? {
        let line_no = lines.line_no;
        let record = match pending.take() {
            Some(mut buf) => {
                buf.push('\n');
                buf.push_str(&line);
                buf
            }
            None => line,
        };
        if ends_inside_quotes(&record) {
            pending = Some(record);
            continue;
        }
        if record.is_empty() && header.len() > 1 {
            continue; // blank line (single-column schemas treat it as a null cell)
        }
        let fields = parse_record(&record, line_no)?;
        if fields.len() != header.len() {
            return Err(TableError::Csv {
                line: line_no,
                message: format!(
                    "record has {} fields, header has {} columns",
                    fields.len(),
                    header.len()
                ),
            });
        }
        records.push(fields);
    }
    if pending.is_some() {
        return Err(TableError::Csv {
            line: lines.line_no,
            message: "unterminated quoted field at end of input".to_owned(),
        });
    }

    let infer = |col: usize| -> Dtype {
        let cells = records.iter().map(|r| r[col].as_str()).filter(|c| !c.is_empty());
        let mut any = false;
        let (mut int_ok, mut float_ok, mut bool_ok) = (true, true, true);
        for c in cells {
            any = true;
            int_ok = int_ok && c.parse::<i64>().is_ok();
            float_ok = float_ok && c.parse::<f64>().is_ok();
            bool_ok = bool_ok && c.parse::<bool>().is_ok();
        }
        if !any {
            Dtype::Str
        } else if int_ok {
            Dtype::Int
        } else if float_ok {
            Dtype::Float
        } else if bool_ok {
            Dtype::Bool
        } else {
            Dtype::Str
        }
    };
    let fields: Vec<crate::schema::Field> = header
        .iter()
        .enumerate()
        .map(|(c, name)| crate::schema::Field::new(name.clone(), infer(c)))
        .collect();
    let schema = Schema::new(fields)?;
    let mut table = Table::with_capacity(name, schema, records.len());
    for (i, rec) in records.into_iter().enumerate() {
        let row: Vec<Value> = rec
            .into_iter()
            .enumerate()
            .map(|(c, cell)| parse_cell(&cell, table.schema().field(c).dtype, i + 2))
            .collect::<Result<_>>()?;
        table.push_row(row)?;
    }
    Ok(table)
}

/// Quote a field if it contains a delimiter, quote, or newline.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Write a table as headered CSV. Nulls are written as empty cells.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    let header: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|n| escape(n))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for r in table.rows() {
        let cells: Vec<String> = (0..table.ncols())
            .map(|c| escape(&table.value(r, c).display_string()))
            .collect();
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Write a table as headered CSV to a file path.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(table, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", Dtype::Str), ("name", Dtype::Str), ("n", Dtype::Int)])
            .unwrap()
    }

    #[test]
    fn roundtrip_with_quoting_and_nulls() {
        let t = Table::from_rows(
            "T",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("n", Dtype::Int)],
            vec![
                vec!["a1".into(), "Smith, David \"Dave\"".into(), Value::Int(4)],
                vec!["a2".into(), Value::Null, Value::Null],
                vec!["a3".into(), "multi\nline".into(), Value::Int(-1)],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), "T", schema()).unwrap();
        assert_eq!(back.nrows(), 3);
        assert_eq!(
            back.value_by_name(0, "name").unwrap().as_str(),
            Some("Smith, David \"Dave\"")
        );
        assert!(back.value_by_name(1, "name").unwrap().is_null());
        assert_eq!(
            back.value_by_name(2, "name").unwrap(),
            ValueRef::Str("multi\nline")
        );
        assert_eq!(back.value_by_name(2, "n").unwrap().as_int(), Some(-1));
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let data = "id,wrong,n\na1,x,1\n";
        let err = read_csv(data.as_bytes(), "T", schema()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn bad_int_cell_reports_line() {
        let data = "id,name,n\na1,x,1\na2,y,NaNope\n";
        let err = read_csv(data.as_bytes(), "T", schema()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("NaNope"));
    }

    #[test]
    fn ragged_record_is_rejected() {
        let data = "id,name,n\na1,x\n";
        assert!(read_csv(data.as_bytes(), "T", schema()).is_err());
    }

    #[test]
    fn ragged_record_reports_its_line_number() {
        let data = "id,name,n\na1,x,1\na2,y,2,extra\n";
        let err = read_csv(data.as_bytes(), "T", schema()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("4 fields"), "{msg}");
        let data = "id,name,n\na1,x,1\na2,y\n";
        let err = read_csv(data.as_bytes(), "T", schema()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let data = "id,name,n\na1,\"open,1\n";
        assert!(read_csv(data.as_bytes(), "T", schema()).is_err());
    }

    #[test]
    fn unterminated_quote_reports_last_line() {
        let data = "id,name,n\na1,x,1\na2,\"never closed,2\na3,z,3\n";
        let err = read_csv(data.as_bytes(), "T", schema()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unterminated") && msg.contains("line 4"),
            "{msg}"
        );
    }

    #[test]
    fn invalid_utf8_is_a_csv_error_with_line_number() {
        let mut data: Vec<u8> = b"id,name,n\na1,ok,1\na2,".to_vec();
        data.extend_from_slice(&[0xff, 0xfe]); // not UTF-8
        data.extend_from_slice(b",2\na3,ok,3\n");
        let err = read_csv(data.as_slice(), "T", schema()).unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 3, .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("invalid UTF-8") && msg.contains("line 3"), "{msg}");

        // Same contract for the inferring reader.
        let err = read_csv_infer(data.as_slice(), "T").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 3, .. }), "{err:?}");

        // ... and for a corrupted header.
        let mut hdr: Vec<u8> = vec![0xC0, 0x80]; // overlong encoding, invalid
        hdr.extend_from_slice(b",name\nx,y\n");
        let err = read_csv_infer(hdr.as_slice(), "T").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn crlf_terminators_are_stripped() {
        let data = "id,name,n\r\na1,x,1\r\na2,y,2\r\n";
        let t = read_csv(data.as_bytes(), "T", schema()).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.value_by_name(1, "name").unwrap().as_str(), Some("y"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let data = "id,name,n\na1,x,1\n\na2,y,2\n";
        let t = read_csv(data.as_bytes(), "T", schema()).unwrap();
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn empty_input_fails_cleanly() {
        assert!(read_csv("".as_bytes(), "T", schema()).is_err());
    }

    #[test]
    fn inference_detects_column_types() {
        let data = "id,name,age,score,flag\na1,Dave,40,1.5,true\na2,Joe,,2.25,false\n";
        let t = read_csv_infer(data.as_bytes(), "T").unwrap();
        let types: Vec<Dtype> = t.schema().fields().iter().map(|f| f.dtype).collect();
        assert_eq!(
            types,
            vec![Dtype::Str, Dtype::Str, Dtype::Int, Dtype::Float, Dtype::Bool]
        );
        assert_eq!(t.value_by_name(0, "age").unwrap().as_int(), Some(40));
        assert!(t.value_by_name(1, "age").unwrap().is_null());
        assert_eq!(t.value_by_name(1, "score").unwrap().as_float(), Some(2.25));
        assert_eq!(t.value_by_name(0, "flag").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn inference_int_column_with_a_decimal_becomes_float() {
        let data = "n\n1\n2.5\n3\n";
        let t = read_csv_infer(data.as_bytes(), "T").unwrap();
        assert_eq!(t.schema().field(0).dtype, Dtype::Float);
        assert_eq!(t.value_by_name(0, "n").unwrap().as_float(), Some(1.0));
    }

    #[test]
    fn inference_all_empty_column_is_string() {
        let data = "a,b\nx,\ny,\n";
        let t = read_csv_infer(data.as_bytes(), "T").unwrap();
        assert_eq!(t.schema().field(1).dtype, Dtype::Str);
        assert!(t.value_by_name(0, "b").unwrap().is_null());
    }
}
