//! # magellan-bench
//!
//! The experiment harness: one `exp_*` binary per table/figure of the
//! paper (see DESIGN.md's experiment index), plus Criterion micro-benches
//! in `benches/`. Shared harness helpers live here.

pub mod benchdiff;

use std::collections::HashSet;

use magellan_block::CandidateSet;
use magellan_ml::Metrics;
use magellan_table::Table;

/// Score a predicted candidate set against gold id pairs (thin wrapper so
/// every experiment binary reports identically).
pub fn score(
    matches: &CandidateSet,
    a: &Table,
    b: &Table,
    gold: &HashSet<(String, String)>,
) -> Metrics {
    magellan_core::evaluate::evaluate_matches(matches, a, b, "id", "id", gold)
        .expect("scenario tables always carry an `id` key")
}

/// Render seconds the way the paper's Table 2 does (9m, 2h, 22h...).
pub fn human_time(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.1}h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.0}m", seconds / 60.0)
    } else {
        format!("{seconds:.0}s")
    }
}

/// Render an optional dollar amount ("-" for zero, Table 2 style).
pub fn dollars(v: f64) -> String {
    if v == 0.0 {
        "-".to_owned()
    } else {
        format!("${v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_time_formats() {
        assert_eq!(human_time(30.0), "30s");
        assert_eq!(human_time(540.0), "9m");
        assert_eq!(human_time(2.0 * 3600.0), "2.0h");
    }

    #[test]
    fn dollars_formats() {
        assert_eq!(dollars(0.0), "-");
        assert_eq!(dollars(2.33), "$2.33");
    }
}
