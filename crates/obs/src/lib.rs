//! # magellan-obs — the unified observability layer
//!
//! The paper's production stage (§4.1) and CloudMatcher's metamanager
//! (§5.1) live or die by operators being able to see *where* a
//! long-running EM workflow spends its time and *why* fragments retry,
//! degrade, or straggle. This crate is the one observable surface every
//! other Magellan crate reports into:
//!
//! * **spans** — thread-local span stacks with deterministic IDs
//!   (`id = mix(parent, name, key)`), nested `run → phase → chunk → retry`
//!   scopes, recorded into a bounded per-thread ring buffer and merged
//!   across workers in a canonical tree order at snapshot time;
//! * a **metrics registry** — named counters, gauges, and log₂-bucketed
//!   histograms with deterministic merge and snapshot, following the
//!   `magellan_<crate>_<name>` naming scheme;
//! * an **event log** for discrete occurrences (fault injected, retry
//!   scheduled, backoff slept, checkpoint written, fragment degraded,
//!   straggler speculated, worker died/recovered);
//! * two **exporters** — Prometheus-style text ([`ObsSnapshot::to_prometheus`])
//!   and Chrome `trace_event` JSON ([`ObsSnapshot::to_chrome_trace`])
//!   loadable in Perfetto / `chrome://tracing`.
//!
//! ## The recorder model
//!
//! An [`Obs`] recorder is an explicit, cheaply clonable handle (no global
//! singleton): tests and concurrent pipelines each own their recorder and
//! cannot pollute one another. A recorder becomes *ambient* on a thread
//! via [`Obs::install`]; library code then reports through the free
//! functions ([`span`], [`event`], [`counter_add`], …), all of which are
//! no-ops when nothing is installed — the disabled cost is a single
//! thread-local read. Worker pools propagate the ambient recorder into
//! their workers with [`Obs::install_under`], parenting worker-side spans
//! under the caller's span.
//!
//! ## The determinism contract
//!
//! With a **pinned clock** ([`Obs::pinned`]) all timestamps come from an
//! explicitly advanced simulated clock, span IDs are pure functions of
//! the span path, and snapshot merge order is canonical (tree order, not
//! scheduling order). Under the same conditions the rest of the stack
//! already guarantees (fixed chunk size, fault plans that stay under the
//! retry budget), **two runs at any worker count produce byte-identical
//! Prometheus and Chrome-trace exports** — enforced end to end by
//! `crates/core/tests/obs_determinism.rs`.
//!
//! ## Logging
//!
//! [`log!`] is the leveled logging macro gated by the `MAGELLAN_LOG`
//! environment variable (`error|warn|info|debug|trace|off`); library code
//! never writes to stdout unconditionally. See [`set_log_level`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod flight;
mod json;
mod logging;
mod metrics;
mod profile;
mod snapshot;
mod span;

pub use event::{EvVal, EventRec};
pub use flight::{FLIGHT_EVENTS, FLIGHT_FAILURES, FLIGHT_SPANS};
pub use json::{parse as parse_json, Json};
pub use logging::{init_bin_logging, log_enabled, log_level, set_log_level, Level};
#[doc(hidden)]
pub use logging::__log_emit;
pub use metrics::{Histogram, MetricValue, N_BUCKETS};
pub use profile::{ObsProfile, ProfileNode};
pub use snapshot::ObsSnapshot;
pub use span::{SpanGuard, SpanRec};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Real wall-clock (nanoseconds since recorder creation). Useful for
    /// profiling; exports are *not* run-to-run reproducible.
    #[default]
    Wall,
    /// A simulated clock that only moves when explicitly advanced
    /// ([`Obs::set_time_ns`] / [`Obs::advance_ns`]). The basis of the
    /// byte-identical export contract.
    Pinned,
}

/// Default bound on buffered span records per thread registration.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;
/// Default bound on buffered event records per thread registration.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// SplitMix64 — the stateless mixer behind deterministic span IDs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a name: stable across runs and platforms.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic span id: a pure function of `(parent, name, key)`.
pub fn span_id(parent: u64, name: &str, key: u64) -> u64 {
    let mut h = splitmix64(parent ^ hash_name(name));
    h = splitmix64(h ^ key);
    // Reserve 0 for "no parent".
    h.max(1)
}

/// One per-thread registration's bounded buffers.
pub(crate) struct ThreadBuf {
    /// Registration order (used as the Chrome-trace `tid` in wall mode).
    pub(crate) lane: u32,
    pub(crate) spans: Mutex<Vec<SpanRec>>,
    pub(crate) events: Mutex<Vec<EventRec>>,
    pub(crate) dropped_spans: AtomicUsize,
    pub(crate) dropped_events: AtomicUsize,
}

impl ThreadBuf {
    fn new(lane: u32) -> Self {
        ThreadBuf {
            lane,
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            dropped_spans: AtomicUsize::new(0),
            dropped_events: AtomicUsize::new(0),
        }
    }

    pub(crate) fn push_span(&self, rec: SpanRec, cap: usize) {
        match self.spans.lock() {
            Ok(mut v) if v.len() < cap => v.push(rec),
            Ok(_) => {
                self.dropped_spans.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
    }

    pub(crate) fn push_event(&self, rec: EventRec, cap: usize) {
        match self.events.lock() {
            Ok(mut v) if v.len() < cap => v.push(rec),
            Ok(_) => {
                self.dropped_events.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
    }
}

struct Inner {
    id: u64,
    mode: ClockMode,
    origin: Instant,
    pinned_ns: AtomicU64,
    span_capacity: usize,
    event_capacity: usize,
    bufs: Mutex<Vec<Arc<ThreadBuf>>>,
    metrics: Mutex<BTreeMap<String, MetricValue>>,
    /// Failures noted via [`flight_on_failure`]; a non-zero count makes
    /// [`flight_autodump`] write the flight-recorder artifact.
    failures: AtomicUsize,
    /// Run context for flight-dump artifact keying: `(seed, workers)`.
    run_seed: AtomicU64,
    run_workers: AtomicU64,
    /// Counter values at the previous flight dump, for per-dump deltas.
    last_dump_counters: Mutex<BTreeMap<String, u64>>,
}

/// A recorder handle. Cheap to clone (one `Arc`); all clones share the
/// same buffers, registry, and clock.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("id", &self.inner.id)
            .field("mode", &self.inner.mode)
            .finish()
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

impl Obs {
    fn with_mode(mode: ClockMode) -> Self {
        Obs {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                mode,
                origin: Instant::now(),
                pinned_ns: AtomicU64::new(0),
                span_capacity: DEFAULT_SPAN_CAPACITY,
                event_capacity: DEFAULT_EVENT_CAPACITY,
                bufs: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
                failures: AtomicUsize::new(0),
                run_seed: AtomicU64::new(0),
                run_workers: AtomicU64::new(0),
                last_dump_counters: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// A wall-clock recorder (profiling mode).
    pub fn wall() -> Self {
        Obs::with_mode(ClockMode::Wall)
    }

    /// A pinned-clock recorder (deterministic mode).
    pub fn pinned() -> Self {
        Obs::with_mode(ClockMode::Pinned)
    }

    /// Override the per-thread span ring-buffer capacity.
    pub fn with_span_capacity(mut self, cap: usize) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("set capacities before sharing the recorder")
            .span_capacity = cap.max(1);
        self
    }

    /// Override the per-thread event ring-buffer capacity.
    pub fn with_event_capacity(mut self, cap: usize) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("set capacities before sharing the recorder")
            .event_capacity = cap.max(1);
        self
    }

    /// This recorder's clock mode.
    pub fn clock(&self) -> ClockMode {
        self.inner.mode
    }

    /// True for pinned-clock (deterministic) recorders.
    pub fn is_pinned(&self) -> bool {
        self.inner.mode == ClockMode::Pinned
    }

    /// Current time in nanoseconds: wall-elapsed since creation, or the
    /// pinned clock's value.
    pub fn now_ns(&self) -> u64 {
        match self.inner.mode {
            ClockMode::Wall => self.inner.origin.elapsed().as_nanos() as u64,
            ClockMode::Pinned => self.inner.pinned_ns.load(Ordering::Relaxed),
        }
    }

    /// Set the pinned clock (no-op in wall mode). Only moves forward.
    pub fn set_time_ns(&self, ns: u64) {
        if self.inner.mode == ClockMode::Pinned {
            self.inner.pinned_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Advance the pinned clock by `ns` (no-op in wall mode).
    pub fn advance_ns(&self, ns: u64) {
        if self.inner.mode == ClockMode::Pinned {
            self.inner.pinned_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Advance the pinned clock by (non-negative, finite) seconds.
    pub fn advance_s(&self, s: f64) {
        if s > 0.0 && s.is_finite() {
            self.advance_ns((s * 1e9) as u64);
        }
    }

    fn register_thread_buf(&self) -> Arc<ThreadBuf> {
        let mut bufs = self.inner.bufs.lock().unwrap_or_else(|e| e.into_inner());
        let lane = bufs.len() as u32;
        let buf = Arc::new(ThreadBuf::new(lane));
        bufs.push(Arc::clone(&buf));
        buf
    }

    /// Make this recorder ambient on the current thread until the guard
    /// drops. Spans opened while installed nest under the thread's span
    /// stack; metrics and events route to this recorder.
    pub fn install(&self) -> InstallGuard {
        self.install_under(None)
    }

    /// [`Obs::install`] with an explicit parent span id — how worker
    /// pools parent worker-side spans under the caller's current span.
    pub fn install_under(&self, parent: Option<u64>) -> InstallGuard {
        let buf = self.register_thread_buf();
        CURRENT.with(|c| {
            c.borrow_mut().push(Ctx {
                obs: self.clone(),
                buf,
                stack: parent.into_iter().collect(),
                open_res: Vec::new(),
            })
        });
        InstallGuard { obs_id: self.inner.id }
    }

    /// Record the run context used to key flight-recorder artifacts:
    /// `{seed}` / `{workers}` placeholders in the `MAGELLAN_FLIGHT_DUMP`
    /// path are substituted with these values.
    pub fn set_run_context(&self, seed: u64, workers: u64) {
        self.inner.run_seed.store(seed, Ordering::Relaxed);
        self.inner.run_workers.store(workers, Ordering::Relaxed);
    }

    /// Note a failure worth a post-mortem. The flight recorder defers the
    /// actual dump to [`Obs::write_flight_dump`] (normally called at run
    /// end) so dump content stays a pure function of the canonical
    /// snapshot rather than of mid-run scheduling state.
    pub fn note_failure(&self) {
        self.inner.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of failures noted so far via [`Obs::note_failure`].
    pub fn failure_count(&self) -> usize {
        self.inner.failures.load(Ordering::Relaxed)
    }

    // ---- metrics ----------------------------------------------------

    /// Add `v` to the named counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut m = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c = c.saturating_add(v),
            Some(_) => debug_assert!(false, "metric {name} is not a counter"),
            None => {
                m.insert(name.to_owned(), MetricValue::Counter(v));
            }
        }
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut m = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m.get_mut(name) {
            Some(MetricValue::Gauge(g)) => *g = v,
            Some(_) => debug_assert!(false, "metric {name} is not a gauge"),
            None => {
                m.insert(name.to_owned(), MetricValue::Gauge(v));
            }
        }
    }

    /// Raise the named gauge to `v` if `v` is larger (monotonic
    /// max-gauge). The primitive behind peak/byte gauges — repeated runs
    /// in one process report the *high-water mark* instead of clobbering
    /// each other last-write-wins. NaN never wins.
    pub fn gauge_max(&self, name: &str, v: f64) {
        let mut m = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m.get_mut(name) {
            Some(MetricValue::Gauge(g)) => *g = g.max(v),
            Some(_) => debug_assert!(false, "metric {name} is not a gauge"),
            None => {
                m.insert(name.to_owned(), MetricValue::Gauge(v));
            }
        }
    }

    /// Record `v` into the named log₂-bucketed histogram.
    pub fn hist_record(&self, name: &str, v: u64) {
        let mut m = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(v),
            Some(_) => debug_assert!(false, "metric {name} is not a histogram"),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                m.insert(name.to_owned(), MetricValue::Histogram(h));
            }
        }
    }

    // ---- snapshot ---------------------------------------------------

    /// Merge every thread buffer and the registry into a canonical,
    /// deterministic [`ObsSnapshot`]. Non-destructive: buffers keep
    /// accumulating afterwards.
    pub fn snapshot(&self) -> ObsSnapshot {
        let bufs = self.inner.bufs.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans = Vec::new();
        let mut events = Vec::new();
        let mut dropped_spans = 0usize;
        let mut dropped_events = 0usize;
        for b in bufs.iter() {
            if let Ok(s) = b.spans.lock() {
                spans.extend(s.iter().cloned());
            }
            if let Ok(e) = b.events.lock() {
                events.extend(e.iter().cloned());
            }
            dropped_spans += b.dropped_spans.load(Ordering::Relaxed);
            dropped_events += b.dropped_events.load(Ordering::Relaxed);
        }
        drop(bufs);
        let metrics = self
            .inner
            .metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        ObsSnapshot::build(self.inner.mode, spans, events, metrics, dropped_spans, dropped_events)
    }
}

/// One installed recorder context on a thread.
struct Ctx {
    obs: Obs,
    buf: Arc<ThreadBuf>,
    /// Span-id stack; the bottom entry may be an explicit cross-thread
    /// parent installed via [`Obs::install_under`].
    stack: Vec<u64>,
    /// Resource attributions `(span_id, kind, bytes)` pending against
    /// spans still open on this thread; drained into [`SpanRec::res`]
    /// when the owning guard drops.
    open_res: Vec<(u64, &'static str, u64)>,
}

thread_local! {
    static CURRENT: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls its recorder from the thread on drop.
#[must_use = "the recorder is uninstalled when the guard drops"]
pub struct InstallGuard {
    obs_id: u64,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|ctx| ctx.obs.inner.id == self.obs_id) {
                stack.remove(pos);
            }
        });
    }
}

/// The recorder currently installed on this thread, if any.
pub fn current() -> Option<Obs> {
    CURRENT.with(|c| c.borrow().last().map(|ctx| ctx.obs.clone()))
}

/// The current thread's innermost open span id, if a recorder is
/// installed and a span is open (or an explicit parent was installed).
pub fn current_span() -> Option<u64> {
    CURRENT.with(|c| c.borrow().last().and_then(|ctx| ctx.stack.last().copied()))
}

/// Run `f` with the installed recorder context, if any.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&mut Ctx) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow_mut().last_mut().map(f))
}

pub(crate) fn with_ctx_of<R>(obs_id: u64, f: impl FnOnce(&mut Ctx) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let mut stack = c.borrow_mut();
        stack
            .iter_mut()
            .rev()
            .find(|ctx| ctx.obs.inner.id == obs_id)
            .map(f)
    })
}

impl Ctx {
    fn now_ns(&self) -> u64 {
        self.obs.now_ns()
    }
}

// ---- free-function instrumentation surface --------------------------

/// Open a span named `name` with disambiguating `key` under the current
/// span. Returns a guard that records the span when dropped. No-op (and
/// allocation-free) when no recorder is installed.
pub fn span(name: &'static str, key: u64) -> SpanGuard {
    span::open(name, key)
}

/// Record an already-timed span (e.g. a simulated-schedule fragment)
/// under `parent` (`None` = the current span). Returns the span id so
/// children can be recorded beneath it, or `None` when disabled.
pub fn record_span_at(
    parent: Option<u64>,
    name: &'static str,
    key: u64,
    start_ns: u64,
    end_ns: u64,
) -> Option<u64> {
    with_ctx(|ctx| {
        let parent = parent.or_else(|| ctx.stack.last().copied()).unwrap_or(0);
        let id = span_id(parent, name, key);
        let rec = SpanRec {
            id,
            parent,
            name,
            key,
            start_ns,
            end_ns: end_ns.max(start_ns),
            lane: ctx.buf.lane,
            res: Vec::new(),
        };
        ctx.buf.push_span(rec, ctx.obs.inner.span_capacity);
        id
    })
}

/// Record a discrete event at the current clock time, tagged with the
/// current span. No-op when no recorder is installed.
pub fn event(name: &'static str, fields: &[(&'static str, EvVal)]) {
    with_ctx(|ctx| {
        let t_ns = ctx.now_ns();
        let rec = EventRec {
            t_ns,
            name,
            span: ctx.stack.last().copied().unwrap_or(0),
            fields: fields.to_vec(),
        };
        ctx.buf.push_event(rec, ctx.obs.inner.event_capacity);
    });
}

/// [`event`] with an explicit timestamp (simulated-schedule timelines).
pub fn event_at(t_ns: u64, name: &'static str, fields: &[(&'static str, EvVal)]) {
    with_ctx(|ctx| {
        let rec = EventRec {
            t_ns,
            name,
            span: ctx.stack.last().copied().unwrap_or(0),
            fields: fields.to_vec(),
        };
        ctx.buf.push_event(rec, ctx.obs.inner.event_capacity);
    });
}

/// Add to a counter on the installed recorder (no-op when disabled).
pub fn counter_add(name: &str, v: u64) {
    if let Some(obs) = current() {
        obs.counter_add(name, v);
    }
}

/// Set a gauge on the installed recorder (no-op when disabled).
pub fn gauge_set(name: &str, v: f64) {
    if let Some(obs) = current() {
        obs.gauge_set(name, v);
    }
}

/// Raise a gauge monotonically on the installed recorder (no-op when
/// disabled). See [`Obs::gauge_max`].
pub fn gauge_max(name: &str, v: f64) {
    if let Some(obs) = current() {
        obs.gauge_max(name, v);
    }
}

/// Attribute `bytes` of resource `kind` (e.g. `"csr_index_bytes"`,
/// `"shard_index_bytes"`) to the current thread's innermost open span.
/// Repeated attributions of the same kind sum. No-op when no recorder is
/// installed or no span is open.
pub fn span_res_add(kind: &'static str, bytes: u64) {
    with_ctx(|ctx| {
        if let Some(&id) = ctx.stack.last() {
            ctx.open_res.push((id, kind, bytes));
        }
    });
}

/// Record run context (`seed`, `workers`) on the installed recorder for
/// flight-dump artifact keying. No-op when disabled.
pub fn set_run_context(seed: u64, workers: u64) {
    if let Some(obs) = current() {
        obs.set_run_context(seed, workers);
    }
}

/// Note a failure on the installed recorder and emit a canonical
/// `flight_failure` event carrying `reason` plus the caller's fields.
/// The flight recorder writes its dump at run end ([`flight_autodump`])
/// iff at least one failure was noted. No-op when disabled.
pub fn flight_on_failure(reason: &'static str, fields: &[(&'static str, EvVal)]) {
    if let Some(obs) = current() {
        obs.note_failure();
        let mut all: Vec<(&'static str, EvVal)> = Vec::with_capacity(fields.len() + 1);
        all.push(("reason", EvVal::S(reason)));
        all.extend(fields.iter().cloned());
        event("flight_failure", &all);
        obs.counter_add("magellan_obs_flight_failures_total", 1);
    }
}

/// Write the flight-recorder dump for the installed recorder if any
/// failure was noted this run and `MAGELLAN_FLIGHT_DUMP` is set.
/// Call at the end of a run (pipelines call it from their `finish`
/// path). Returns the path written, if any.
pub fn flight_autodump() -> Option<String> {
    let obs = current()?;
    obs.flight_autodump()
}

/// Record into a histogram on the installed recorder (no-op when disabled).
pub fn hist_record(name: &str, v: u64) {
    if let Some(obs) = current() {
        obs.hist_record(name, v);
    }
}

/// Record a backoff sleep of `delay_s` simulated seconds: emits the
/// `backoff_slept` event and advances a pinned recorder's clock so the
/// deterministic timeline shows the sleep. Call *after* advancing the
/// executor's own `SimClock`.
pub fn on_backoff(delay_s: f64) {
    if let Some(obs) = current() {
        obs.advance_s(delay_s);
        event("backoff_slept", &[("seconds", EvVal::F(delay_s))]);
    }
}

/// The Chrome-trace export path requested via the `MAGELLAN_TRACE`
/// environment variable, if set and non-empty.
pub fn trace_export_path() -> Option<String> {
    match std::env::var("MAGELLAN_TRACE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// The profile export path requested via the `MAGELLAN_PROFILE`
/// environment variable, if set and non-empty. A `.json` extension
/// selects the JSON profile; anything else gets the collapsed-stack
/// (flamegraph folded) format.
pub fn profile_export_path() -> Option<String> {
    match std::env::var("MAGELLAN_PROFILE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// The flight-dump path template requested via the
/// `MAGELLAN_FLIGHT_DUMP` environment variable, if set and non-empty.
/// May contain `{seed}` / `{workers}` placeholders — see
/// [`Obs::write_flight_dump`].
pub fn flight_dump_path() -> Option<String> {
    match std::env::var("MAGELLAN_FLIGHT_DUMP") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_surface_is_a_no_op() {
        assert!(current().is_none());
        assert!(current_span().is_none());
        {
            let _s = span("orphan", 1);
            assert!(current_span().is_none());
        }
        event("nothing", &[]);
        counter_add("magellan_obs_nothing_total", 1);
        gauge_set("magellan_obs_nothing", 1.0);
        hist_record("magellan_obs_nothing_hist", 1);
        on_backoff(1.0);
        assert!(record_span_at(None, "x", 0, 0, 1).is_none());
    }

    #[test]
    fn install_scopes_recording_to_the_thread() {
        let obs = Obs::pinned();
        {
            let _g = obs.install();
            assert!(current().is_some());
            let _s = span("run", 0);
            assert_eq!(current_span(), Some(span_id(0, "run", 0)));
            counter_add("magellan_obs_test_total", 2);
        }
        assert!(current().is_none());
        let snap = obs.snapshot();
        assert_eq!(snap.counter("magellan_obs_test_total"), 2);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "run");
    }

    #[test]
    fn nested_installs_restore_the_outer_recorder() {
        let a = Obs::pinned();
        let b = Obs::pinned();
        let _ga = a.install();
        {
            let _gb = b.install();
            counter_add("magellan_obs_inner_total", 1);
        }
        counter_add("magellan_obs_outer_total", 1);
        assert_eq!(b.snapshot().counter("magellan_obs_inner_total"), 1);
        assert_eq!(a.snapshot().counter("magellan_obs_inner_total"), 0);
        assert_eq!(a.snapshot().counter("magellan_obs_outer_total"), 1);
    }

    #[test]
    fn gauge_max_is_monotonic_where_gauge_set_clobbers() {
        let obs = Obs::pinned();
        let _g = obs.install();
        // Two joins publish their peaks; the smaller, later one must not
        // clobber the high-water mark.
        gauge_max("magellan_simjoin_shard_peak_index_bytes", 4096.0);
        gauge_max("magellan_simjoin_shard_peak_index_bytes", 512.0);
        assert_eq!(
            obs.snapshot().gauge("magellan_simjoin_shard_peak_index_bytes"),
            4096.0
        );
        gauge_max("magellan_simjoin_shard_peak_index_bytes", 8192.0);
        gauge_max("magellan_simjoin_shard_peak_index_bytes", f64::NAN);
        assert_eq!(
            obs.snapshot().gauge("magellan_simjoin_shard_peak_index_bytes"),
            8192.0,
            "NaN never wins"
        );
        // Contrast: gauge_set stays last-write-wins.
        gauge_set("magellan_obs_lww", 10.0);
        gauge_set("magellan_obs_lww", 1.0);
        assert_eq!(obs.snapshot().gauge("magellan_obs_lww"), 1.0);
    }

    #[test]
    fn span_res_attribution_sums_per_kind_and_sorts() {
        let obs = Obs::pinned();
        let _g = obs.install();
        {
            let _s = span("shard_build", 0);
            span_res_add("shard_index_bytes", 100);
            span_res_add("csr_index_bytes", 7);
            span_res_add("shard_index_bytes", 28);
        }
        span_res_add("orphan_bytes", 1); // no open span: dropped
        let snap = obs.snapshot();
        assert_eq!(
            snap.spans[0].res,
            vec![("csr_index_bytes", 7), ("shard_index_bytes", 128)]
        );
    }

    #[test]
    fn pinned_clock_moves_only_when_advanced() {
        let obs = Obs::pinned();
        assert_eq!(obs.now_ns(), 0);
        obs.advance_s(1.5);
        assert_eq!(obs.now_ns(), 1_500_000_000);
        obs.advance_s(-3.0);
        obs.advance_s(f64::NAN);
        assert_eq!(obs.now_ns(), 1_500_000_000);
        obs.set_time_ns(1_000); // never moves backwards
        assert_eq!(obs.now_ns(), 1_500_000_000);
        obs.set_time_ns(2_000_000_000);
        assert_eq!(obs.now_ns(), 2_000_000_000);
    }

    #[test]
    fn span_ids_are_deterministic_and_path_sensitive() {
        let a = span_id(0, "run", 0);
        assert_eq!(a, span_id(0, "run", 0));
        assert_ne!(a, span_id(0, "run", 1));
        assert_ne!(a, span_id(0, "phase", 0));
        assert_ne!(a, span_id(a, "run", 0));
        assert_ne!(span_id(0, "run", 0), 0, "0 is reserved for no-parent");
    }

    #[test]
    fn ring_buffer_bounds_are_enforced() {
        let obs = Obs::pinned().with_span_capacity(4).with_event_capacity(2);
        let _g = obs.install();
        for i in 0..10 {
            let _s = span("chunk", i);
            event("tick", &[("i", EvVal::U(i))]);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped_spans, 6);
        assert_eq!(snap.dropped_events, 8);
    }

    #[test]
    fn install_under_parents_cross_thread_spans() {
        let obs = Obs::pinned();
        let _g = obs.install();
        let root = span("run", 7);
        let parent = current_span();
        assert!(parent.is_some());
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = obs.install_under(parent);
                let _c = span("chunk", 3);
            });
        });
        drop(root);
        let snap = obs.snapshot();
        let chunk = snap.spans.iter().find(|r| r.name == "chunk").unwrap();
        assert_eq!(chunk.parent, span_id(0, "run", 7));
        assert_eq!(snap.max_depth(), 2, "run -> chunk");
    }
}
