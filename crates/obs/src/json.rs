//! A minimal, dependency-free JSON parser.
//!
//! Exists so the CI trace-validation step (`exp_obs --validate`) and the
//! obs test suite can check that exported Chrome traces are well-formed
//! without pulling `serde` into the workspace. Recursive-descent, strict
//! enough for round-tripping our own exporter plus ordinary JSON.

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The `&str` inside [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool inside [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members of [`Json::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value(depth + 1)?;
            out.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".to_owned());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_owned())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.i += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => { out.push('"'); self.i += 1; }
                        Some(b'\\') => { out.push('\\'); self.i += 1; }
                        Some(b'/') => { out.push('/'); self.i += 1; }
                        Some(b'b') => { out.push('\u{8}'); self.i += 1; }
                        Some(b'f') => { out.push('\u{c}'); self.i += 1; }
                        Some(b'n') => { out.push('\n'); self.i += 1; }
                        Some(b'r') => { out.push('\r'); self.i += 1; }
                        Some(b't') => { out.push('\t'); self.i += 1; }
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi)
                                && self.b.get(self.i) == Some(&b'\\')
                                && self.b.get(self.i + 1) == Some(&b'u')
                            {
                                self.i += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source.
                    let start = self.i;
                    let rest = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control char at byte {}", start));
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_typical_trace_document() {
        let doc = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"run","ph":"X","ts":1,"dur":10,"args":{"key":0}},
            {"name":"fault_injected","ph":"i","ts":2.5,"args":{"kind":"panic","ok":true,"n":null}}
        ]}"#;
        let j = parse(doc).unwrap();
        let evs = j.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("run"));
        assert_eq!(evs[1].get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            evs[1].get("args").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(evs[1].get("args").unwrap().get("n"), Some(&Json::Null));
    }

    #[test]
    fn escapes_and_unicode() {
        let j = parse(r#""a\"b\\c\nA😀""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\u{1}\"").is_err());
    }
}
