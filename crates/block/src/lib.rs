//! # magellan-block
//!
//! Blocking: the first half of every EM workflow in the paper (Fig. 2 step
//! "select/execute blocker", Fig. 3 steps 1–4). A blocker takes two tables
//! and produces a *candidate set* of row pairs, cheaply discarding the
//! obviously-non-matching bulk of the cross product.
//!
//! Provided blockers (Table 3, "Blocking" row lists 21 commands; the core
//! family is reproduced here):
//!
//! * [`blockers::AttrEquivalenceBlocker`] — equality on an attribute pair;
//! * [`blockers::HashBlocker`] — bucketed equality (normalized values);
//! * [`blockers::OverlapBlocker`] — ≥ k shared tokens, executed as a
//!   sim-join, the workhorse for textual attributes;
//! * [`blockers::SimJoinBlocker`] — any `magellan-simjoin` measure;
//! * [`blockers::SortedNeighborhoodBlocker`] — classic windowed merge;
//! * [`blockers::BlackBoxBlocker`] — arbitrary user predicate (the paper's
//!   "black-box blocker"), for small inputs or candidate refinement;
//! * [`rules::RuleBasedBlocker`] — conjunctions of low-similarity
//!   predicates that *drop* pairs (the form Falcon extracts from random
//!   forests, Fig. 4), executed scalably as unions/intersections of
//!   similarity joins.
//!
//! [`debugger::debug_blocker`] implements the paper's "pain point" tool:
//! it surfaces likely matches that blocking would kill, before you spend
//! labeling effort downstream. [`metrics`] scores candidate sets (recall
//! against gold, reduction ratio).
//!
//! Candidate sets are stored as row-index pairs ([`candidate::CandidateSet`])
//! and materialize to an `(l_id, r_id)` table plus catalog metadata — the
//! paper's space-efficiency principle (§4.1): a candidate table carries
//! only the two keys, never the full attribute payload.

#![warn(missing_docs)]

pub mod blockers;
pub mod candidate;
pub mod dedup;
pub mod debugger;
pub mod metrics;
pub mod rules;

pub use blockers::{
    AttrEquivalenceBlocker, BlackBoxBlocker, Blocker, HashBlocker, OverlapBlocker,
    SimJoinBlocker, SortedNeighborhoodBlocker,
};
pub use candidate::{CandidateSet, DeltaApplyStats};
pub use dedup::dedup_block;
pub use rules::{BlockingRule, Predicate, RuleBasedBlocker, SimFeature, TokSpec};
