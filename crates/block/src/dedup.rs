//! Single-table deduplication support.
//!
//! §2 of the paper: "Other EM scenarios include matching tuples within a
//! single table". Any two-table [`crate::Blocker`] handles this case by
//! self-joining the table and canonicalizing the resulting pairs: the
//! trivial `(r, r)` self-pairs and the mirror duplicates `(j, i)` of
//! `(i, j)` are dropped.

use magellan_table::Table;

use crate::blockers::Blocker;
use crate::candidate::CandidateSet;

/// Run a blocker over `table × table` and keep only canonical `(i, j)`
/// pairs with `i < j`.
pub fn dedup_block(blocker: &dyn Blocker, table: &Table) -> magellan_table::Result<CandidateSet> {
    let cands = blocker.block(table, table)?;
    Ok(canonicalize_self_pairs(&cands))
}

/// Drop self-pairs and mirrors from a self-join candidate set.
pub fn canonicalize_self_pairs(cands: &CandidateSet) -> CandidateSet {
    cands
        .pairs()
        .iter()
        .filter_map(|&(a, b)| {
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => Some((a, b)),
                Greater => Some((b, a)),
                Equal => None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockers::OverlapBlocker;
    use magellan_table::{Dtype, Value};

    fn table() -> Table {
        Table::from_rows(
            "T",
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            vec![
                vec!["t0".into(), "dave smith".into()],
                vec!["t1".into(), "david smith".into()],
                vec!["t2".into(), "maria garcia".into()],
                vec!["t3".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dedup_drops_self_pairs_and_mirrors() {
        let t = table();
        let cands = dedup_block(&OverlapBlocker::words("name", 1), &t).unwrap();
        // Only the smith pair survives; once, canonically ordered.
        assert_eq!(cands.pairs(), &[(0, 1)]);
    }

    #[test]
    fn canonicalize_handles_raw_sets() {
        let raw = CandidateSet::new(vec![(0, 0), (1, 0), (0, 1), (2, 2)]);
        let canon = canonicalize_self_pairs(&raw);
        assert_eq!(canon.pairs(), &[(0, 1)]);
    }

    #[test]
    fn empty_in_empty_out() {
        assert!(canonicalize_self_pairs(&CandidateSet::default()).is_empty());
    }
}
