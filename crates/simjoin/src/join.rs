//! The filter-verify set-similarity join.

use magellan_par::{ParConfig, ParStats};
use magellan_textsim::tokenize::Tokenizer;

use crate::collection::{overlap_sorted, TokenizedCollection};
use crate::filters;
use crate::index::PrefixIndex;

/// A similarity measure + threshold for a set-similarity join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetSimMeasure {
    /// Jaccard similarity ≥ threshold (threshold in `(0, 1]`).
    Jaccard(f64),
    /// Cosine (Ochiai) similarity ≥ threshold (threshold in `(0, 1]`).
    Cosine(f64),
    /// Dice similarity ≥ threshold (threshold in `(0, 1]`).
    Dice(f64),
    /// Absolute overlap `|x ∩ y|` ≥ size (size ≥ 1).
    OverlapSize(usize),
}

impl SetSimMeasure {
    fn validate(&self) {
        match self {
            SetSimMeasure::Jaccard(t) | SetSimMeasure::Cosine(t) | SetSimMeasure::Dice(t) => {
                assert!(
                    *t > 0.0 && *t <= 1.0,
                    "threshold must be in (0, 1], got {t}"
                );
            }
            SetSimMeasure::OverlapSize(c) => {
                assert!(*c >= 1, "overlap size must be at least 1");
            }
        }
    }

    /// Prefix length of a set of size `s` on either side of the join.
    fn prefix_len(&self, s: usize) -> usize {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_prefix_len(s, t),
            SetSimMeasure::Cosine(t) => filters::cosine_prefix_len(s, t),
            SetSimMeasure::Dice(t) => filters::dice_prefix_len(s, t),
            SetSimMeasure::OverlapSize(c) => filters::overlap_prefix_len(s, c),
        }
    }

    /// Admissible partner sizes for a set of size `s`.
    fn size_bounds(&self, s: usize) -> (usize, usize) {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_size_bounds(s, t),
            SetSimMeasure::Cosine(t) => filters::cosine_size_bounds(s, t),
            SetSimMeasure::Dice(t) => filters::dice_size_bounds(s, t),
            SetSimMeasure::OverlapSize(c) => (c, usize::MAX),
        }
    }

    /// Similarity value reported for a verified pair.
    fn similarity(&self, sx: usize, sy: usize, overlap: usize) -> f64 {
        match self {
            SetSimMeasure::Jaccard(_) => overlap as f64 / (sx + sy - overlap) as f64,
            SetSimMeasure::Cosine(_) => overlap as f64 / ((sx * sy) as f64).sqrt(),
            SetSimMeasure::Dice(_) => 2.0 * overlap as f64 / (sx + sy) as f64,
            SetSimMeasure::OverlapSize(_) => overlap as f64,
        }
    }

    /// Minimum intersection size a pair of these sizes needs to qualify.
    fn min_overlap(&self, sx: usize, sy: usize) -> usize {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_min_overlap(sx, sy, t),
            SetSimMeasure::Cosine(t) => filters::cosine_min_overlap(sx, sy, t),
            SetSimMeasure::Dice(t) => filters::dice_min_overlap(sx, sy, t),
            SetSimMeasure::OverlapSize(c) => c,
        }
    }

    /// Does a pair with the given sizes and exact overlap qualify?
    fn qualifies(&self, sx: usize, sy: usize, overlap: usize) -> bool {
        overlap >= self.min_overlap(sx, sy)
    }
}

/// One qualifying pair: left record index, right record index, similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Index into the left collection.
    pub l: usize,
    /// Index into the right collection.
    pub r: usize,
    /// The measure's similarity value (overlap size for `OverlapSize`).
    pub sim: f64,
}

/// Join two string collections. `None` / empty-token records never match
/// (a positive threshold is unreachable for an empty set).
///
/// Returns pairs sorted by `(l, r)`.
///
/// ```
/// use magellan_simjoin::{set_sim_join, SetSimMeasure};
/// use magellan_textsim::tokenize::WhitespaceTokenizer;
///
/// let left = vec![Some("dave smith"), Some("joe wilson")];
/// let right = vec![Some("david smith"), Some("dave smith")];
/// let pairs = set_sim_join(&left, &right, &WhitespaceTokenizer::new(),
///                          SetSimMeasure::Jaccard(0.9));
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].l, pairs[0].r, pairs[0].sim), (0, 1, 1.0));
/// ```
pub fn set_sim_join<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    tokenizer: &dyn Tokenizer,
    measure: SetSimMeasure,
) -> Vec<JoinPair> {
    measure.validate();
    let coll = TokenizedCollection::build(left, right, tokenizer);
    join_tokenized(&coll, measure)
}

/// Join a pre-tokenized collection (lets callers reuse tokenization).
pub fn join_tokenized(coll: &TokenizedCollection, measure: SetSimMeasure) -> Vec<JoinPair> {
    measure.validate();
    let index = PrefixIndex::build(&coll.right, |s| measure.prefix_len(s));
    let mut out = Vec::new();
    let mut stamps = vec![u32::MAX; coll.right.len()];
    for (l, x) in coll.left.iter().enumerate() {
        probe_one(l, x, coll, &index, measure, &mut stamps, &mut out);
    }
    out.sort_unstable_by_key(|a| (a.l, a.r));
    out
}

/// Probe a single left record against the prefix index.
fn probe_one(
    l: usize,
    x: &[u32],
    coll: &TokenizedCollection,
    index: &PrefixIndex,
    measure: SetSimMeasure,
    stamps: &mut [u32],
    out: &mut Vec<JoinPair>,
) {
    let sx = x.len();
    if sx == 0 {
        return;
    }
    let (lo, hi) = measure.size_bounds(sx);
    let probe_len = measure.prefix_len(sx).min(sx);
    let stamp = l as u32;
    for (px, &tok) in x[..probe_len].iter().enumerate() {
        for &(rid, py) in index.get(tok) {
            let rid = rid as usize;
            if stamps[rid] == stamp {
                continue; // already considered for this probe
            }
            stamps[rid] = stamp;
            let y = &coll.right[rid];
            let sy = y.len();
            if sy < lo || sy > hi {
                continue;
            }
            // Position filter: this is the pair's *first* shared prefix
            // token (tokens are globally ordered and both sets sorted, so
            // the first collision in probe order is the smallest shared
            // token on both sides). The intersection is therefore bounded
            // by 1 + what remains after these positions.
            let ubound = 1 + (sx - px - 1).min(sy - py as usize - 1);
            if ubound < measure.min_overlap(sx, sy) {
                continue;
            }
            let overlap = overlap_sorted(x, y);
            if measure.qualifies(sx, sy, overlap) {
                out.push(JoinPair {
                    l,
                    r: rid,
                    sim: measure.similarity(sx, sy, overlap),
                });
            }
        }
    }
}

/// Multi-threaded variant of [`set_sim_join`]: probes are partitioned
/// across the `magellan-par` work-stealing pool (the production-stage
/// "Dask" role in the paper). Results are identical to the serial join.
pub fn set_sim_join_parallel<S: AsRef<str> + Sync>(
    left: &[Option<S>],
    right: &[Option<S>],
    tokenizer: &dyn Tokenizer,
    measure: SetSimMeasure,
    n_workers: usize,
) -> Vec<JoinPair> {
    measure.validate();
    let coll = TokenizedCollection::build(left, right, tokenizer);
    join_tokenized_parallel(&coll, measure, n_workers)
}

/// Multi-threaded variant of [`join_tokenized`].
pub fn join_tokenized_parallel(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    n_workers: usize,
) -> Vec<JoinPair> {
    join_tokenized_par(coll, measure, &ParConfig::workers(n_workers)).0
}

/// Work-stealing probe-side join: left records are chunked, chunks are
/// claimed dynamically by idle workers, and per-chunk outputs are merged in
/// chunk order — the result is **bit-identical** to [`join_tokenized`] for
/// any worker count (each probe is a pure function of its left record; the
/// final `(l, r)` sort is independent of chunking). Also returns the
/// region's [`ParStats`] counters.
pub fn join_tokenized_par(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    cfg: &ParConfig,
) -> (Vec<JoinPair>, ParStats) {
    measure.validate();
    let index = PrefixIndex::build(&coll.right, |s| measure.prefix_len(s));
    let (chunks, stats) = magellan_par::chunk_map(coll.left.len(), cfg, |range| {
        let mut out = Vec::new();
        let mut stamps = vec![u32::MAX; coll.right.len()];
        for l in range {
            probe_one(l, &coll.left[l], coll, &index, measure, &mut stamps, &mut out);
        }
        out
    });
    let mut out: Vec<JoinPair> = chunks.into_iter().flatten().collect();
    out.sort_unstable_by_key(|a| (a.l, a.r));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::setsim;
    use magellan_textsim::tokenize::{QgramTokenizer, WhitespaceTokenizer};

    fn some(items: &[&str]) -> Vec<Option<String>> {
        items.iter().map(|s| Some((*s).to_owned())).collect()
    }

    /// Naive reference join via the full cross product.
    fn naive(
        left: &[Option<String>],
        right: &[Option<String>],
        tokenizer: &dyn magellan_textsim::tokenize::Tokenizer,
        measure: SetSimMeasure,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, a) in left.iter().enumerate() {
            for (r, b) in right.iter().enumerate() {
                let (Some(a), Some(b)) = (a, b) else { continue };
                let ta = tokenizer.tokenize(a);
                let tb = tokenizer.tokenize(b);
                if ta.is_empty() || tb.is_empty() {
                    continue;
                }
                let ok = match measure {
                    SetSimMeasure::Jaccard(t) => setsim::jaccard(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::Cosine(t) => setsim::cosine(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::Dice(t) => setsim::dice(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::OverlapSize(c) => setsim::overlap_size(&ta, &tb) >= c,
                };
                if ok {
                    out.push((l, r));
                }
            }
        }
        out
    }

    fn pairs(join: &[JoinPair]) -> Vec<(usize, usize)> {
        join.iter().map(|p| (p.l, p.r)).collect()
    }

    #[test]
    fn jaccard_join_matches_naive() {
        let left = some(&[
            "dave smith madison",
            "joe wilson san jose",
            "dan smith middleton",
        ]);
        let right = some(&[
            "david smith madison",
            "daniel smith middleton",
            "dave smith madison",
        ]);
        let tok = WhitespaceTokenizer::new();
        for t in [0.3, 0.5, 0.8, 1.0] {
            let fast = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(t));
            let slow = naive(&left, &right, &tok, SetSimMeasure::Jaccard(t));
            assert_eq!(pairs(&fast), slow, "threshold {t}");
        }
    }

    #[test]
    fn exact_threshold_one_means_equal_sets() {
        let left = some(&["a b c", "x y"]);
        let right = some(&["c b a", "x z"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(1.0));
        assert_eq!(pairs(&out), vec![(0, 0)]);
        assert_eq!(out[0].sim, 1.0);
    }

    #[test]
    fn qgram_join_finds_typos() {
        let left = some(&["mississippi"]);
        let right = some(&["mississipi", "minneapolis"]);
        let tok = QgramTokenizer::as_set(3);
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.6));
        assert_eq!(pairs(&out), vec![(0, 0)]);
    }

    #[test]
    fn overlap_size_join() {
        let left = some(&["a b c d", "a"]);
        let right = some(&["c d e", "z"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::OverlapSize(2));
        assert_eq!(pairs(&out), vec![(0, 0)]);
        assert_eq!(out[0].sim, 2.0);
    }

    #[test]
    fn nulls_and_empties_never_match() {
        let left: Vec<Option<String>> = vec![None, Some("   ".into()), Some("a".into())];
        let right = some(&["a"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.5));
        assert_eq!(pairs(&out), vec![(2, 0)]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        let tok = WhitespaceTokenizer::new();
        let l = some(&["a"]);
        set_sim_join(&l, &l, &tok, SetSimMeasure::Jaccard(0.0));
    }

    #[test]
    fn parallel_equals_serial() {
        let mut left = Vec::new();
        let mut right = Vec::new();
        // Deterministic pseudo-random token soup.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let n = 1 + next() % 6;
            let toks: Vec<String> = (0..n).map(|_| format!("t{}", next() % 40)).collect();
            left.push(Some(toks.join(" ")));
            let n = 1 + next() % 6;
            let toks: Vec<String> = (0..n).map(|_| format!("t{}", next() % 40)).collect();
            right.push(Some(toks.join(" ")));
        }
        let tok = WhitespaceTokenizer::new();
        for measure in [
            SetSimMeasure::Jaccard(0.6),
            SetSimMeasure::Cosine(0.7),
            SetSimMeasure::Dice(0.65),
            SetSimMeasure::OverlapSize(2),
        ] {
            let mut serial = set_sim_join(&left, &right, &tok, measure);
            serial.sort_unstable_by_key(|a| (a.l, a.r));
            let par = set_sim_join_parallel(&left, &right, &tok, measure, 4);
            assert_eq!(pairs(&serial), pairs(&par), "{measure:?}");
        }
    }

    #[test]
    fn cosine_and_dice_match_naive_on_random_soup() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mk = |next: &mut dyn FnMut() -> usize| -> Vec<Option<String>> {
            (0..60)
                .map(|_| {
                    let n = 1 + next() % 5;
                    Some(
                        (0..n)
                            .map(|_| format!("w{}", next() % 25))
                            .collect::<Vec<_>>()
                            .join(" "),
                    )
                })
                .collect()
        };
        let left = mk(&mut next);
        let right = mk(&mut next);
        let tok = WhitespaceTokenizer::new();
        for measure in [SetSimMeasure::Cosine(0.6), SetSimMeasure::Dice(0.6)] {
            let fast = set_sim_join(&left, &right, &tok, measure);
            let mut fast = pairs(&fast);
            fast.sort_unstable();
            let mut slow = naive(&left, &right, &tok, measure);
            slow.sort_unstable();
            assert_eq!(fast, slow, "{measure:?}");
        }
    }

    #[test]
    fn reported_similarity_is_exact() {
        let left = some(&["a b c"]);
        let right = some(&["b c d"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.3));
        assert_eq!(out.len(), 1);
        assert!((out[0].sim - 0.5).abs() < 1e-12);
    }
}
