//! Flat CSR prefix inverted index.
//!
//! The join's dominant data structure maps each token id to the
//! `(record, position, size)` postings whose *prefix* contains that token.
//! Because [`crate::collection::TokenizedCollection`] hands us **dense
//! rarest-first token ids**, the map needs no hashing at all: a CSR
//! (compressed sparse row) layout stores one contiguous [`Posting`] buffer
//! plus a token-id-indexed offsets array, so a probe is a single bounds
//! check and two array reads instead of a `HashMap` probe.
//!
//! Within each token's postings list the entries are sorted by
//! **record size** (ties by record id, which preserves build order), so
//! the length filter of the join becomes a binary-searched *contiguous
//! range* ([`PrefixIndex::size_window`]) rather than a per-candidate
//! branch — out-of-window candidates are skipped wholesale without ever
//! being touched.

/// One prefix posting: a record whose prefix holds the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Record id on the indexed side.
    pub rid: u32,
    /// Position of the token inside the record's sorted id set.
    pub pos: u32,
    /// Token-set size of the record (denormalized so the size filter
    /// never dereferences the record itself).
    pub size: u32,
}

/// Inverted index from token id to the records whose *prefix* contains
/// that token, in CSR layout. Built over the indexed side of a join;
/// probed with the prefixes of the other side.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    /// `offsets[t]..offsets[t + 1]` delimits token `t`'s postings.
    offsets: Vec<u32>,
    /// All postings, grouped by token, each group sorted by `(size, rid)`.
    postings: Vec<Posting>,
    /// Prefix length actually indexed per record (`prefix_len_of(size)`
    /// clamped to the record size) — verification needs it to resume the
    /// merge after the counted prefix overlap.
    prefix_lens: Vec<u32>,
}

impl PrefixIndex {
    /// Build the index. `prefix_len_of(size)` gives the number of leading
    /// (rarest) tokens of a record of that size to index.
    pub fn build(records: &[Vec<u32>], prefix_len_of: impl Fn(usize) -> usize) -> Self {
        // Pass 0: per-record prefix lengths and the token-id universe.
        let mut prefix_lens = Vec::with_capacity(records.len());
        let mut max_token: u32 = 0;
        let mut n_postings = 0usize;
        for rec in records {
            let plen = prefix_len_of(rec.len()).min(rec.len());
            prefix_lens.push(plen as u32);
            n_postings += plen;
            for &tok in &rec[..plen] {
                max_token = max_token.max(tok);
            }
        }
        let n_tokens = if n_postings == 0 {
            0
        } else {
            max_token as usize + 1
        };

        // Pass 1: postings count per token → CSR offsets (prefix sum).
        let mut offsets = vec![0u32; n_tokens + 1];
        for (rec, &plen) in records.iter().zip(&prefix_lens) {
            for &tok in &rec[..plen as usize] {
                offsets[tok as usize + 1] += 1;
            }
        }
        for t in 0..n_tokens {
            offsets[t + 1] += offsets[t];
        }

        // Pass 2: scatter into the flat buffer (records in rid order).
        let mut cursor = offsets.clone();
        let mut postings = vec![
            Posting {
                rid: 0,
                pos: 0,
                size: 0
            };
            n_postings
        ];
        for (rid, (rec, &plen)) in records.iter().zip(&prefix_lens).enumerate() {
            for (pos, &tok) in rec[..plen as usize].iter().enumerate() {
                let slot = cursor[tok as usize] as usize;
                postings[slot] = Posting {
                    rid: rid as u32,
                    pos: pos as u32,
                    size: rec.len() as u32,
                };
                cursor[tok as usize] += 1;
            }
        }

        // Pass 3: order each list by (size, rid) so the length filter is a
        // binary-searched contiguous range. The (size, rid) key is a total
        // order (each record contributes one posting per token), so the
        // layout is deterministic.
        for t in 0..n_tokens {
            let (lo, hi) = (offsets[t] as usize, offsets[t + 1] as usize);
            postings[lo..hi].sort_unstable_by_key(|p| (p.size, p.rid));
        }

        PrefixIndex {
            offsets,
            postings,
            prefix_lens,
        }
    }

    /// Postings list of a token (records whose prefix holds the token).
    ///
    /// Probe tokens are **pre-clamped against the index's token-id range**:
    /// an out-of-vocabulary token (one the indexed side never put in a
    /// prefix — common when the probe side has its own rare tokens, which
    /// get large rarest-first ids) returns the empty slice without any
    /// lookup machinery, and can never panic or rehash.
    #[inline]
    pub fn postings(&self, token: u32) -> &[Posting] {
        let t = token as usize;
        if t + 1 >= self.offsets.len() {
            return &[];
        }
        &self.postings[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// The contiguous sub-list of a token's postings whose record sizes
    /// fall inside `[lo, hi]` — the size filter as two binary searches
    /// over the size-sorted list instead of one branch per candidate.
    #[inline]
    pub fn size_window(&self, token: u32, lo: usize, hi: usize) -> &[Posting] {
        let list = self.postings(token);
        let lo = lo.min(u32::MAX as usize) as u32;
        let hi = hi.min(u32::MAX as usize) as u32;
        let a = list.partition_point(|p| p.size < lo);
        let b = list.partition_point(|p| p.size <= hi);
        &list[a..b]
    }

    /// Indexed prefix length of a record (already clamped to its size).
    #[inline]
    pub fn prefix_len(&self, rid: usize) -> usize {
        self.prefix_lens[rid] as usize
    }

    /// Number of token-id slots the CSR offsets cover (= max indexed
    /// token id + 1; an upper bound on distinct indexed tokens).
    pub fn n_token_slots(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of distinct indexed tokens (slots with at least one posting).
    pub fn n_tokens(&self) -> usize {
        (0..self.n_token_slots())
            .filter(|&t| self.offsets[t] != self.offsets[t + 1])
            .count()
    }

    /// Total postings across all tokens.
    pub fn n_postings(&self) -> usize {
        self.postings.len()
    }

    /// Heap bytes held by the index's three arrays — the number the
    /// sharded join budgets against. Matches [`estimate_index_bytes`]
    /// exactly for the same record set.
    pub fn index_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<Posting>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.prefix_lens.len() * std::mem::size_of::<u32>()
    }
}

/// Bytes [`PrefixIndex::build`] would allocate for `records` — computed
/// without building, so shard planning can size K before paying for any
/// index. Exact (same arrays, same element counts), not an estimate of
/// actual RSS.
pub fn estimate_index_bytes(
    records: &[Vec<u32>],
    prefix_len_of: impl Fn(usize) -> usize,
) -> usize {
    let mut n_postings = 0usize;
    let mut max_token: u32 = 0;
    for rec in records {
        let plen = prefix_len_of(rec.len()).min(rec.len());
        n_postings += plen;
        for &tok in &rec[..plen] {
            max_token = max_token.max(tok);
        }
    }
    let n_tokens = if n_postings == 0 {
        0
    } else {
        max_token as usize + 1
    };
    n_postings * std::mem::size_of::<Posting>()
        + (n_tokens + 1) * std::mem::size_of::<u32>()
        + records.len() * std::mem::size_of::<u32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(list: &[Posting]) -> Vec<(u32, u32)> {
        list.iter().map(|p| (p.rid, p.pos)).collect()
    }

    #[test]
    fn indexes_only_prefixes() {
        let records = vec![vec![1, 2, 3, 4], vec![2, 5], vec![]];
        // Constant prefix length of 2.
        let idx = PrefixIndex::build(&records, |_| 2);
        assert_eq!(pairs(idx.postings(1)), &[(0, 0)]);
        // Token 2: record 1 (size 2) sorts before record 0 (size 4).
        assert_eq!(pairs(idx.postings(2)), &[(1, 0), (0, 1)]);
        assert!(
            idx.postings(3).is_empty(),
            "token 3 is beyond record 0's prefix"
        );
        assert_eq!(pairs(idx.postings(5)), &[(1, 1)]);
        assert_eq!(idx.n_tokens(), 3);
        assert_eq!(idx.n_postings(), 4);
        assert_eq!(idx.prefix_len(0), 2);
        assert_eq!(idx.prefix_len(2), 0);
    }

    #[test]
    fn prefix_longer_than_record_is_clamped() {
        let records = vec![vec![7]];
        let idx = PrefixIndex::build(&records, |_| 10);
        assert_eq!(pairs(idx.postings(7)), &[(0, 0)]);
        assert_eq!(idx.prefix_len(0), 1);
    }

    #[test]
    fn size_dependent_prefix() {
        let records = vec![vec![1, 2, 3, 4], vec![1, 2]];
        // Half the record, at least 1.
        let idx = PrefixIndex::build(&records, |s| (s / 2).max(1));
        assert_eq!(idx.postings(1).len(), 2);
        assert_eq!(idx.postings(2).len(), 1); // only the 4-token record indexes position 1
    }

    /// Regression: probe tokens the indexed side never saw (ids beyond the
    /// CSR range) must resolve to the empty slice — no panic, no rehash.
    #[test]
    fn out_of_vocabulary_probe_tokens_are_clamped() {
        let records = vec![vec![0, 1], vec![1, 2]];
        let idx = PrefixIndex::build(&records, |_| 2);
        assert!(idx.postings(3).is_empty());
        assert!(idx.postings(1_000_000).is_empty());
        assert!(idx.postings(u32::MAX).is_empty());
        assert!(idx.size_window(u32::MAX, 0, usize::MAX).is_empty());
        // And the empty index clamps everything.
        let empty = PrefixIndex::build(&[], |_| 2);
        assert!(empty.postings(0).is_empty());
        assert_eq!(empty.n_token_slots(), 0);
        // An index whose only records are empty also has zero slots.
        let blank = PrefixIndex::build(&[vec![], vec![]], |_| 3);
        assert!(blank.postings(0).is_empty());
        assert_eq!(blank.n_postings(), 0);
    }

    #[test]
    fn postings_are_size_sorted_and_window_is_contiguous() {
        // Token 9 appears in prefixes of records with sizes 5, 2, 8, 2.
        let records = vec![
            vec![9, 10, 11, 12, 13],
            vec![9, 14],
            vec![9, 15, 16, 17, 18, 19, 20, 21],
            vec![9, 22],
        ];
        let idx = PrefixIndex::build(&records, |_| 1);
        let sizes: Vec<u32> = idx.postings(9).iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![2, 2, 5, 8]);
        // Ties broken by rid, ascending.
        assert_eq!(idx.postings(9)[0].rid, 1);
        assert_eq!(idx.postings(9)[1].rid, 3);
        // Windows are binary-searched contiguous ranges.
        assert_eq!(idx.size_window(9, 2, 5).len(), 3);
        assert_eq!(idx.size_window(9, 3, 4).len(), 0);
        assert_eq!(idx.size_window(9, 6, usize::MAX).len(), 1);
        assert_eq!(idx.size_window(9, 0, usize::MAX).len(), 4);
    }
}
