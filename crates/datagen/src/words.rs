//! Word pools for the synthetic entity generators.

/// Common US given names.
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "charles", "karen", "christopher", "nancy", "daniel", "lisa", "matthew", "betty", "anthony",
    "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul", "emily",
    "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy", "kevin", "carol", "brian",
    "amanda", "george", "melissa", "edward", "deborah",
];

/// Common US family names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts",
];

/// US city names.
pub const CITIES: &[&str] = &[
    "madison", "milwaukee", "chicago", "minneapolis", "st paul", "green bay", "rockford",
    "des moines", "omaha", "kansas city", "st louis", "springfield", "peoria", "dubuque",
    "la crosse", "eau claire", "appleton", "oshkosh", "racine", "kenosha", "janesville",
    "waukesha", "middleton", "sun prairie", "fitchburg", "verona", "stoughton", "beloit",
    "san jose", "austin", "denver", "seattle", "portland", "boston", "atlanta", "phoenix",
];

/// US state codes.
pub const STATES: &[&str] = &[
    "WI", "IL", "MN", "IA", "MO", "NE", "CA", "TX", "CO", "WA", "OR", "MA", "GA", "AZ",
];

/// Street-name stems.
pub const STREETS: &[&str] = &[
    "main", "oak", "maple", "cedar", "elm", "washington", "lake", "hill", "park", "pine",
    "walnut", "spring", "north", "ridge", "church", "willow", "mill", "river", "sunset",
    "highland", "forest", "meadow", "dayton", "johnson", "regent", "monroe", "state",
];

/// Street-type suffixes (formal / abbreviated pairs share indices with
/// [`STREET_TYPES_ABBR`]).
pub const STREET_TYPES: &[&str] = &["street", "avenue", "road", "boulevard", "drive", "lane", "court"];

/// Abbreviated street types, index-aligned with [`STREET_TYPES`].
pub const STREET_TYPES_ABBR: &[&str] = &["st", "ave", "rd", "blvd", "dr", "ln", "ct"];

/// Electronics brands for the product domain.
pub const BRANDS: &[&str] = &[
    "sony", "samsung", "panasonic", "toshiba", "canon", "nikon", "logitech", "philips", "hp",
    "dell", "lenovo", "asus", "acer", "lg", "jvc", "sharp", "sandisk", "kingston", "epson",
    "brother",
];

/// Product category nouns.
pub const PRODUCT_TYPES: &[&str] = &[
    "laptop", "monitor", "keyboard", "mouse", "camera", "printer", "router", "headphones",
    "speaker", "tablet", "charger", "projector", "webcam", "microphone", "scanner",
];

/// Marketing adjectives that drift between catalogs.
pub const PRODUCT_ADJ: &[&str] = &[
    "wireless", "portable", "compact", "professional", "digital", "hd", "ultra", "premium",
    "gaming", "slim",
];

/// Vehicle makes, index-aligned with [`VEHICLE_MODELS`].
pub const VEHICLE_MAKES: &[&str] = &[
    "toyota", "honda", "ford", "chevrolet", "nissan", "jeep", "subaru", "hyundai", "kia",
    "volkswagen",
];

/// Vehicle model pools per make (index-aligned with [`VEHICLE_MAKES`]).
pub const VEHICLE_MODELS: &[&[&str]] = &[
    &["camry", "corolla", "rav4", "highlander", "prius"],
    &["civic", "accord", "cr-v", "pilot", "fit"],
    &["f-150", "escape", "explorer", "focus", "fusion"],
    &["silverado", "malibu", "equinox", "impala", "cruze"],
    &["altima", "sentra", "rogue", "maxima", "versa"],
    &["wrangler", "cherokee", "compass", "renegade", "gladiator"],
    &["outback", "forester", "impreza", "legacy", "crosstrek"],
    &["elantra", "sonata", "tucson", "santa fe", "accent"],
    &["optima", "sorento", "soul", "sportage", "forte"],
    &["jetta", "passat", "tiguan", "golf", "atlas"],
];

/// Company-name stems for the vendor domain.
pub const COMPANY_STEMS: &[&str] = &[
    "acme", "global", "united", "premier", "summit", "pioneer", "atlas", "horizon", "cascade",
    "evergreen", "keystone", "liberty", "sterling", "vanguard", "beacon", "harbor", "granite",
    "crystal", "phoenix", "meridian", "apex", "delta", "omega", "zenith", "northstar",
];

/// Company-type suffixes with their abbreviations, index-aligned.
pub const COMPANY_TYPES: &[&str] = &["corporation", "incorporated", "limited", "company", "industries"];

/// Abbreviated company types, index-aligned with [`COMPANY_TYPES`].
pub const COMPANY_TYPES_ABBR: &[&str] = &["corp", "inc", "ltd", "co", "ind"];

/// Brazilian municipality names for the land-use (ranch) domain.
pub const MUNICIPALITIES: &[&str] = &[
    "altamira", "maraba", "santarem", "itaituba", "paragominas", "tucurui", "parauapebas",
    "redencao", "tailandia", "xinguara", "novo progresso", "sao felix do xingu",
    "ourilandia do norte", "tucuma", "rio maria", "agua azul do norte", "bannach",
    "cumaru do norte", "pau d arco", "floresta do araguaia",
];

/// Brazilian states for the ranch domain.
pub const BR_STATES: &[&str] = &["PA", "MT", "RO", "AM", "TO", "MA", "AC"];

/// Restaurant-name stems.
pub const RESTAURANT_STEMS: &[&str] = &[
    "golden dragon", "blue plate", "corner bistro", "harvest table", "la cocina", "old mill",
    "red rooster", "sunset grill", "the copper pot", "green olive", "lucky star", "river cafe",
    "two brothers", "union house", "village inn", "wild ginger", "brass ring", "cedar grove",
    "daily grind", "east side diner",
];

/// Research-paper title words for the citation domain.
pub const PAPER_WORDS: &[&str] = &[
    "entity", "matching", "data", "integration", "learning", "systems", "scalable", "efficient",
    "query", "processing", "deep", "neural", "blocking", "record", "linkage", "crowdsourced",
    "schema", "cleaning", "extraction", "knowledge", "graph", "distributed", "streaming",
    "approximate", "joins",
];

/// Venue names for the citation domain.
pub const VENUES: &[&str] = &["sigmod", "vldb", "icde", "kdd", "www", "cikm", "edbt", "icml"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_pools_have_matching_lengths() {
        assert_eq!(STREET_TYPES.len(), STREET_TYPES_ABBR.len());
        assert_eq!(COMPANY_TYPES.len(), COMPANY_TYPES_ABBR.len());
        assert_eq!(VEHICLE_MAKES.len(), VEHICLE_MODELS.len());
    }

    #[test]
    fn pools_are_nonempty_and_lowercase_where_expected() {
        for pool in [FIRST_NAMES, LAST_NAMES, CITIES, BRANDS, COMPANY_STEMS] {
            assert!(pool.len() >= 10);
            for w in pool {
                assert_eq!(*w, w.to_lowercase());
            }
        }
    }
}
