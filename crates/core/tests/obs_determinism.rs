//! The observability determinism contract, enforced end to end:
//! under a **pinned clock** and a **fixed chunk size**, the
//! [`ObsSnapshot`] embedded in every [`ProductionReport`] exports
//! **byte-identical** Prometheus text and Chrome-trace JSON at any
//! worker count — including under an injected fault plan that stays
//! inside the retry budget — and the exported trace nests at least
//! four span levels (`run → phase → chunk → retry`).

use magellan_block::OverlapBlocker;
use magellan_core::checkpoint::MemStore;
use magellan_core::exec::{ProductionExecutor, ProductionReport, RecoveryOptions};
use magellan_core::rules::RuleLayer;
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, EmScenario, ScenarioConfig};
use magellan_faults::FaultPlan;
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::model::ConstantClassifier;
use magellan_obs::{Obs, ObsSnapshot};

fn scenario() -> EmScenario {
    persons(&ScenarioConfig {
        size_a: 160,
        size_b: 160,
        n_matches: 50,
        dirt: DirtModel::light(),
        seed: 33,
    })
}

fn workflow() -> EmWorkflow {
    EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::empty(),
        threshold: 0.5,
    }
}

/// Chunk size pinned for every run: chunk spans and chunk counters must
/// not depend on the worker count.
const CHUNK: usize = 16;

/// Fault-free production run under a pinned recorder.
fn run_pinned(workers: usize, s: &EmScenario) -> (ProductionReport, ObsSnapshot) {
    let obs = Obs::pinned();
    let _g = obs.install();
    let report = ProductionExecutor::new(workers)
        .with_chunk_size(CHUNK)
        .run(&workflow(), &s.table_a, &s.table_b)
        .expect("production run");
    let snap = obs.snapshot();
    (report, snap)
}

/// Fault-injected recovery run under a pinned recorder. The seeded plan
/// stays inside the retry budget (`max_failures_per_site = 2` vs.
/// `chunk_retries = 3`), so every chunk heals in-worker and the fault
/// stream — keyed by `(region, chunk, attempt)` — is itself
/// worker-count-invariant.
fn run_pinned_faulted(workers: usize, s: &EmScenario) -> (ProductionReport, ObsSnapshot) {
    magellan_core::par::silence_contained_panics();
    let obs = Obs::pinned();
    let _g = obs.install();
    let mut store = MemStore::default();
    let opts = RecoveryOptions {
        faults: FaultPlan::seeded(99),
        ..RecoveryOptions::default()
    };
    let report = ProductionExecutor::new(workers)
        .with_chunk_size(CHUNK)
        .run_with_recovery(&workflow(), &s.table_a, &s.table_b, &mut store, &opts)
        .expect("recovery run");
    let snap = obs.snapshot();
    (report, snap)
}

#[test]
fn pinned_exports_are_byte_identical_across_worker_counts() {
    let s = scenario();
    let (r1, snap1) = run_pinned(1, &s);
    let prom1 = snap1.to_prometheus();
    let trace1 = snap1.to_chrome_trace();
    assert!(!prom1.is_empty());
    assert!(!trace1.is_empty());

    for workers in [2, 8] {
        let (rw, snapw) = run_pinned(workers, &s);
        assert_eq!(rw.matches, r1.matches, "{workers} workers changed matches");
        assert_eq!(
            snapw.to_prometheus(),
            prom1,
            "Prometheus export diverged at {workers} workers"
        );
        assert_eq!(
            snapw.to_chrome_trace(),
            trace1,
            "Chrome trace diverged at {workers} workers"
        );
    }

    // Same worker count twice: identical too (no hidden wall-clock).
    let (_, again) = run_pinned(8, &s);
    assert_eq!(again.to_prometheus(), prom1);
    assert_eq!(again.to_chrome_trace(), trace1);
}

#[test]
fn report_snapshot_matches_ambient_recorder() {
    let s = scenario();
    let obs = Obs::pinned();
    let _g = obs.install();
    let report = ProductionExecutor::new(4)
        .with_chunk_size(CHUNK)
        .run(&workflow(), &s.table_a, &s.table_b)
        .expect("run");
    // The executor snapshots the ambient recorder into the report.
    assert_eq!(report.obs.to_prometheus(), obs.snapshot().to_prometheus());
    assert!(report.obs.counter("magellan_core_candidates_total") > 0);
    assert_eq!(
        report.obs.counter("magellan_core_matches_total"),
        report.matches.len() as u64
    );
    assert_eq!(
        report.obs.counter("magellan_par_items_total{phase=\"blocking\"}"),
        report.counters.blocking.items as u64
    );
}

#[test]
fn trace_nests_at_least_four_span_levels() {
    let s = scenario();
    let (_, snap) = run_pinned(4, &s);
    // run → matching → extract/predict → chunk is four levels even
    // fault-free.
    assert!(
        snap.max_depth() >= 4,
        "expected ≥4 nested span levels, got {}",
        snap.max_depth()
    );
    for name in ["run", "blocking", "matching", "extract", "predict", "chunk"] {
        assert!(
            !snap.spans_named(name).is_empty(),
            "missing {name:?} spans in the trace"
        );
    }
    // Chunk spans are parented under phases, and the Chrome export
    // carries every span name.
    let trace = snap.to_chrome_trace();
    for name in ["run", "blocking", "extract", "predict", "chunk"] {
        assert!(trace.contains(&format!("\"name\":\"{name}\"")));
    }
    // The export is valid JSON with the trace_event envelope.
    let parsed = magellan_obs::parse_json(&trace).expect("trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() >= snap.spans.len());
}

#[test]
fn faulted_pinned_exports_are_byte_identical_and_show_retries() {
    let s = scenario();
    let (r1, snap1) = run_pinned_faulted(1, &s);
    let prom1 = snap1.to_prometheus();
    let trace1 = snap1.to_chrome_trace();

    // The plan actually fired and healed inside workers.
    assert!(r1.recovery.panics_contained > 0, "{:?}", r1.recovery);
    assert_eq!(r1.recovery.worker_deaths, 0, "plan must stay under budget");
    assert!(!snap1.spans_named("retry").is_empty(), "retry spans missing");
    assert!(!snap1.events_named("fault_injected").is_empty());
    assert!(!snap1.events_named("retry_scheduled").is_empty());
    assert!(!snap1.events_named("checkpoint_written").is_empty());
    // With retries the blocking path alone nests run → blocking → chunk
    // → retry; the matching path adds the extract/predict level.
    assert!(snap1.max_depth() >= 4, "depth {}", snap1.max_depth());

    for workers in [2, 8] {
        let (rw, snapw) = run_pinned_faulted(workers, &s);
        assert_eq!(rw.matches, r1.matches, "{workers} workers changed matches");
        assert_eq!(
            snapw.to_prometheus(),
            prom1,
            "faulted Prometheus export diverged at {workers} workers"
        );
        assert_eq!(
            snapw.to_chrome_trace(),
            trace1,
            "faulted Chrome trace diverged at {workers} workers"
        );
    }
}
