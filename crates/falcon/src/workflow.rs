//! The end-to-end Falcon workflow (Fig. 3 of the paper).

use magellan_block::{Blocker, CandidateSet, OverlapBlocker, RuleBasedBlocker};
use magellan_core::labeling::Labeler;
use magellan_features::{
    extract_with_prepared, generate_features, Feature, FeatureKind, PreparedPair,
};
use magellan_par::ParConfig;
use magellan_simjoin::{set_sim_join, SetSimMeasure};
use magellan_table::Table;
use magellan_textsim::tokenize::AlphanumericTokenizer;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::active::{active_learn, ActiveLearnConfig};
use crate::rules::extract_blocking_rules;

/// Falcon knobs.
#[derive(Debug, Clone)]
pub struct FalconConfig {
    /// Size of the initial pair sample `S` (Fig. 3 step 1).
    pub sample_size: usize,
    /// Active-learning config for the blocking stage (step 2).
    pub blocking_al: ActiveLearnConfig,
    /// Active-learning config for the matching stage (step 5).
    pub matching_al: ActiveLearnConfig,
    /// Vote-fraction threshold α: a pair matches when ≥ α·n trees agree.
    pub alpha: f64,
    /// Minimum precision for a blocking rule to be retained (step 3).
    pub min_rule_precision: f64,
    /// Maximum blocking rules retained.
    pub max_rules: usize,
    /// Fresh user questions spent verifying each extracted rule's
    /// precision (Fig. 3 step 3: "Falcon enlists the lay user to evaluate
    /// the extracted blocking rules"). Smurf skips this entirely.
    pub rule_verify_questions: usize,
    /// Cap on the matching-stage active-learning pool (prediction still
    /// covers the whole candidate set).
    pub max_matching_pool: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FalconConfig {
    fn default() -> Self {
        FalconConfig {
            sample_size: 600,
            blocking_al: ActiveLearnConfig::default(),
            matching_al: ActiveLearnConfig {
                max_rounds: 15,
                ..Default::default()
            },
            alpha: 0.5,
            min_rule_precision: 0.95,
            max_rules: 4,
            rule_verify_questions: 15,
            max_matching_pool: 3000,
            seed: 7,
        }
    }
}

/// What Falcon did and found.
pub struct FalconReport {
    /// Questions asked in the blocking stage.
    pub questions_blocking: usize,
    /// Questions asked in the matching stage.
    pub questions_matching: usize,
    /// Pretty-printed retained blocking rules (Fig. 4 style).
    pub rules: Vec<String>,
    /// How many retained rules were join-executable.
    pub n_rules_executable: usize,
    /// Whether the fallback overlap blocker had to be used.
    pub used_fallback_blocker: bool,
    /// Candidate pairs after blocking (|C|).
    pub n_candidates: usize,
    /// Predicted matches.
    pub matches: CandidateSet,
}

impl FalconReport {
    /// Total labeling questions (Table 2's "Questions" column).
    pub fn total_questions(&self) -> usize {
        self.questions_blocking + self.questions_matching
    }
}

/// Concatenated display strings of all non-key attributes, per row.
pub fn concat_strings(t: &Table, key: &str) -> Vec<Option<String>> {
    let idxs: Vec<usize> = t
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name != key)
        .map(|(i, _)| i)
        .collect();
    t.rows()
        .map(|r| {
            let parts: Vec<String> = idxs
                .iter()
                .filter_map(|&i| {
                    let v = t.value(r, i);
                    (!v.is_null()).then(|| v.display_string())
                })
                .collect();
            (!parts.is_empty()).then(|| parts.join(" "))
        })
        .collect()
}

/// Fig. 3 step 1: sample pairs — half *plausible* (low-threshold join over
/// the concatenated attributes, so the sample contains real matches at low
/// match density) and half uniform random.
pub fn sample_pairs(
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
    n: usize,
    seed: u64,
) -> Vec<(u32, u32)> {
    let la = concat_strings(a, a_key);
    let rb = concat_strings(b, b_key);
    let tok = AlphanumericTokenizer::as_set();
    let mut joined = set_sim_join(&la, &rb, &tok, SetSimMeasure::Jaccard(0.2));
    // Highest-similarity plausible pairs first.
    joined.sort_by(|x, y| y.sim.partial_cmp(&x.sim).unwrap_or(std::cmp::Ordering::Equal));
    let mut pairs: Vec<(u32, u32)> = joined
        .iter()
        .take(n / 2)
        .map(|p| (p.l as u32, p.r as u32))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: std::collections::HashSet<(u32, u32)> = pairs.iter().copied().collect();
    let mut guard = 0;
    while pairs.len() < n && guard < 20 * n {
        guard += 1;
        let p = (
            rng.gen_range(0..a.nrows()) as u32,
            rng.gen_range(0..b.nrows()) as u32,
        );
        if seen.insert(p) {
            pairs.push(p);
        }
    }
    pairs
}

/// Bound an active-learning pool to `cap` rows: half the slots go to the
/// highest-proxy (most plausibly matching) pairs, half to a uniform random
/// sample. A uniform-only subsample of a large candidate set at EM's match
/// densities would hand the learner a pool with almost no positives.
pub fn biased_pool(
    matrix: &magellan_features::FeatureMatrix,
    cap: usize,
    seed: u64,
) -> magellan_features::FeatureMatrix {
    if matrix.len() <= cap {
        return matrix.clone();
    }
    let proxy = |row: &[f64]| -> f64 {
        let (mut s, mut k) = (0.0, 0usize);
        for &v in row {
            if !v.is_nan() {
                s += v;
                k += 1;
            }
        }
        if k == 0 {
            0.0
        } else {
            s / k as f64
        }
    };
    let mut by_proxy: Vec<usize> = (0..matrix.len()).collect();
    by_proxy.sort_by(|&i, &j| {
        proxy(&matrix.rows[j])
            .partial_cmp(&proxy(&matrix.rows[i]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = cap / 2;
    let mut positions: Vec<usize> = by_proxy[..top].to_vec();
    let mut rest: Vec<usize> = by_proxy[top..].to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::seq::SliceRandom;
    rest.shuffle(&mut rng);
    positions.extend(rest.into_iter().take(cap - top));
    positions.sort_unstable();
    matrix.subset(&positions)
}

/// Feature kinds whose drop-direction rules execute as joins.
pub fn blocking_features(a: &Table, b: &Table, exclude: &[&str]) -> magellan_table::Result<Vec<Feature>> {
    Ok(generate_features(a, b, exclude)?
        .into_iter()
        .filter(|f| {
            matches!(
                f.kind,
                FeatureKind::Jaccard(_)
                    | FeatureKind::Cosine(_)
                    | FeatureKind::Dice(_)
                    | FeatureKind::ExactMatch
            )
        })
        .collect())
}

/// Run Falcon end to end (Fig. 3): sample → active-learn forest → extract
/// + verify blocking rules → execute → active-learn matcher → predict at α.
pub fn run_falcon(
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
    labeler: &mut dyn Labeler,
    cfg: &FalconConfig,
) -> magellan_table::Result<FalconReport> {
    // One record-preparation cache spans both Falcon stages: the
    // blocking-stage sample matrix and the matching-stage candidate
    // matrix share most (attribute, tokenizer) combinations, so records
    // appearing in both the sample and the candidate set are normalized,
    // tokenized, and interned exactly once.
    let mut prepared = PreparedPair::new(a, b);

    // ---- Blocking stage (Fig. 3a) ----
    let s_pairs = sample_pairs(a, b, a_key, b_key, cfg.sample_size, cfg.seed);
    let bfeatures = blocking_features(a, b, &[a_key, b_key])?;
    let (s_matrix, _) =
        extract_with_prepared(&mut prepared, &s_pairs, &bfeatures, &ParConfig::serial())?;

    let q0 = labeler.questions_asked();
    let outcome = active_learn(
        &s_matrix,
        |i| {
            let (ra, rb) = s_matrix.pairs[i];
            labeler.label(a, ra as usize, b, rb as usize).as_bool()
        },
        &cfg.blocking_al,
    );

    // Step 3: extract + verify rules.
    let (kept, blocking_rules) = extract_blocking_rules(
        &outcome.forest,
        &s_matrix,
        &outcome.labeled,
        &bfeatures,
        cfg.min_rule_precision,
        // Verify a wider candidate slate than will be kept: the user
        // evaluates each candidate rule (the expensive part), then the
        // best survivors are retained.
        cfg.max_rules * 4,
    );
    let _ = blocking_rules; // rebuilt below from the user-verified rules

    // Step 3 (second half): the lay user evaluates each candidate rule on
    // fresh pairs the rule would drop. A rule that drops even one labeled
    // match is rejected — this is where Falcon spends extra questions that
    // Smurf saves.
    let mut verified: Vec<crate::rules::ExtractedRule> = Vec::with_capacity(kept.len());
    let labeled_set: std::collections::HashSet<usize> =
        outcome.labeled.iter().map(|&(i, _)| i).collect();
    let mut verify_cache: std::collections::HashMap<usize, bool> =
        outcome.labeled.iter().copied().collect();
    for rule in kept {
        let mut dropped_matches = 0usize;
        let mut asked = 0usize;
        for i in 0..s_matrix.len() {
            if asked >= cfg.rule_verify_questions {
                break;
            }
            if labeled_set.contains(&i) && verify_cache.get(&i).copied() == Some(false) {
                continue; // known negative adds no information here
            }
            if !rule.fires(&s_matrix.rows[i]) {
                continue;
            }
            let y = *verify_cache.entry(i).or_insert_with(|| {
                let (ra, rb) = s_matrix.pairs[i];
                labeler.label(a, ra as usize, b, rb as usize).as_bool()
            });
            asked += 1;
            if y {
                dropped_matches += 1;
                // A second dropped match condemns the rule; a single one
                // may be annotator noise (crowd answers flip a few percent
                // of the time), which must not veto a good rule.
                if dropped_matches >= 2 {
                    break;
                }
            }
        }
        if dropped_matches < 2 {
            verified.push(rule);
        }
    }
    verified.truncate(cfg.max_rules);
    let blocking_rules: Vec<magellan_block::BlockingRule> = verified
        .iter()
        .filter_map(|r| crate::rules::to_blocking_rule(r, &bfeatures))
        .collect();
    let kept = verified;
    let questions_blocking = labeler.questions_asked() - q0;

    let n_rules_executable = blocking_rules.len();
    let rules_pretty: Vec<String> = kept.iter().map(|r| r.pretty(&s_matrix.names)).collect();

    // Step 4: execute the rules (or fall back when none are executable).
    let (candidates, used_fallback) = if blocking_rules.is_empty() {
        let first_str_attr = a
            .schema()
            .fields()
            .iter()
            .find(|f| f.name != a_key && f.dtype == magellan_table::Dtype::Str)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| a_key.to_owned());
        (
            OverlapBlocker::words(&first_str_attr, 1).block(a, b)?,
            true,
        )
    } else {
        (RuleBasedBlocker::new(blocking_rules).block(a, b)?, false)
    };

    // ---- Matching stage (Fig. 3b) ----
    // Reuses the blocking stage's prepared records and interner: only
    // combinations new to the matching feature set (and records new to
    // the candidate set) are tokenized here.
    let mfeatures = generate_features(a, b, &[a_key, b_key])?;
    let (c_matrix, _) = extract_with_prepared(
        &mut prepared,
        candidates.pairs(),
        &mfeatures,
        &ParConfig::serial(),
    )?;
    if c_matrix.is_empty() {
        return Ok(FalconReport {
            questions_blocking,
            questions_matching: 0,
            rules: rules_pretty,
            n_rules_executable,
            used_fallback_blocker: used_fallback,
            n_candidates: 0,
            matches: CandidateSet::default(),
        });
    }

    // Bound the AL pool; prediction still covers everything.
    // Very large candidate sets dilute the match density so far that the
    // default label budget cannot control the false-positive rate at
    // prediction time; scale the budget and pool with |C| (Table 2's
    // bigger tasks spend up to 1200 questions for the same reason).
    let mut matching_al = cfg.matching_al;
    let mut pool_cap = cfg.max_matching_pool;
    if candidates.len() > 100_000 {
        matching_al.max_rounds = matching_al.max_rounds * 2 + 10;
        pool_cap *= 2;
    }
    let pool_matrix;
    let pool_ref = if c_matrix.len() > pool_cap {
        pool_matrix = biased_pool(&c_matrix, pool_cap, cfg.seed ^ 0xC0FFEE);
        &pool_matrix
    } else {
        &c_matrix
    };
    let q1 = labeler.questions_asked();
    let match_outcome = active_learn(
        pool_ref,
        |i| {
            let (ra, rb) = pool_ref.pairs[i];
            labeler.label(a, ra as usize, b, rb as usize).as_bool()
        },
        &matching_al,
    );
    let questions_matching = labeler.questions_asked() - q1;

    // Step 6: apply the forest to all of C at threshold α.
    let matches: CandidateSet = c_matrix
        .pairs
        .iter()
        .zip(&c_matrix.rows)
        .filter_map(|(&p, row)| {
            match_outcome
                .forest
                .predict_at(row, cfg.alpha)
                .then_some(p)
        })
        .collect();

    Ok(FalconReport {
        questions_blocking,
        questions_matching,
        rules: rules_pretty,
        n_rules_executable,
        used_fallback_blocker: used_fallback,
        n_candidates: candidates.len(),
        matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_core::evaluate::evaluate_matches;
    use magellan_core::labeling::OracleLabeler;
    use magellan_datagen::domains::{persons, products};
    use magellan_datagen::{DirtModel, ScenarioConfig};

    #[test]
    fn falcon_matches_persons_with_high_accuracy_and_few_questions() {
        let s = persons(&ScenarioConfig {
            size_a: 400,
            size_b: 400,
            n_matches: 130,
            dirt: DirtModel::light(),
            seed: 51,
        });
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let report = run_falcon(
            &s.table_a,
            &s.table_b,
            "id",
            "id",
            &mut labeler,
            &FalconConfig::default(),
        )
        .unwrap();

        assert!(report.n_candidates > 0);
        assert!(
            report.total_questions() <= 1200,
            "question budget blown: {}",
            report.total_questions()
        );
        let m = evaluate_matches(&report.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
            .unwrap();
        assert!(m.precision() > 0.8, "{m}");
        assert!(m.recall() > 0.7, "{m}");
    }

    #[test]
    fn blocking_rules_shrink_the_cross_product() {
        let s = products(&ScenarioConfig {
            size_a: 300,
            size_b: 300,
            n_matches: 100,
            dirt: DirtModel::light(),
            seed: 52,
        });
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let report = run_falcon(
            &s.table_a,
            &s.table_b,
            "id",
            "id",
            &mut labeler,
            &FalconConfig::default(),
        )
        .unwrap();
        let cross = s.table_a.nrows() * s.table_b.nrows();
        assert!(
            report.n_candidates * 4 < cross,
            "blocking barely reduced: {} of {cross}",
            report.n_candidates
        );
        assert!(!report.rules.is_empty() || report.used_fallback_blocker);
        for r in &report.rules {
            assert!(r.ends_with("-> No"), "{r}");
        }
    }

    #[test]
    fn alpha_one_is_stricter_than_alpha_half() {
        let s = persons(&ScenarioConfig {
            size_a: 200,
            size_b: 200,
            n_matches: 70,
            dirt: DirtModel::light(),
            seed: 53,
        });
        let run = |alpha: f64| {
            let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
            run_falcon(
                &s.table_a,
                &s.table_b,
                "id",
                "id",
                &mut labeler,
                &FalconConfig {
                    alpha,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let loose = run(0.5);
        let strict = run(1.0);
        assert!(
            strict.matches.len() <= loose.matches.len(),
            "unanimity produced more matches ({} > {})",
            strict.matches.len(),
            loose.matches.len()
        );
    }
}
