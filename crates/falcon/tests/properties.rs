//! Property tests for the Falcon machinery: rule extraction soundness and
//! active-learning budget/bookkeeping invariants.

use magellan_core::labeling::{Labeler, OracleLabeler};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::active::{active_learn, ActiveLearnConfig};
use magellan_falcon::rules::{candidate_paths, extract_blocking_rules};
use magellan_falcon::workflow::{blocking_features, sample_pairs};
use magellan_features::extract_feature_matrix;
use magellan_ml::{Classifier, Dataset, RandomForestLearner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn extracted_paths_imply_no_on_their_own_tree_data(seed in 0u64..500) {
        // Train a forest on random separable data; every candidate path,
        // evaluated as a rule, must predict "No" for rows it fires on
        // according to the tree it came from — verified by checking the
        // rules never fire on rows the forest confidently calls matches.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::with_dims(2);
        for _ in 0..120 {
            let pos = rng.gen_bool(0.3);
            let base: f64 = if pos { rng.gen_range(0.75..1.0) } else { rng.gen_range(0.0..0.5) };
            data.push(&[base, rng.gen_range(0.0..1.0)], pos);
        }
        let forest = RandomForestLearner { n_trees: 4, seed, ..Default::default() }
            .fit_forest(&data);
        let paths = candidate_paths(&forest);
        // Deduped and non-empty on learnable data.
        prop_assert!(!paths.is_empty());
        for p in &paths {
            prop_assert!(!p.is_empty());
        }
    }

    #[test]
    fn active_learning_respects_budget_and_uniqueness(seed in 0u64..300) {
        let s = persons(&ScenarioConfig {
            size_a: 60,
            size_b: 60,
            n_matches: 20,
            dirt: DirtModel::light(),
            seed,
        });
        let pairs = sample_pairs(&s.table_a, &s.table_b, "id", "id", 80, seed);
        let feats = blocking_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let matrix = extract_feature_matrix(&pairs, &s.table_a, &s.table_b, &feats).unwrap();
        let cfg = ActiveLearnConfig {
            seed_size: 10,
            batch_size: 5,
            max_rounds: 4,
            ..Default::default()
        };
        let mut oracle = OracleLabeler::new(s.gold.clone(), "id", "id");
        let outcome = active_learn(
            &matrix,
            |i| {
                let (ra, rb) = matrix.pairs[i];
                oracle.label(&s.table_a, ra as usize, &s.table_b, rb as usize).as_bool()
            },
            &cfg,
        );
        // Budget: seed + rounds * batch, never more.
        prop_assert!(outcome.questions <= cfg.seed_size + cfg.max_rounds * cfg.batch_size);
        prop_assert_eq!(outcome.questions, outcome.labeled.len());
        // Each pool item labeled at most once.
        let mut seen: Vec<usize> = outcome.labeled.iter().map(|&(i, _)| i).collect();
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(n, seen.len());
        // The returned forest predicts a valid probability everywhere.
        for row in &matrix.rows {
            let p = outcome.forest.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn kept_rules_respect_the_precision_floor(seed in 0u64..200) {
        let s = persons(&ScenarioConfig {
            size_a: 80,
            size_b: 80,
            n_matches: 25,
            dirt: DirtModel::light(),
            seed,
        });
        let pairs = sample_pairs(&s.table_a, &s.table_b, "id", "id", 120, seed);
        let feats = blocking_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let matrix = extract_feature_matrix(&pairs, &s.table_a, &s.table_b, &feats).unwrap();
        let mut oracle = OracleLabeler::new(s.gold.clone(), "id", "id");
        let labels: Vec<(usize, bool)> = (0..matrix.len())
            .map(|i| {
                let (ra, rb) = matrix.pairs[i];
                (i, oracle.label(&s.table_a, ra as usize, &s.table_b, rb as usize).as_bool())
            })
            .collect();
        let mut data = Dataset::new(matrix.names.clone());
        for &(i, y) in &labels {
            data.push(&matrix.rows[i], y);
        }
        let forest = RandomForestLearner { n_trees: 5, seed, ..Default::default() }
            .fit_forest(&data);
        let (kept, _) = extract_blocking_rules(&forest, &matrix, &labels, &feats, 0.97, 8);
        for r in &kept {
            prop_assert!(r.precision >= 0.97, "{:?}", r);
            prop_assert!(r.coverage > 0.0);
            prop_assert!((0.0..=1.0).contains(&r.coverage));
        }
    }
}
