//! The SIMD-class intersection kernel tier.
//!
//! Every set-overlap consumer in the workspace — the `*_ids` similarity
//! measures in [`crate::intern`], the sim-join verification stage in
//! `magellan-simjoin`, the prepared feature cache in `magellan-features`
//! — ultimately computes `|A ∩ B|` of two **sorted, deduplicated** `u32`
//! slices. This module is the shared kernel layer below all of them:
//! several algorithmically different intersection kernels plus an
//! adaptive selector, all under one hard contract:
//!
//! > **Bit-identity.** Every kernel returns *exactly*
//! > [`intersect_scalar`]'s count on every pair of sorted deduplicated
//! > slices. Since each similarity measure is a pure arithmetic function
//! > of `(|A|, |B|, |A ∩ B|)`, identical counts make the resulting
//! > `f64`s bit-identical — the kernels are invisible to everything
//! > above them except the clock.
//!
//! The contract is enforced by the kernel-oracle harness
//! (`crates/textsim/tests/kernel_oracle.rs`): a grid of kernel ×
//! input-shape class × seed in which every kernel below registers, and
//! into which any future kernel must register too (see DESIGN.md §7.2).
//!
//! ## The kernels
//!
//! * [`intersect_scalar`] — the branchy merge walk preserved verbatim
//!   from the PR 3 interning layer: the oracle every other kernel is
//!   compared against.
//! * [`intersect_merge`] — branchless merge: the three-way `match` is
//!   replaced by unconditional `usize::from` advances, removing the
//!   unpredictable branch per element (the compare outcome on random
//!   id soup is a coin flip, so the branchy loop pays a misprediction
//!   every other element).
//! * [`intersect_gallop`] — exponential + binary search of each short-
//!   side element in the long side; O(|short|·log|long|) for heavily
//!   skewed size ratios where a merge would walk the long side.
//! * [`intersect_bitset`] — 64-bit bitmap intersection: both sets are
//!   rasterized into word-parallel bitmaps over their overlapping id
//!   span and combined with `AND` + `count_ones` (popcount) — 64
//!   set-membership tests per word op, the SWAR workhorse for short
//!   *dense* id ranges (q-gram vocabularies, rarest-first join ids).
//!
//! ## Adaptive selection
//!
//! [`intersect_auto`] picks by **size**, then **size ratio**, then
//! **density**: tiny operands (≤ [`SCALAR_MAX_LEN`] combined) stay on
//! the scalar reference where dispatch overhead isn't amortized, skew
//! ≥ [`GALLOP_RATIO`] gallops, dense overlapping spans (few words per
//! element) rasterize, everything else takes the branchless merge.
//! The choice only moves work between kernels that agree bit-for-bit,
//! so callers never observe it — but it is reported via
//! [`KernelCounters`] so joins can publish selection telemetry.
//!
//! A process-wide [`set_mode`] switch can pin everything back to the
//! scalar reference — benches use it to time the PR 5 path against the
//! kernel tier inside one process, and tests use it to prove the
//! dispatch layer itself is output-invisible.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Size ratio at or beyond which [`intersect_auto`] gallops instead of
/// merging. Mirrors the verification-stage constant in
/// `magellan-simjoin` (the two tiers must agree so telemetry composes).
pub const GALLOP_RATIO: usize = 16;

/// Minimum smaller-set length before [`intersect_auto`] considers the
/// bitset kernel: rasterization has a fixed per-call cost (span zeroing)
/// that tiny sets never amortize.
pub const BITSET_MIN_LEN: usize = 24;

/// Densify only when the overlapping span needs at most this many 64-bit
/// words per element of the two sets combined (1 ⇒ average id gap ≤ 64).
pub const BITSET_MAX_WORDS_PER_ELEM: usize = 1;

/// Combined length at or below which [`select`] stays on the scalar
/// reference: dispatch and branchless bookkeeping are not amortized on
/// operands this small (typical word sets of a single attribute), and
/// the branchy merge predicts perfectly there.
///
/// Retuned 16 → 48 (PR 9): profile grids with 3–8-token attribute sets
/// produced combined lengths of 17–48 that were dispatched to the
/// merge/bitset kernels, whose fixed per-call cost loses to the plain
/// scalar walk at those sizes — the adaptive selector must never lose
/// to the pinned scalar reference.
pub const SCALAR_MAX_LEN: usize = 48;

/// Which kernel [`select`] chose for a given input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Branchy scalar merge (reference; also the forced mode).
    Scalar,
    /// Branchless merge.
    Merge,
    /// Exponential + binary search of the short side in the long side.
    Gallop,
    /// 64-bit bitmap AND + popcount over the overlapping span.
    Bitset,
}

/// How often the adaptive selector picked each kernel. Deterministic:
/// the selection is a pure function of the input slice shapes, so the
/// counts are identical for any worker count or chunking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Calls answered by the branchless merge kernel.
    pub merge: usize,
    /// Calls answered by the galloping kernel.
    pub gallop: usize,
    /// Calls answered by the bitset/popcount kernel.
    pub bitset: usize,
}

impl KernelCounters {
    /// Record one selection.
    pub fn record(&mut self, k: Kernel) {
        match k {
            Kernel::Scalar | Kernel::Merge => self.merge += 1,
            Kernel::Gallop => self.gallop += 1,
            Kernel::Bitset => self.bitset += 1,
        }
    }

    /// Fold another counter set into this one.
    pub fn merge_from(&mut self, other: &KernelCounters) {
        self.merge += other.merge;
        self.gallop += other.gallop;
        self.bitset += other.bitset;
    }
}

/// Process-wide kernel mode: `0` = adaptive (default), `1` = scalar
/// reference pinned. Relaxed ordering is fine — the mode only moves
/// work between bit-identical kernels.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Kernel dispatch mode for [`intersect_auto`] (and the sim-join
/// verification tier, which honors the same switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Pick bitset/gallop/merge adaptively (the default).
    #[default]
    Adaptive,
    /// Answer everything with the scalar reference merge. For benches
    /// (timing the pre-kernel path in-process) and dispatch tests.
    ScalarReference,
}

/// Set the process-wide kernel mode. Output never changes — only which
/// bit-identical kernel does the work.
pub fn set_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Adaptive => 0,
            KernelMode::ScalarReference => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide kernel mode.
pub fn mode() -> KernelMode {
    if MODE.load(Ordering::Relaxed) == 1 {
        KernelMode::ScalarReference
    } else {
        KernelMode::Adaptive
    }
}

/// True when `s` is sorted ascending with no duplicates — the input
/// invariant of every kernel here.
pub fn is_sorted_dedup(s: &[u32]) -> bool {
    s.windows(2).all(|w| w[0] < w[1])
}

/// `|a ∩ b|` by the branchy scalar merge — the preserved reference
/// kernel every other kernel must match bit-for-bit. Byte-identical
/// logic to the PR 3 `intern::intersect_size_sorted` walk.
pub fn intersect_scalar(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(is_sorted_dedup(a) && is_sorted_dedup(b));
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `|a ∩ b|` by branchless merge: both cursors advance by the boolean
/// compare outcomes, so the loop body has no data-dependent branch to
/// mispredict.
pub fn intersect_merge(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(is_sorted_dedup(a) && is_sorted_dedup(b));
    let (la, lb) = (a.len(), b.len());
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < la && j < lb {
        let x = a[i];
        let y = b[j];
        n += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    n
}

/// `|a ∩ b|` by galloping: each element of the shorter slice is located
/// in the longer by exponential search + `partition_point`. Wins when
/// one side is ≥ [`GALLOP_RATIO`]× the other.
pub fn intersect_gallop(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(is_sorted_dedup(a) && is_sorted_dedup(b));
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut n = 0;
    let mut base = 0usize;
    for &t in short {
        if base >= long.len() {
            break;
        }
        let tail = &long[base..];
        let mut hi = 1usize;
        while hi < tail.len() && tail[hi - 1] < t {
            hi <<= 1;
        }
        let lo = (hi >> 1).min(tail.len());
        let hi = hi.min(tail.len());
        base += lo + tail[lo..hi].partition_point(|&v| v < t);
        if base < long.len() && long[base] == t {
            n += 1;
            base += 1;
        }
    }
    n
}

thread_local! {
    /// Reusable rasterization scratch for [`intersect_bitset`]: two
    /// word buffers, grown monotonically, zeroed per call only over the
    /// span actually used.
    static BITSET_SCRATCH: RefCell<(Vec<u64>, Vec<u64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `|a ∩ b|` by 64-bit bitmap intersection: both sets are rasterized
/// over their overlapping id span and combined word-by-word with
/// `AND` + `count_ones` — 64 membership tests per word operation.
///
/// Only ids inside `[max(a₀, b₀), min(a_last, b_last)]` can intersect,
/// so out-of-span elements are clipped by binary search before any bit
/// is set. Exact for every input; [`intersect_auto`] merely restricts
/// *when* it is chosen to shapes where it is also fast.
pub fn intersect_bitset(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(is_sorted_dedup(a) && is_sorted_dedup(b));
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let lo = a[0].max(b[0]);
    let hi = a[a.len() - 1].min(b[b.len() - 1]);
    if lo > hi {
        return 0;
    }
    let words = ((hi - lo) / 64 + 1) as usize;
    BITSET_SCRATCH.with(|scratch| {
        let (wa, wb) = &mut *scratch.borrow_mut();
        wa.clear();
        wa.resize(words, 0);
        wb.clear();
        wb.resize(words, 0);
        let rasterize = |s: &[u32], w: &mut [u64]| {
            let from = s.partition_point(|&v| v < lo);
            let to = s.partition_point(|&v| v <= hi);
            for &v in &s[from..to] {
                let off = v - lo;
                w[(off / 64) as usize] |= 1u64 << (off % 64);
            }
        };
        rasterize(a, wa);
        rasterize(b, wb);
        wa.iter()
            .zip(wb.iter())
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    })
}

/// Pick a kernel for the given input shape: tiny operands first (the
/// scalar reference — the common case for word sets of one attribute,
/// checked before anything else so the hot path is one add + compare),
/// then size ratio (gallop), then density (bitset), otherwise the
/// branchless merge. Pure in the slice *shapes* (lengths and end
/// values), so selections — and the [`KernelCounters`] built from them
/// — are deterministic.
pub fn select(a: &[u32], b: &[u32]) -> Kernel {
    if mode() == KernelMode::ScalarReference {
        return Kernel::Scalar;
    }
    let (la, lb) = (a.len(), b.len());
    if la == 0 || lb == 0 {
        return Kernel::Merge; // trivial; counted as a merge answer
    }
    if la + lb <= SCALAR_MAX_LEN {
        return Kernel::Scalar;
    }
    if la >= GALLOP_RATIO.saturating_mul(lb) || lb >= GALLOP_RATIO.saturating_mul(la) {
        return Kernel::Gallop;
    }
    let min_len = la.min(lb);
    if min_len >= BITSET_MIN_LEN {
        let lo = a[0].max(b[0]);
        let hi = a[la - 1].min(b[lb - 1]);
        if lo <= hi {
            let words = ((hi - lo) / 64 + 1) as usize;
            if words <= BITSET_MAX_WORDS_PER_ELEM * (la + lb) {
                return Kernel::Bitset;
            }
        }
    }
    Kernel::Merge
}

/// `|a ∩ b|` through the adaptive selector. Bit-identical to
/// [`intersect_scalar`] on every input, per the kernel contract.
pub fn intersect_auto(a: &[u32], b: &[u32]) -> usize {
    dispatch(select(a, b), a, b)
}

/// [`intersect_auto`] that also records which kernel answered.
pub fn intersect_auto_counted(a: &[u32], b: &[u32], counters: &mut KernelCounters) -> usize {
    let k = select(a, b);
    counters.record(k);
    dispatch(k, a, b)
}

/// Run a specific kernel (the oracle harness drives every kernel
/// through this same entry the production dispatch uses).
pub fn dispatch(kernel: Kernel, a: &[u32], b: &[u32]) -> usize {
    match kernel {
        Kernel::Scalar => intersect_scalar(a, b),
        Kernel::Merge => intersect_merge(a, b),
        Kernel::Gallop => intersect_gallop(a, b),
        Kernel::Bitset => intersect_bitset(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that set or observe the process-wide mode serialize here so
    /// the harness's test threads can't interleave mode flips.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    const ALL: [Kernel; 4] = [Kernel::Scalar, Kernel::Merge, Kernel::Gallop, Kernel::Bitset];

    fn check_all(a: &[u32], b: &[u32]) {
        let want = intersect_scalar(a, b);
        for k in ALL {
            assert_eq!(dispatch(k, a, b), want, "{k:?} on {a:?} / {b:?}");
            assert_eq!(dispatch(k, b, a), want, "{k:?} swapped on {a:?} / {b:?}");
        }
        assert_eq!(intersect_auto(a, b), want);
    }

    /// Regression: every kernel on every zero-length shape — the join's
    /// OOV clamp hands kernels genuinely empty probe slices.
    #[test]
    fn empty_inputs_are_zero_for_every_kernel() {
        check_all(&[], &[]);
        check_all(&[], &[1, 2, 3]);
        check_all(&[7], &[]);
    }

    #[test]
    fn singletons_and_full_overlap() {
        check_all(&[5], &[5]);
        check_all(&[5], &[6]);
        check_all(&[1, 2, 3, 4], &[1, 2, 3, 4]);
    }

    #[test]
    fn disjoint_and_interleaved() {
        check_all(&[0, 2, 4, 6], &[1, 3, 5, 7]);
        check_all(&[0, 1, 2], &[100, 200, 300]);
        check_all(&[1, 3, 5, 7, 9], &[3, 4, 5, 6, 7]);
    }

    #[test]
    fn skewed_shapes_hit_the_gallop_kernel() {
        let _g = MODE_LOCK.lock().unwrap();
        let long: Vec<u32> = (0..2000).map(|i| i * 3).collect();
        let short = [3, 9, 100, 3000, 5997];
        assert_eq!(select(&short, &long), Kernel::Gallop);
        check_all(&short, &long);
    }

    #[test]
    fn dense_shapes_hit_the_bitset_kernel() {
        let _g = MODE_LOCK.lock().unwrap();
        let a: Vec<u32> = (0..200).collect();
        let b: Vec<u32> = (50..250).collect();
        assert_eq!(select(&a, &b), Kernel::Bitset);
        check_all(&a, &b);
        // Span ends far apart but overlap-dense interiors still clip.
        let c: Vec<u32> = (0..64).chain(std::iter::once(4_000_000)).collect();
        check_all(&a, &c);
    }

    #[test]
    fn sparse_shapes_fall_back_to_merge() {
        let _g = MODE_LOCK.lock().unwrap();
        let a: Vec<u32> = (0..40).map(|i| i * 10_000).collect();
        let b: Vec<u32> = (0..40).map(|i| i * 10_000 + 5_000).collect();
        assert_eq!(select(&a, &b), Kernel::Merge);
        check_all(&a, &b);
    }

    #[test]
    fn scalar_mode_pins_the_reference() {
        let _g = MODE_LOCK.lock().unwrap();
        let a: Vec<u32> = (0..200).collect();
        let b: Vec<u32> = (100..300).collect();
        set_mode(KernelMode::ScalarReference);
        assert_eq!(select(&a, &b), Kernel::Scalar);
        assert_eq!(intersect_auto(&a, &b), 100);
        set_mode(KernelMode::Adaptive);
        assert_eq!(select(&a, &b), Kernel::Bitset);
        assert_eq!(intersect_auto(&a, &b), 100);
    }

    #[test]
    fn counters_attribute_selections() {
        let _g = MODE_LOCK.lock().unwrap();
        let mut c = KernelCounters::default();
        let dense: Vec<u32> = (0..100).collect();
        let long: Vec<u32> = (0..2000).collect();
        intersect_auto_counted(&[1, 2], &[2, 3], &mut c);
        intersect_auto_counted(&[1], &long, &mut c);
        intersect_auto_counted(&dense, &dense, &mut c);
        assert_eq!((c.merge, c.gallop, c.bitset), (1, 1, 1));
        let mut total = KernelCounters::default();
        total.merge_from(&c);
        total.merge_from(&c);
        assert_eq!((total.merge, total.gallop, total.bitset), (2, 2, 2));
    }

    #[test]
    fn u32_range_extremes_do_not_overflow() {
        // Dense ids hugging u32::MAX: span arithmetic must not wrap.
        let a: Vec<u32> = (u32::MAX - 200..=u32::MAX).collect();
        let b: Vec<u32> = (u32::MAX - 100..=u32::MAX).collect();
        check_all(&a, &b);
        check_all(&[0, u32::MAX], &[u32::MAX]);
    }
}
