//! The learner/classifier traits every matcher implements.

use crate::dataset::Dataset;

/// A trained binary classifier.
pub trait Classifier: Send + Sync {
    /// Probability-like score in `[0, 1]` that the example is positive.
    fn predict_proba(&self, row: &[f64]) -> f64;

    /// Hard prediction at the 0.5 operating point.
    fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

/// A learning algorithm that produces a [`Classifier`] from data.
///
/// Learners are the unit of matcher selection in the Fig. 2 guide: the
/// pipeline cross-validates several learners (decision tree, random forest,
/// logistic regression, ...) and picks the one with the best F1.
pub trait Learner: Send + Sync {
    /// A short display name ("decision_tree", "random_forest", ...).
    fn name(&self) -> &str;

    /// Train on a dataset.
    fn fit(&self, data: &Dataset) -> Box<dyn Classifier>;

    /// Committee size of the produced classifier (1 for single models).
    ///
    /// Used as the tie-break in matcher selection: when cross-validation
    /// cannot separate learners on F1, the pipeline prefers the larger
    /// committee — ensembles produce the graded probabilities that the
    /// production threshold calibration needs (a single tree's scores
    /// cluster at 0/1, so no operating point above 0.5 filters anything),
    /// and the paper's tools standardize on random forests (Falcon's
    /// committee, the guide's default matcher).
    fn ensemble_size(&self) -> usize {
        1
    }
}

/// A trivial constant classifier, useful as a baseline and for degenerate
/// training sets (single-class labels).
#[derive(Debug, Clone, Copy)]
pub struct ConstantClassifier {
    /// Score returned for every example.
    pub proba: f64,
}

impl Classifier for ConstantClassifier {
    fn predict_proba(&self, _row: &[f64]) -> f64 {
        self.proba
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_classifier_predicts_constantly() {
        let c = ConstantClassifier { proba: 0.9 };
        assert!(c.predict(&[1.0]));
        assert_eq!(c.predict_proba(&[]), 0.9);
        let c = ConstantClassifier { proba: 0.1 };
        assert!(!c.predict(&[42.0]));
    }
}
