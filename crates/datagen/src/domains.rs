//! Domain-specific scenario generators — one per deployment row of the
//! paper's Tables 1 and 2 (plus the Fig. 1 toy example).

use magellan_table::{Dtype, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

use crate::scenario::{build_scenario, EmScenario, ScenarioConfig, Side};
use crate::words::*;

fn pick<'a>(pool: &'a [&'a str], rng: &mut StdRng) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn str_or_null(v: Option<String>) -> Value {
    v.map_or(Value::Null, Value::Str)
}

fn int_or_null(v: Option<i64>) -> Value {
    v.map_or(Value::Null, Value::Int)
}

fn float_or_null(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Float)
}

/// Person records (the Fig. 1 style example, at scale): name, city, state,
/// age. Side B occasionally renders first names as initials and middle
/// initials appear on one side only.
pub fn persons(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Person {
        first: &'static str,
        middle: char,
        last: &'static str,
        city: &'static str,
        state: &'static str,
        age: i64,
    }
    build_scenario(
        "persons",
        cfg,
        &[
            ("name", Dtype::Str),
            ("city", Dtype::Str),
            ("state", Dtype::Str),
            ("age", Dtype::Int),
        ],
        |rng| {
            let city_idx = rng.gen_range(0..CITIES.len());
            Person {
                first: pick(FIRST_NAMES, rng),
                middle: (b'a' + rng.gen_range(0..26u8)) as char,
                last: pick(LAST_NAMES, rng),
                city: CITIES[city_idx],
                state: STATES[city_idx % STATES.len()],
                age: rng.gen_range(18..90),
            }
        },
        |p, side, rng, dirt| {
            let abbrev = rng.gen_bool(dirt.abbrev_rate);
            let name = match (side, abbrev) {
                (Side::A, false) => format!("{} {}", p.first, p.last),
                (Side::A, true) => format!("{} {}. {}", p.first, p.middle, p.last),
                (Side::B, false) => format!("{} {} {}", p.first, p.middle, p.last),
                (Side::B, true) => {
                    format!("{}. {}", &p.first[..1], p.last)
                }
            };
            vec![
                str_or_null(dirt.corrupt_string(&name, rng)),
                str_or_null(dirt.corrupt_string(p.city, rng)),
                str_or_null(dirt.corrupt_string(p.state, rng)),
                int_or_null(dirt.corrupt_int(p.age, rng)),
            ]
        },
    )
}

/// Product catalog records (the Walmart/Recruit style e-commerce rows of
/// Table 1): title, brand, price. Catalogs order the title tokens
/// differently and disagree on which adjectives to include.
pub fn products(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Product {
        brand: &'static str,
        adj: &'static str,
        kind: &'static str,
        model_no: u32,
        price: f64,
    }
    build_scenario(
        "products",
        cfg,
        &[
            ("title", Dtype::Str),
            ("brand", Dtype::Str),
            ("price", Dtype::Float),
        ],
        |rng| Product {
            brand: pick(BRANDS, rng),
            adj: pick(PRODUCT_ADJ, rng),
            kind: pick(PRODUCT_TYPES, rng),
            model_no: rng.gen_range(100..9999),
            price: (rng.gen_range(10.0..900.0f64) * 100.0).round() / 100.0,
        },
        |p, side, rng, dirt| {
            let title = match side {
                Side::A => format!("{} {} {} {}", p.brand, p.adj, p.kind, p.model_no),
                Side::B => {
                    // Catalog B: model number first, adjective often dropped.
                    if rng.gen_bool(dirt.abbrev_rate) {
                        format!("{} {} {}", p.brand, p.model_no, p.kind)
                    } else {
                        format!("{} {} {} {}", p.brand, p.model_no, p.adj, p.kind)
                    }
                }
            };
            vec![
                str_or_null(dirt.corrupt_string(&title, rng)),
                str_or_null(dirt.corrupt_string(p.brand, rng)),
                float_or_null(dirt.corrupt_float(p.price, rng)),
            ]
        },
    )
}

/// Vehicle records with the heavy-missingness profile of the AmFam
/// "Vehicles" task (Table 2): make, model, year, trim. The caller should
/// pass `DirtModel::heavy()` to reproduce the undecidable-pair problem.
pub fn vehicles(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Vehicle {
        make_idx: usize,
        model: &'static str,
        year: i64,
        trim: &'static str,
    }
    const TRIMS: &[&str] = &["base", "sport", "limited", "touring", "se", "le", "ex"];
    build_scenario(
        "vehicles",
        cfg,
        &[
            ("make", Dtype::Str),
            ("model", Dtype::Str),
            ("year", Dtype::Int),
            ("trim", Dtype::Str),
        ],
        |rng| {
            let make_idx = rng.gen_range(0..VEHICLE_MAKES.len());
            Vehicle {
                make_idx,
                model: pick(VEHICLE_MODELS[make_idx], rng),
                year: rng.gen_range(1998..2019),
                trim: pick(TRIMS, rng),
            }
        },
        |v, _side, rng, dirt| {
            vec![
                str_or_null(dirt.corrupt_string(VEHICLE_MAKES[v.make_idx], rng)),
                str_or_null(dirt.corrupt_string(v.model, rng)),
                int_or_null(dirt.corrupt_int(v.year, rng)),
                str_or_null(dirt.corrupt_string(v.trim, rng)),
            ]
        },
    )
}

/// Street addresses (the AmFam "Addresses" task): number, street, city,
/// state, zip. Source B abbreviates street types systematically.
pub fn addresses(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Address {
        number: i64,
        street: &'static str,
        stype: usize,
        city_idx: usize,
        zip: i64,
    }
    build_scenario(
        "addresses",
        cfg,
        &[
            ("street", Dtype::Str),
            ("city", Dtype::Str),
            ("state", Dtype::Str),
            ("zip", Dtype::Str),
        ],
        |rng| Address {
            number: rng.gen_range(1..9999),
            street: pick(STREETS, rng),
            stype: rng.gen_range(0..STREET_TYPES.len()),
            city_idx: rng.gen_range(0..CITIES.len()),
            zip: rng.gen_range(10000..99999),
        },
        |a, side, rng, dirt| {
            let stype = match side {
                Side::A => STREET_TYPES[a.stype],
                Side::B => STREET_TYPES_ABBR[a.stype],
            };
            let street = format!("{} {} {}", a.number, a.street, stype);
            vec![
                str_or_null(dirt.corrupt_string(&street, rng)),
                str_or_null(dirt.corrupt_string(CITIES[a.city_idx], rng)),
                str_or_null(
                    dirt.corrupt_string(STATES[a.city_idx % STATES.len()], rng),
                ),
                str_or_null(dirt.corrupt_int(a.zip, rng).map(|z| z.to_string())),
            ]
        },
    )
}

/// Vendor master-data records, including the pathological "Brazilian
/// vendors" slice of Table 2: a `brazil_fraction` of base entities carry a
/// *generic placeholder address* shared across unrelated vendors, which
/// makes their pairs undecidable from the data. Set `brazil_fraction = 0.0`
/// for the "Vendors (no Brazil)" rerun.
pub fn vendors(cfg: &ScenarioConfig, brazil_fraction: f64) -> EmScenario {
    #[derive(Clone)]
    struct Vendor {
        stem: &'static str,
        second: &'static str,
        ctype: usize,
        brazilian: bool,
        street_no: i64,
        street: &'static str,
        city_idx: usize,
    }
    const GENERIC_ADDRESSES: &[&str] = &[
        "rua principal s n centro",
        "avenida brasil 1 centro",
        "caixa postal 1",
    ];
    let name = if brazil_fraction > 0.0 {
        "vendors"
    } else {
        "vendors_no_brazil"
    };
    build_scenario(
        name,
        cfg,
        &[
            ("name", Dtype::Str),
            ("address", Dtype::Str),
            ("country", Dtype::Str),
        ],
        move |rng| Vendor {
            stem: pick(COMPANY_STEMS, rng),
            second: pick(COMPANY_STEMS, rng),
            ctype: rng.gen_range(0..COMPANY_TYPES.len()),
            brazilian: rng.gen_bool(brazil_fraction),
            street_no: rng.gen_range(1..999),
            street: pick(STREETS, rng),
            city_idx: rng.gen_range(0..CITIES.len()),
        },
        |v, side, rng, dirt| {
            let ctype = match side {
                Side::A => COMPANY_TYPES[v.ctype],
                Side::B => COMPANY_TYPES_ABBR[v.ctype],
            };
            let name = format!("{} {} {}", v.stem, v.second, ctype);
            let (address, country) = if v.brazilian {
                // The dirty-data signature: unrelated vendors share one of a
                // tiny set of generic addresses — and because the *name* is
                // what varies, we also blank part of it to mimic the
                // incorrect entries the paper describes.
                let generic = GENERIC_ADDRESSES[rng.gen_range(0..GENERIC_ADDRESSES.len())];
                (generic.to_owned(), "brazil")
            } else {
                (
                    format!("{} {} {}", v.street_no, v.street, CITIES[v.city_idx]),
                    "usa",
                )
            };
            let rendered_name = if v.brazilian {
                // Only the generic stem survives for Brazilian entries.
                v.stem.to_owned()
            } else {
                name
            };
            vec![
                str_or_null(dirt.corrupt_string(&rendered_name, rng)),
                str_or_null(dirt.corrupt_string(&address, rng)),
                Value::Str(country.to_owned()),
            ]
        },
    )
}

/// Restaurant listings (the Recruit task of Table 1): name, address, city,
/// phone — phone formatting drifts between sources.
pub fn restaurants(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Restaurant {
        stem: &'static str,
        city_idx: usize,
        street_no: i64,
        street: &'static str,
        phone: (u16, u16, u16),
    }
    build_scenario(
        "restaurants",
        cfg,
        &[
            ("name", Dtype::Str),
            ("address", Dtype::Str),
            ("city", Dtype::Str),
            ("phone", Dtype::Str),
        ],
        |rng| Restaurant {
            stem: pick(RESTAURANT_STEMS, rng),
            city_idx: rng.gen_range(0..CITIES.len()),
            street_no: rng.gen_range(1..999),
            street: pick(STREETS, rng),
            phone: (
                rng.gen_range(200..999),
                rng.gen_range(200..999),
                rng.gen_range(1000..9999),
            ),
        },
        |r, side, rng, dirt| {
            let phone = match side {
                Side::A => format!("({}) {}-{}", r.phone.0, r.phone.1, r.phone.2),
                Side::B => format!("{}-{}-{}", r.phone.0, r.phone.1, r.phone.2),
            };
            let address = format!("{} {} st", r.street_no, r.street);
            vec![
                str_or_null(dirt.corrupt_string(r.stem, rng)),
                str_or_null(dirt.corrupt_string(&address, rng)),
                str_or_null(dirt.corrupt_string(CITIES[r.city_idx], rng)),
                str_or_null(dirt.corrupt_string(&phone, rng)),
            ]
        },
    )
}

/// Cattle-ranch property records (the Appendix B "Land Use" deployment):
/// owner, municipality, state, area. Two government registries render
/// owner names differently and area drifts between survey years.
pub fn ranches(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Ranch {
        owner_first: &'static str,
        owner_last: &'static str,
        muni_idx: usize,
        area_ha: f64,
    }
    build_scenario(
        "ranches",
        cfg,
        &[
            ("owner", Dtype::Str),
            ("municipality", Dtype::Str),
            ("state", Dtype::Str),
            ("area_ha", Dtype::Float),
        ],
        |rng| Ranch {
            owner_first: pick(FIRST_NAMES, rng),
            owner_last: pick(LAST_NAMES, rng),
            muni_idx: rng.gen_range(0..MUNICIPALITIES.len()),
            area_ha: (rng.gen_range(50.0..20_000.0f64) * 10.0).round() / 10.0,
        },
        |r, side, rng, dirt| {
            let owner = match side {
                Side::A => format!("{} {}", r.owner_first, r.owner_last),
                // Registry B writes SURNAME, given-name.
                Side::B => format!("{} {}", r.owner_last, r.owner_first),
            };
            vec![
                str_or_null(dirt.corrupt_string(&owner, rng)),
                str_or_null(dirt.corrupt_string(MUNICIPALITIES[r.muni_idx], rng)),
                str_or_null(
                    dirt.corrupt_string(BR_STATES[r.muni_idx % BR_STATES.len()], rng),
                ),
                float_or_null(dirt.corrupt_float(r.area_ha, rng)),
            ]
        },
    )
}

/// Bibliographic records (the classic EM benchmark shape): title, authors,
/// venue, year.
pub fn citations(cfg: &ScenarioConfig) -> EmScenario {
    #[derive(Clone)]
    struct Paper {
        title_words: Vec<&'static str>,
        authors: Vec<(&'static str, &'static str)>,
        venue: &'static str,
        year: i64,
    }
    build_scenario(
        "citations",
        cfg,
        &[
            ("title", Dtype::Str),
            ("authors", Dtype::Str),
            ("venue", Dtype::Str),
            ("year", Dtype::Int),
        ],
        |rng| {
            let n_words = rng.gen_range(4..8);
            let n_authors = rng.gen_range(1..4);
            Paper {
                title_words: (0..n_words).map(|_| pick(PAPER_WORDS, rng)).collect(),
                authors: (0..n_authors)
                    .map(|_| (pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng)))
                    .collect(),
                venue: pick(VENUES, rng),
                year: rng.gen_range(1995..2019),
            }
        },
        |p, side, rng, dirt| {
            let title = p.title_words.join(" ");
            let authors = match side {
                Side::A => p
                    .authors
                    .iter()
                    .map(|(f, l)| format!("{f} {l}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                Side::B => p
                    .authors
                    .iter()
                    .map(|(f, l)| format!("{}. {l}", &f[..1]))
                    .collect::<Vec<_>>()
                    .join("; "),
            };
            vec![
                str_or_null(dirt.corrupt_string(&title, rng)),
                str_or_null(dirt.corrupt_string(&authors, rng)),
                str_or_null(dirt.corrupt_string(p.venue, rng)),
                int_or_null(dirt.corrupt_int(p.year, rng)),
            ]
        },
    )
}

/// The exact Fig. 1 toy tables from the paper, with their two gold matches.
pub fn figure1_example() -> EmScenario {
    let table_a = Table::from_rows(
        "A",
        &[
            ("id", Dtype::Str),
            ("name", Dtype::Str),
            ("city", Dtype::Str),
            ("state", Dtype::Str),
        ],
        vec![
            vec!["a1".into(), "Dave Smith".into(), "Madison".into(), "WI".into()],
            vec!["a2".into(), "Joe Wilson".into(), "San Jose".into(), "CA".into()],
            vec!["a3".into(), "Dan Smith".into(), "Middleton".into(), "WI".into()],
        ],
    )
    .expect("static rows");
    let table_b = Table::from_rows(
        "B",
        &[
            ("id", Dtype::Str),
            ("name", Dtype::Str),
            ("city", Dtype::Str),
            ("state", Dtype::Str),
        ],
        vec![
            vec!["b1".into(), "David D. Smith".into(), "Madison".into(), "WI".into()],
            vec!["b2".into(), "Daniel W. Smith".into(), "Middleton".into(), "WI".into()],
        ],
    )
    .expect("static rows");
    let gold = [("a1", "b1"), ("a3", "b2")]
        .into_iter()
        .map(|(a, b)| (a.to_owned(), b.to_owned()))
        .collect();
    EmScenario {
        name: "figure1".to_owned(),
        table_a,
        table_b,
        gold,
    }
}

/// All standard generators by name, with paper-profile dirt defaults —
/// used by the experiment harness to sweep Table 2's task list.
pub fn by_name(name: &str, cfg: &ScenarioConfig) -> Option<EmScenario> {
    Some(match name {
        "persons" => persons(cfg),
        "products" => products(cfg),
        "vehicles" => vehicles(cfg),
        "addresses" => addresses(cfg),
        "vendors" => vendors(cfg, 0.25),
        "vendors_no_brazil" => vendors(cfg, 0.0),
        "restaurants" => restaurants(cfg),
        "ranches" => ranches(cfg),
        "citations" => citations(cfg),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirt::DirtModel;

    fn cfg(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            size_a: 120,
            size_b: 100,
            n_matches: 40,
            dirt: DirtModel::moderate(),
            seed,
        }
    }

    #[test]
    fn every_domain_generates_valid_scenarios() {
        for name in [
            "persons",
            "products",
            "vehicles",
            "addresses",
            "vendors",
            "vendors_no_brazil",
            "restaurants",
            "ranches",
            "citations",
        ] {
            let s = by_name(name, &cfg(7)).expect("known name");
            assert_eq!(s.table_a.nrows(), 120, "{name}");
            assert_eq!(s.table_b.nrows(), 100, "{name}");
            assert_eq!(s.gold.len(), 40, "{name}");
            // Keys valid and unique.
            let mut catalog = magellan_table::Catalog::new();
            catalog.set_key(&s.table_a, "id").expect("A key valid");
            catalog.set_key(&s.table_b, "id").expect("B key valid");
            // Gold referential integrity.
            let ak = s.table_a.key_index("id").unwrap();
            let bk = s.table_b.key_index("id").unwrap();
            for (a, b) in &s.gold {
                assert!(ak.contains_key(a) && bk.contains_key(b), "{name}");
            }
        }
        assert!(by_name("nope", &cfg(7)).is_none());
    }

    #[test]
    fn clean_persons_matches_are_near_identical() {
        let s = persons(&ScenarioConfig {
            dirt: DirtModel::clean(),
            ..cfg(3)
        });
        let ak = s.table_a.key_index("id").unwrap();
        let bk = s.table_b.key_index("id").unwrap();
        for (a, b) in s.gold.iter().take(10) {
            let ca = s.table_a.value_by_name(ak[a], "city").unwrap().display_string();
            let cb = s.table_b.value_by_name(bk[b], "city").unwrap().display_string();
            assert_eq!(ca, cb, "clean matched persons share city");
        }
    }

    #[test]
    fn heavy_vehicles_have_many_nulls() {
        let s = vehicles(&ScenarioConfig {
            dirt: DirtModel::heavy(),
            ..cfg(4)
        });
        let profile = magellan_table::profile::profile_table(&s.table_a);
        let trim_nulls = profile.iter().find(|p| p.name == "trim").unwrap().nulls;
        assert!(
            trim_nulls > 15,
            "heavy dirt should null out many trims, got {trim_nulls}"
        );
    }

    #[test]
    fn brazilian_vendors_share_generic_addresses() {
        let s = vendors(
            &ScenarioConfig {
                size_a: 300,
                size_b: 300,
                n_matches: 100,
                dirt: DirtModel::clean(),
                seed: 5,
            },
            0.4,
        );
        // Generic addresses repeat across unrelated vendors.
        let profile = magellan_table::profile::profile_column(&s.table_a, "address").unwrap();
        let top_count = profile.top.map(|(_, c)| c).unwrap_or(0);
        assert!(
            top_count > 20,
            "expected a heavily repeated generic address, top count {top_count}"
        );
        // And the no-brazil variant doesn't have that pathology.
        let s2 = vendors(
            &ScenarioConfig {
                size_a: 300,
                size_b: 300,
                n_matches: 100,
                dirt: DirtModel::clean(),
                seed: 5,
            },
            0.0,
        );
        let p2 = magellan_table::profile::profile_column(&s2.table_a, "address").unwrap();
        assert!(p2.top.map(|(_, c)| c).unwrap_or(0) < top_count);
    }

    #[test]
    fn figure1_matches_paper() {
        let s = figure1_example();
        assert_eq!(s.table_a.nrows(), 3);
        assert_eq!(s.table_b.nrows(), 2);
        assert!(s.is_match("a1", "b1"));
        assert!(s.is_match("a3", "b2"));
        assert!(!s.is_match("a2", "b1"));
    }

    #[test]
    fn ranches_flip_owner_name_order() {
        let s = ranches(&ScenarioConfig {
            dirt: DirtModel::clean(),
            ..cfg(6)
        });
        let ak = s.table_a.key_index("id").unwrap();
        let bk = s.table_b.key_index("id").unwrap();
        let (a, b) = s.gold.iter().next().unwrap();
        let oa = s.table_a.value_by_name(ak[a], "owner").unwrap().display_string();
        let ob = s.table_b.value_by_name(bk[b], "owner").unwrap().display_string();
        let ta: Vec<&str> = oa.split_whitespace().collect();
        let tb: Vec<&str> = ob.split_whitespace().collect();
        assert_eq!(ta[0], tb[1]);
        assert_eq!(ta[1], tb[0]);
    }
}
