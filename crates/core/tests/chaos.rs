//! The chaos suite: the determinism contract under fault injection.
//!
//! Each test drives the full EM production pipeline (blocking → feature
//! extraction → prediction → rule layer) under seeded
//! [`magellan_faults::FaultPlan`]s that inject chunk panics, transient
//! checkpoint I/O failures, fragment failures, and stragglers — and
//! asserts the **recovery contract**:
//!
//! 1. no panic escapes the executor;
//! 2. every run completes;
//! 3. the match set, candidate count, and P/R/F1 are **bit-identical**
//!    to the fault-free golden run;
//! 4. a run killed after any phase resumes from its checkpoint to an
//!    identical final report;
//! 5. worker count remains irrelevant under faults.
//!
//! The number of seeds defaults to 8 and can be raised with the
//! `CHAOS_SEEDS` environment variable (the CI chaos job sets it).

use std::collections::HashSet;

use magellan_block::OverlapBlocker;
use magellan_core::checkpoint::{Checkpoint, CheckpointStore, FlakyStore, MemStore, Phase};
use magellan_core::error::MagellanError;
use magellan_core::evaluate::evaluate_matches;
use magellan_core::exec::{ProductionExecutor, ProductionReport, RecoveryOptions};
use magellan_core::rules::{Cmp, MatchRule, RuleLayer};
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, EmScenario, ScenarioConfig};
use magellan_faults::{FaultPlan, RetryPolicy};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::model::ConstantClassifier;

/// Fault seeds exercised per test: `CHAOS_SEEDS` (count) or 8.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    (0..n.max(1)).map(|i| 1000 + 37 * i).collect()
}

fn scenario(seed: u64) -> EmScenario {
    persons(&ScenarioConfig {
        size_a: 300,
        size_b: 300,
        n_matches: 100,
        dirt: DirtModel::light(),
        seed,
    })
}

fn workflow() -> EmWorkflow {
    EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("city", "city", FeatureKind::ExactMatch),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::new(vec![MatchRule::reject(
            "weak",
            vec![(
                "jaccard(word(A.name), word(B.name))".into(),
                Cmp::Lt,
                0.5,
            )],
        )]),
        threshold: 0.5,
    }
}

/// P/R/F1 of a report against the scenario's gold, for bit-identity
/// comparison between golden and chaos runs.
fn metrics(report: &ProductionReport, s: &EmScenario) -> (f64, f64, f64) {
    let gold: &HashSet<(String, String)> = &s.gold;
    let m = evaluate_matches(&report.matches, &s.table_a, &s.table_b, "id", "id", gold)
        .expect("evaluation");
    (m.precision(), m.recall(), m.f1())
}

#[test]
fn seeded_fault_plans_heal_to_bit_identical_results() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(21);
    let wf = workflow();
    let exec = ProductionExecutor::new(4);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");
    let golden_prf = metrics(&golden, &s);
    assert!(golden_prf.2 > 0.0, "golden run should find matches");

    let mut any_panic_contained = false;
    let mut any_store_retry = false;
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed);
        let mut store = FlakyStore::new(MemStore::new(), plan);
        let opts = RecoveryOptions {
            faults: plan,
            ..RecoveryOptions::default()
        };
        let rec = exec
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap_or_else(|e| panic!("chaos seed {seed} must complete, got: {e}"));
        assert_eq!(
            rec.matches, golden.matches,
            "seed {seed}: match set must be bit-identical"
        );
        assert_eq!(rec.n_candidates, golden.n_candidates, "seed {seed}");
        let prf = metrics(&rec, &s);
        assert_eq!(prf, golden_prf, "seed {seed}: P/R/F1 must be bit-identical");
        any_panic_contained |= rec.recovery.panics_contained > 0;
        any_store_retry |= rec.recovery.store_retries > 0;
        // The durable checkpoint reflects the finished run.
        let ck = loop {
            match store.load_bytes() {
                Ok(bytes) => break Checkpoint::from_bytes(&bytes.expect("checkpoint")).unwrap(),
                Err(e) => assert!(e.transient()),
            }
        };
        match ck {
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                assert_eq!(n_candidates, golden.n_candidates);
                assert_eq!(matches, golden.matches.pairs().to_vec());
            }
            other => panic!("expected Done checkpoint, got {other:?}"),
        }
    }
    assert!(
        any_panic_contained,
        "across all seeds at least one chunk panic should have been injected"
    );
    assert!(
        any_store_retry,
        "across all seeds at least one checkpoint I/O blip should have been injected"
    );
}

#[test]
fn kill_and_resume_is_identical_under_faults() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(22);
    let wf = workflow();
    let exec = ProductionExecutor::new(3);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");

    for seed in seeds().into_iter().take(4) {
        let plan = FaultPlan::seeded(seed);
        for kill_phase in [Phase::Blocking, Phase::Matching] {
            let mut store = FlakyStore::new(MemStore::new(), plan);
            let opts = RecoveryOptions {
                faults: plan,
                kill_after: Some(kill_phase),
                ..RecoveryOptions::default()
            };
            let err = exec
                .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
                .expect_err("kill hook must fire");
            let MagellanError::Killed { after_phase } = err else {
                panic!("seed {seed}: expected Killed, got {err}");
            };
            assert_eq!(after_phase, kill_phase.name());

            // The rerun resumes from the checkpoint the kill left behind
            // and finishes with a bit-identical report.
            let opts = RecoveryOptions {
                faults: plan,
                ..RecoveryOptions::default()
            };
            let resumed = exec
                .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
                .unwrap_or_else(|e| panic!("seed {seed}: resume must complete: {e}"));
            assert_eq!(resumed.recovery.resumed_from, Some(kill_phase));
            assert_eq!(
                resumed.matches, golden.matches,
                "seed {seed}: resumed matches must equal golden"
            );
            assert_eq!(resumed.n_candidates, golden.n_candidates);
        }
    }
}

#[test]
fn worker_count_is_irrelevant_under_faults() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(23);
    let wf = workflow();
    let plan = FaultPlan::seeded(4242);

    let mut reference: Option<ProductionReport> = None;
    for n_workers in [1usize, 2, 4, 8] {
        let mut store = FlakyStore::new(MemStore::new(), plan);
        let opts = RecoveryOptions {
            faults: plan,
            ..RecoveryOptions::default()
        };
        let rec = ProductionExecutor::new(n_workers)
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap_or_else(|e| panic!("{n_workers} workers must complete: {e}"));
        match &reference {
            None => reference = Some(rec),
            Some(r) => {
                assert_eq!(
                    rec.matches, r.matches,
                    "{n_workers} workers: fault recovery must be worker-count invariant"
                );
                assert_eq!(rec.n_candidates, r.n_candidates);
            }
        }
    }
}

#[test]
fn heavy_panic_storms_are_contained() {
    // A panic-containment smoke: far denser injection than the standard
    // seeded plan, aggressive enough that every parallel region takes
    // multiple hits — and the pipeline still completes identically.
    magellan_core::par::silence_contained_panics();
    let s = scenario(24);
    let wf = workflow();
    let exec = ProductionExecutor::new(4);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");

    let plan = FaultPlan {
        chunk_panic_per_mille: 600,
        io_error_per_mille: 500,
        ..FaultPlan::seeded(7)
    };
    let mut store = FlakyStore::new(MemStore::new(), plan);
    let opts = RecoveryOptions {
        faults: plan,
        retry: RetryPolicy::default(),
        kill_after: None,
    };
    let rec = exec
        .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
        .expect("panic storm must be absorbed");
    assert_eq!(rec.matches, golden.matches);
    assert!(
        rec.recovery.panics_contained >= 5,
        "a 60% per-chunk panic rate should hit many chunks: {:?}",
        rec.recovery
    );
}

// ---------------------------------------------------------------------
// Multi-tenant service chaos: the bit-identity contract of the
// CloudMatcher service layer under overload, faults, and kills.
// ---------------------------------------------------------------------

use magellan_falcon::cloud::LabelingMode;
use magellan_falcon::service::{
    Admission, MatchService, Priority, ServiceConfig, SyntheticTask, TenantQuota, TenantSpec,
    TenantSubmission, Workload,
};
use magellan_falcon::{FalconConfig, TaskSpec};
use magellan_faults::ArrivalPlan;

/// Build the standing 10-tenant overload: a fixed seeded arrival plan
/// (independent of the fault seed, so admission is replayable), four
/// real EM workloads over the shared scenario, five synthetic tasks,
/// and one crowd tenant whose labeling estimate blows its quota.
/// Concurrent demand (10 tenants inside a ~10-simulated-second window)
/// is well over 2× what the service can hold (3 active + 4 queued).
fn service_submissions<'a>(s: &'a EmScenario, n_workers: usize) -> Vec<TenantSubmission<'a>> {
    let plan = ArrivalPlan::poisson(99, 10, 1.0);
    (0..10u32)
        .map(|i| {
            let tenant = TenantSpec {
                name: format!("t{i}"),
                arrival_s: plan.arrival_s(i),
                priority: Priority::from_class(plan.priority_class(i, 3)),
                weight: plan.weight(i, 4),
                quota: if i == 5 {
                    // The crowd tenant: 250-question sample × 5 votes ×
                    // $0.02 = $25 estimated, capped at $10.
                    TenantQuota { label_dollars: 10.0, ..TenantQuota::unlimited() }
                } else {
                    TenantQuota::unlimited()
                },
                task_seed: 7000 + u64::from(i),
            };
            let workload = if i % 3 == 0 {
                // Real EM workloads (tenants 0, 3, 6, 9).
                Workload::Em(TaskSpec {
                    name: format!("t{i}"),
                    table_a: &s.table_a,
                    table_b: &s.table_b,
                    a_key: "id".into(),
                    b_key: "id".into(),
                    gold: &s.gold,
                    labeling: LabelingMode::SingleUser { error_rate: 0.0 },
                    on_cloud: true,
                    falcon: FalconConfig {
                        sample_size: 250,
                        blocking_al: magellan_falcon::ActiveLearnConfig {
                            n_workers,
                            ..Default::default()
                        },
                        matching_al: magellan_falcon::ActiveLearnConfig {
                            max_rounds: 15,
                            n_workers,
                            ..Default::default()
                        },
                        seed: 7000 + u64::from(i),
                        ..Default::default()
                    },
                })
            } else {
                Workload::Synthetic(SyntheticTask {
                    rows: (400, 400),
                    questions_blocking: 50,
                    questions_matching: 80,
                    n_candidates: 8_000,
                    crowd: i == 5,
                    on_cloud: i % 2 == 0,
                })
            };
            TenantSubmission { tenant, workload }
        })
        .collect()
}

fn service_config(faults: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        batch_slots: 2,
        crowd_slots: 1,
        max_active_tenants: 3,
        max_queue: 4,
        faults,
        ..Default::default()
    }
}

#[test]
fn multi_tenant_overload_is_deterministic_across_workers_and_fault_seeds() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(25);

    // Solo goldens: each tenant run alone (fault-free, one worker).
    // The contract: any accepted tenant's outcome in the overloaded,
    // fault-injected, N-worker service is byte-identical to this.
    let solo_cfg = ServiceConfig { faults: FaultPlan::none(), ..service_config(FaultPlan::none()) };
    let solo = MatchService::new(solo_cfg).expect("solo service");
    let goldens: Vec<_> = service_submissions(&s, 1)
        .into_iter()
        .map(|sub| {
            let sub = TenantSubmission {
                tenant: TenantSpec { arrival_s: 0.0, ..sub.tenant },
                workload: sub.workload,
            };
            let rep = solo.run(std::slice::from_ref(&sub)).expect("solo run");
            rep.tenants[0].outcome.clone()
        })
        .collect();

    let mut reference_rejections: Option<Vec<(usize, String)>> = None;
    let mut reference_export: Option<String> = None;
    for n_workers in [1usize, 2, 4, 8] {
        let subs = service_submissions(&s, n_workers);
        let svc = MatchService::new(service_config(FaultPlan::seeded(4242))).expect("service");

        // Pinned clock: the obs export depends only on the simulated
        // timeline, so it must be byte-identical across worker counts.
        let obs = magellan_obs::Obs::pinned();
        let report = {
            let _g = obs.install();
            svc.run(&subs).expect("overloaded service must complete")
        };

        // Admission/rejection decisions are a pure function of
        // (arrival plan, quotas, capacity) — workers irrelevant.
        let rejections = report.rejection_set();
        assert!(
            rejections.iter().any(|(i, r)| *i == 5 && r.contains("label_dollars")),
            "the over-quota crowd tenant must be rejected: {rejections:?}"
        );
        assert!(
            rejections.len() >= 3,
            "10 tenants into 3+4 capacity must shed load: {rejections:?}"
        );
        match &reference_rejections {
            None => reference_rejections = Some(rejections),
            Some(r) => assert_eq!(&rejections, r, "{n_workers} workers changed admission"),
        }

        // Accepted outcomes: byte-identical to the solo goldens.
        for (i, t) in report.accepted() {
            assert_eq!(
                t.outcome, goldens[i],
                "tenant {i} at {n_workers} workers must match its solo run bit for bit"
            );
        }
        assert_eq!(
            report.telemetry.arrived, 10,
            "every submission must be seen"
        );

        // Per-tenant SLO histograms and gauges: byte-identical export.
        let export: String = obs
            .snapshot()
            .to_prometheus()
            .lines()
            .filter(|l| l.contains("magellan_service_"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            export.contains("magellan_service_fragment_latency_ms_count{tenant=\"t0\"}")
                && export.contains("magellan_service_fragment_latency_p99_ms{tenant=\"t0\"}")
                && export.contains("magellan_service_slo_ok{tenant=\"t0\"}"),
            "per-tenant SLO histograms and gauges must be exported:\n{export}"
        );
        match &reference_export {
            None => reference_export = Some(export),
            Some(r) => assert_eq!(&export, r, "{n_workers} workers changed the pinned export"),
        }
    }

    // Fault seeds shuffle failures, stragglers, and no-shows — never
    // admission (single-user labeling keeps outcomes fault-free too).
    let golden_rejections = reference_rejections.expect("reference set");
    for seed in seeds().into_iter().take(4) {
        let subs = service_submissions(&s, 2);
        let svc = MatchService::new(service_config(FaultPlan::seeded(seed))).expect("service");
        let report = svc.run(&subs).expect("fault-injected service must complete");
        assert_eq!(
            report.rejection_set(),
            golden_rejections,
            "seed {seed}: rejection set must be seed-stable"
        );
        for (i, t) in report.accepted() {
            assert_eq!(t.outcome, goldens[i], "seed {seed}: tenant {i} outcome drifted");
        }
    }
}

#[test]
fn service_kill_and_resume_mid_queue_is_bit_identical() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(26);

    for seed in seeds().into_iter().take(3) {
        let plan = FaultPlan::seeded(seed);
        let golden = MatchService::new(service_config(plan))
            .expect("service")
            .run(&service_submissions(&s, 2))
            .expect("golden service run");

        // Kill after the second fresh workload run: later tenants are
        // still waiting in the admission queue at that point.
        let mut store = FlakyStore::new(MemStore::new(), plan);
        let killer = MatchService::new(ServiceConfig {
            kill_after_tenants: Some(2),
            ..service_config(plan)
        })
        .expect("service");
        let err = killer
            .run_with_checkpoint(&service_submissions(&s, 2), &mut store)
            .expect_err("kill hook must fire");
        let MagellanError::Killed { after_phase } = err else {
            panic!("seed {seed}: expected Killed, got {err}");
        };
        assert_eq!(after_phase, "service");

        // Resume against the flaky store: transparently retried I/O,
        // restored runs, and a report identical to the uninterrupted one.
        let resumed = MatchService::new(service_config(plan))
            .expect("service")
            .run_with_checkpoint(&service_submissions(&s, 2), &mut store)
            .unwrap_or_else(|e| panic!("seed {seed}: resume must complete: {e}"));
        assert_eq!(resumed.rejection_set(), golden.rejection_set(), "seed {seed}");
        assert_eq!(
            resumed.makespan_s.to_bits(),
            golden.makespan_s.to_bits(),
            "seed {seed}: resumed makespan must be bit-identical"
        );
        for (g, r) in golden.tenants.iter().zip(&resumed.tenants) {
            assert_eq!(g.outcome, r.outcome, "seed {seed}");
            assert_eq!(g.finish_s.to_bits(), r.finish_s.to_bits(), "seed {seed}");
            assert_eq!(g.frag_p99_ms, r.frag_p99_ms, "seed {seed}");
        }
        // At least one queued tenant proves the kill hit mid-queue.
        assert!(
            golden
                .tenants
                .iter()
                .any(|t| matches!(t.admission, Admission::AdmittedAfterQueue)),
            "seed {seed}: the overload must actually queue tenants"
        );
    }
}
