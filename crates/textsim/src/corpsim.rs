//! Corpus-based similarity: TF-IDF and soft TF-IDF.
//!
//! These measures need document-frequency statistics fitted over a corpus
//! of token bags (typically the concatenation of the attribute values of
//! both input tables), so they live behind a fitted [`TfIdfModel`].

use std::collections::HashMap;

/// Document-frequency model for TF-IDF-family measures.
#[derive(Debug, Clone, Default)]
pub struct TfIdfModel {
    doc_freq: HashMap<String, usize>,
    n_docs: usize,
}

impl TfIdfModel {
    /// Fit a model over a corpus of token bags.
    pub fn fit<S: AsRef<str>, D: AsRef<[S]>>(corpus: &[D]) -> Self {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            let mut seen: Vec<&str> = doc.as_ref().iter().map(|t| t.as_ref()).collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *doc_freq.entry(t.to_owned()).or_insert(0) += 1;
            }
        }
        TfIdfModel {
            doc_freq,
            n_docs: corpus.len(),
        }
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Smoothed inverse document frequency of a token. Unknown tokens get
    /// the maximum IDF (they appeared in zero documents).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        // add-one smoothing keeps idf finite for unseen tokens and > 0 for
        // tokens present in every document.
        ((1.0 + self.n_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    fn tfidf_vector<'a, S: AsRef<str>>(&self, tokens: &'a [S]) -> HashMap<&'a str, f64> {
        let mut tf: HashMap<&str, f64> = HashMap::with_capacity(tokens.len());
        for t in tokens {
            *tf.entry(t.as_ref()).or_insert(0.0) += 1.0;
        }
        for (t, w) in tf.iter_mut() {
            *w *= self.idf(t);
        }
        tf
    }

    /// TF-IDF cosine similarity between two token bags, in `[0, 1]`.
    pub fn tfidf<S: AsRef<str>>(&self, a: &[S], b: &[S]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let va = self.tfidf_vector(a);
        let vb = self.tfidf_vector(b);
        let (small, large) = if va.len() <= vb.len() { (&va, &vb) } else { (&vb, &va) };
        let dot: f64 = small
            .iter()
            .filter_map(|(t, w)| large.get(t).map(|w2| w * w2))
            .sum();
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// Soft TF-IDF (Cohen et al.): tokens need not match exactly — pairs
    /// with secondary similarity ≥ `threshold` contribute, weighted by that
    /// similarity. The secondary measure defaults to Jaro–Winkler in the
    /// literature; pass it explicitly here.
    pub fn soft_tfidf<S: AsRef<str>>(
        &self,
        a: &[S],
        b: &[S],
        threshold: f64,
        secondary: impl Fn(&str, &str) -> f64,
    ) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let va = self.tfidf_vector(a);
        let vb = self.tfidf_vector(b);
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (ta, wa) in &va {
            let mut best_sim = 0.0;
            let mut best_w = 0.0;
            for (tb, wb) in &vb {
                let s = secondary(ta, tb);
                if s >= threshold && s > best_sim {
                    best_sim = s;
                    best_w = *wb;
                }
            }
            if best_sim > 0.0 {
                total += (wa / na) * (best_w / nb) * best_sim;
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// Soft TF-IDF with the customary Jaro–Winkler secondary at 0.9.
    pub fn soft_tfidf_jw<S: AsRef<str>>(&self, a: &[S], b: &[S]) -> f64 {
        self.soft_tfidf(a, b, 0.9, crate::seqsim::jaro_winkler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn model() -> TfIdfModel {
        TfIdfModel::fit(&[
            toks("dave smith madison"),
            toks("dan smith middleton"),
            toks("joe wilson san jose"),
            toks("david smith madison"),
        ])
    }

    #[test]
    fn fit_counts_documents_not_occurrences() {
        let m = TfIdfModel::fit(&[toks("a a b"), toks("a c")]);
        assert_eq!(m.n_docs(), 2);
        assert_eq!(m.vocab_size(), 3);
        // "a" appears in both docs, so lower idf than "b".
        assert!(m.idf("a") < m.idf("b"));
        // Unseen token gets the highest idf of all.
        assert!(m.idf("zzz") > m.idf("b"));
    }

    #[test]
    fn tfidf_identical_bags_score_one() {
        let m = model();
        let a = toks("dave smith");
        assert!((m.tfidf(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tfidf_weights_rare_tokens_higher() {
        let m = model();
        // Sharing the rare token "madison" must beat sharing the common
        // token "smith", with the same number of shared/unshared tokens.
        let share_rare = m.tfidf(&toks("madison a"), &toks("madison b"));
        let share_common = m.tfidf(&toks("smith a"), &toks("smith b"));
        assert!(share_rare > share_common, "{share_rare} <= {share_common}");
    }

    #[test]
    fn tfidf_degenerate_inputs() {
        let m = model();
        assert_eq!(m.tfidf::<String>(&[], &[]), 1.0);
        assert_eq!(m.tfidf(&toks("x"), &[]), 0.0);
        assert_eq!(m.tfidf(&toks("dave"), &toks("wilson")), 0.0);
    }

    #[test]
    fn soft_tfidf_tolerates_typos() {
        let m = model();
        let clean = toks("dave smith");
        let typo = toks("dave smithh"); // jw(smith, smithh) ≈ 0.97 ≥ 0.9
        let hard = m.tfidf(&clean, &typo);
        let soft = m.soft_tfidf_jw(&clean, &typo);
        assert!(soft > hard, "soft {soft} should exceed hard {hard}");
        assert!(soft > 0.9);
    }

    #[test]
    fn soft_tfidf_threshold_excludes_dissimilar_tokens() {
        let m = model();
        let a = toks("alpha");
        let b = toks("omega");
        assert_eq!(m.soft_tfidf_jw(&a, &b), 0.0);
    }
}
