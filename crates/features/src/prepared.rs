//! The tokenize-once-per-record prepared layer for batch feature
//! extraction.
//!
//! The scalar path ([`crate::Feature::compute`]) re-normalizes and
//! re-tokenizes both attribute values for **every pair × every feature**.
//! But a feature set only ever needs each record's attribute in a handful
//! of distinct shapes — the feature set's distinct
//! `(attribute, normalization, tokenizer)` combinations — and each shape
//! needs computing **once per record**, not once per pair.
//!
//! [`PreparedPair`] is that cache. Given two tables and a feature list it
//! derives the distinct combinations ([`FeaturePlan`]), prepares exactly
//! the records the candidate pairs reference (lazily, so repeated
//! extractions over the same tables — e.g. Falcon's blocking-stage and
//! matching-stage matrices — reuse earlier work), and computes feature
//! rows from the prepared shapes:
//!
//! * trimmed + lowercased strings for the sequence measures;
//! * ordered token *bags* for Monge–Elkan;
//! * **sorted, deduplicated interned `u32` token sets** (one shared
//!   [`TokenInterner`] across both tables) for the set measures, which
//!   then run as allocation-free merge intersections
//!   ([`magellan_textsim::intern`]);
//! * parsed floats for the numeric measures.
//!
//! ## Bit-identity with the scalar path
//!
//! Every prepared shape is produced by the *same* normalization and
//! tokenizer calls the scalar path makes per pair, and the id kernels are
//! arithmetic-identical to the string measures (equal strings ⇔ equal
//! ids, so `|A|`, `|B|`, `|A ∩ B|` — the only inputs of any set measure —
//! are unchanged). `fvtable` pins this with a bitwise equivalence test,
//! and the golden e2e + chaos suites pin it end to end.

use std::collections::HashMap;

use magellan_par::{CacheStats, ParConfig, ParStats};
use magellan_table::{Table, Value};
use magellan_textsim::intern::{self, TokenInterner};
use magellan_textsim::tokenize::{AlphanumericTokenizer, Tokenizer};
use magellan_textsim::{numeric, seqsim, setsim};

use crate::feature::{Feature, FeatureKind, TokSpecF};
use crate::fvtable::FeatureMatrix;

/// The shape a feature needs an attribute value prepared into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PrepSpec {
    /// Trimmed, lowercased display string (sequence measures, exact match).
    LowerStr,
    /// Ordered lowercased alphanumeric token bag (Monge–Elkan).
    WordBag,
    /// Sorted deduplicated interned id set over word tokens.
    WordSet,
    /// Sorted deduplicated interned id set over padded q-grams.
    QgramSet(usize),
    /// Parsed float (numeric measures).
    Num,
}

impl PrepSpec {
    fn of(kind: FeatureKind) -> PrepSpec {
        match kind {
            FeatureKind::ExactMatch
            | FeatureKind::LevSim
            | FeatureKind::Jaro
            | FeatureKind::JaroWinkler => PrepSpec::LowerStr,
            FeatureKind::MongeElkanJw => PrepSpec::WordBag,
            FeatureKind::Jaccard(t)
            | FeatureKind::Cosine(t)
            | FeatureKind::Dice(t)
            | FeatureKind::OverlapCoeff(t) => match t {
                TokSpecF::Word => PrepSpec::WordSet,
                TokSpecF::Qgram(q) => PrepSpec::QgramSet(q),
            },
            FeatureKind::ExactNum | FeatureKind::AbsDiff | FeatureKind::RelDiff => PrepSpec::Num,
        }
    }

    /// Does preparing this shape invoke a tokenizer?
    fn tokenizes(&self) -> bool {
        matches!(
            self,
            PrepSpec::WordBag | PrepSpec::WordSet | PrepSpec::QgramSet(_)
        )
    }
}

/// One prepared cell: an attribute value in one shape.
#[derive(Debug, Clone)]
enum PrepValue {
    /// The value was null (every measure yields `NaN`).
    Null,
    /// Trimmed lowercased string.
    Str(String),
    /// Ordered token bag.
    Bag(Vec<String>),
    /// Sorted deduplicated interned token set.
    Set(Vec<u32>),
    /// Parsed float.
    Num(f64),
    /// Non-null but not parseable as a number (numeric measures → `NaN`).
    NotNum,
}

/// One `(column, shape)` combination's cells, lazily filled per record.
#[derive(Debug)]
struct PrepColumn {
    col: usize,
    spec: PrepSpec,
    /// `None` = not yet prepared; `Some(_)` = prepared exactly once.
    cells: Vec<Option<PrepValue>>,
}

/// All prepared combinations of one table.
#[derive(Debug, Default)]
struct PreparedSide {
    cols: Vec<PrepColumn>,
    index: HashMap<(usize, PrepSpec), usize>,
}

impl PreparedSide {
    fn slot(&mut self, col: usize, spec: PrepSpec, nrows: usize) -> usize {
        *self.index.entry((col, spec)).or_insert_with(|| {
            self.cols.push(PrepColumn {
                col,
                spec,
                cells: vec![None; nrows],
            });
            self.cols.len() - 1
        })
    }

    /// Grow every combination's cell vector to cover `nrows` records
    /// (appended records start unprepared).
    fn ensure_rows(&mut self, nrows: usize) {
        for c in &mut self.cols {
            if c.cells.len() < nrows {
                c.cells.resize(nrows, None);
            }
        }
    }

    /// Drop every prepared shape of one record — the per-record dirty
    /// granularity of the streaming tier. Returns the number of cells
    /// actually cleared (0 = the record was never prepared).
    fn invalidate(&mut self, rid: usize) -> usize {
        let mut cleared = 0;
        for c in &mut self.cols {
            if let Some(cell) = c.cells.get_mut(rid) {
                if cell.take().is_some() {
                    cleared += 1;
                }
            }
        }
        cleared
    }
}

/// Resolve a feature list against two schemas, registering slots — the
/// shared core of [`PreparedPair::plan`] and [`StreamingPreparedPair`].
fn plan_features(
    a: &Table,
    b: &Table,
    left: &mut PreparedSide,
    right: &mut PreparedSide,
    features: &[Feature],
) -> magellan_table::Result<FeaturePlan> {
    let mut entries = Vec::with_capacity(features.len());
    let mut n_token_features = 0;
    for f in features {
        let li = a.schema().try_index_of(&f.l_attr)?;
        let ri = b.schema().try_index_of(&f.r_attr)?;
        let spec = PrepSpec::of(f.kind);
        if spec.tokenizes() {
            n_token_features += 1;
        }
        entries.push(PlanEntry {
            kind: f.kind,
            l_slot: left.slot(li, spec, a.nrows()),
            r_slot: right.slot(ri, spec, b.nrows()),
        });
    }
    Ok(FeaturePlan {
        entries,
        names: features.iter().map(|f| f.name.clone()).collect(),
        n_token_features,
    })
}

/// Prepare every record the pairs reference for every slot the plan
/// reads — shared by the borrowing and owning caches.
#[allow(clippy::too_many_arguments)]
fn prepare_pairs_for(
    a: &Table,
    b: &Table,
    interner: &mut TokenInterner,
    left: &mut PreparedSide,
    right: &mut PreparedSide,
    stats: &mut CacheStats,
    plan: &FeaturePlan,
    pairs: &[(u32, u32)],
) {
    left.ensure_rows(a.nrows());
    right.ensure_rows(b.nrows());
    let mut l_ref = vec![false; a.nrows()];
    let mut r_ref = vec![false; b.nrows()];
    for &(ra, rb) in pairs {
        l_ref[ra as usize] = true;
        r_ref[rb as usize] = true;
    }
    // Distinct slots per side (several features can share one slot).
    let mut l_slots: Vec<usize> = plan.entries.iter().map(|e| e.l_slot).collect();
    l_slots.sort_unstable();
    l_slots.dedup();
    let mut r_slots: Vec<usize> = plan.entries.iter().map(|e| e.r_slot).collect();
    r_slots.sort_unstable();
    r_slots.dedup();

    for &s in &l_slots {
        prepare_column(&mut left.cols[s], a, &l_ref, interner, stats);
    }
    for &s in &r_slots {
        prepare_column(&mut right.cols[s], b, &r_ref, interner, stats);
    }
    stats.interner_tokens = interner.len();
}

/// Evaluate one planned feature row from prepared sides.
fn compute_row_from(
    left: &PreparedSide,
    right: &PreparedSide,
    plan: &FeaturePlan,
    ra: usize,
    rb: usize,
) -> Vec<f64> {
    let mut row = Vec::with_capacity(plan.entries.len());
    for e in &plan.entries {
        let va = left.cols[e.l_slot].cells[ra]
            .as_ref()
            .expect("left record prepared");
        let vb = right.cols[e.r_slot].cells[rb]
            .as_ref()
            .expect("right record prepared");
        row.push(compute_prepared(e.kind, va, vb));
    }
    row
}

/// A feature list resolved against a [`PreparedPair`]: per feature, the
/// computation kind plus the prepared-slot each side reads from.
#[derive(Debug, Clone)]
pub struct FeaturePlan {
    entries: Vec<PlanEntry>,
    names: Vec<String>,
    /// Features whose scalar evaluation tokenizes both sides.
    n_token_features: usize,
}

#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    kind: FeatureKind,
    l_slot: usize,
    r_slot: usize,
}

impl FeaturePlan {
    /// Number of planned features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no features are planned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tokenizer invocations the scalar path would spend on `n_pairs`
    /// pairs of this plan (two sides per token feature per pair).
    pub fn scalar_tokenize_calls(&self, n_pairs: usize) -> usize {
        2 * n_pairs * self.n_token_features
    }
}

/// The shared record-preparation cache over one `(A, B)` table pair.
///
/// Create once per workload, [`PreparedPair::plan`] each feature list
/// against it, and extract matrices with
/// [`crate::fvtable::extract_with_prepared`]. Preparation is lazy and
/// cumulative: combinations and records prepared for one plan are reused
/// by every later plan that shares them (see [`PreparedPair::cache_stats`]).
#[derive(Debug)]
pub struct PreparedPair<'t> {
    a: &'t Table,
    b: &'t Table,
    interner: TokenInterner,
    left: PreparedSide,
    right: PreparedSide,
    stats: CacheStats,
}

impl<'t> PreparedPair<'t> {
    /// Empty cache over a table pair — nothing is prepared until a plan
    /// asks for it.
    pub fn new(a: &'t Table, b: &'t Table) -> Self {
        PreparedPair {
            a,
            b,
            interner: TokenInterner::new(),
            left: PreparedSide::default(),
            right: PreparedSide::default(),
            stats: CacheStats::default(),
        }
    }

    /// Resolve a feature list into a plan, registering any new
    /// `(attribute, shape)` combinations. Errors on unknown attributes,
    /// exactly like the unprepared extractor.
    pub fn plan(&mut self, features: &[Feature]) -> magellan_table::Result<FeaturePlan> {
        plan_features(self.a, self.b, &mut self.left, &mut self.right, features)
    }

    /// Prepare every record the given pairs reference, for every slot the
    /// plan reads. Cells already prepared (by this or an earlier plan)
    /// are counted as cache hits and not recomputed.
    pub fn prepare_for_pairs(&mut self, plan: &FeaturePlan, pairs: &[(u32, u32)]) {
        let PreparedPair {
            a,
            b,
            interner,
            left,
            right,
            stats,
        } = self;
        prepare_pairs_for(a, b, interner, left, right, stats, plan, pairs);
    }

    /// Evaluate a planned feature row for one prepared pair.
    ///
    /// # Panics
    /// If the pair's records were not prepared for this plan (call
    /// [`PreparedPair::prepare_for_pairs`] first).
    pub fn compute_row(&self, plan: &FeaturePlan, ra: usize, rb: usize) -> Vec<f64> {
        compute_row_from(&self.left, &self.right, plan, ra, rb)
    }

    /// Cumulative cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Distinct tokens interned so far.
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// The tables this cache was built over.
    pub fn tables(&self) -> (&'t Table, &'t Table) {
        (self.a, self.b)
    }
}

/// The owning, mutable variant of [`PreparedPair`] for the streaming
/// tier: the store owns both tables, so records can be appended or
/// rewritten while the preparation caches live on — and an update dirties
/// **exactly that record's cells**, not the whole cache. Every other
/// record's prepared shapes survive the mutation, which is what makes the
/// incremental feature path O(dirty pairs) instead of O(all pairs).
///
/// The shared [`TokenInterner`] is append-only, so already-prepared id
/// sets stay valid as new records grow the vocabulary (same argument as
/// the incremental join's interner-order prefix index).
#[derive(Debug)]
pub struct StreamingPreparedPair {
    a: Table,
    b: Table,
    interner: TokenInterner,
    left: PreparedSide,
    right: PreparedSide,
    stats: CacheStats,
    cells_invalidated: u64,
}

impl StreamingPreparedPair {
    /// Take ownership of the two tables with nothing prepared yet.
    pub fn new(a: Table, b: Table) -> Self {
        StreamingPreparedPair {
            a,
            b,
            interner: TokenInterner::new(),
            left: PreparedSide::default(),
            right: PreparedSide::default(),
            stats: CacheStats::default(),
            cells_invalidated: 0,
        }
    }

    /// The current tables (read-only; mutate through the store so caches
    /// stay coherent).
    pub fn tables(&self) -> (&Table, &Table) {
        (&self.a, &self.b)
    }

    /// Append a record to the left (`left = true`) or right table and
    /// return its row id. New rows start unprepared — no invalidation
    /// needed.
    pub fn push_row(&mut self, left: bool, row: Vec<Value>) -> magellan_table::Result<usize> {
        let t = if left { &mut self.a } else { &mut self.b };
        t.push_row(row)?;
        Ok(t.nrows() - 1)
    }

    /// Overwrite one attribute of an existing record and invalidate that
    /// record's prepared cells (and only that record's).
    pub fn set_value(
        &mut self,
        left: bool,
        rid: usize,
        attr: &str,
        value: Value,
    ) -> magellan_table::Result<()> {
        let t = if left { &mut self.a } else { &mut self.b };
        t.set_value(rid, attr, value)?;
        self.invalidate_record(left, rid);
        Ok(())
    }

    /// Drop every prepared shape of one record, forcing re-preparation on
    /// next use. Returns the number of cells actually cleared.
    pub fn invalidate_record(&mut self, left: bool, rid: usize) -> usize {
        let side = if left { &mut self.left } else { &mut self.right };
        let cleared = side.invalidate(rid);
        self.cells_invalidated += cleared as u64;
        cleared
    }

    /// Total prepared cells cleared by per-record invalidation since
    /// construction (the streaming tier's "how little did we dirty"
    /// counter).
    pub fn cells_invalidated(&self) -> u64 {
        self.cells_invalidated
    }

    /// Cumulative cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Distinct tokens interned so far.
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// Extract a feature matrix for the given pairs, reusing every cell
    /// prepared by earlier batches that was not invalidated since.
    /// Bit-identical to a fresh [`extract_with_prepared`] over copies of
    /// the current tables, for any worker count.
    pub fn extract(
        &mut self,
        pairs: &[(u32, u32)],
        features: &[Feature],
        cfg: &ParConfig,
    ) -> magellan_table::Result<(FeatureMatrix, ParStats)> {
        let plan = plan_features(
            &self.a,
            &self.b,
            &mut self.left,
            &mut self.right,
            features,
        )?;
        let before = self.stats;
        {
            let StreamingPreparedPair {
                a,
                b,
                interner,
                left,
                right,
                stats,
                ..
            } = self;
            prepare_pairs_for(a, b, interner, left, right, stats, &plan, pairs);
        }
        let after = self.stats;
        let spent = after.tokenize_calls - before.tokenize_calls;
        let cache = CacheStats {
            records_prepared: after.records_prepared - before.records_prepared,
            tokenize_calls: spent,
            tokenize_calls_saved: plan.scalar_tokenize_calls(pairs.len()).saturating_sub(spent),
            lookups: after.lookups - before.lookups,
            hits: after.hits - before.hits,
            interner_tokens: after.interner_tokens,
        };
        self.stats.tokenize_calls_saved += cache.tokenize_calls_saved;

        let (left, right) = (&self.left, &self.right);
        let (rows, mut stats) = magellan_par::map_indexed(pairs.len(), cfg, |p| {
            let (ra, rb) = pairs[p];
            compute_row_from(left, right, &plan, ra as usize, rb as usize)
        });
        cache.publish();
        stats.cache = cache;
        Ok((
            FeatureMatrix {
                names: plan.names.clone(),
                rows,
                pairs: pairs.to_vec(),
            },
            stats,
        ))
    }
}

/// Fill one combination's cells for every referenced, still-unprepared
/// record.
fn prepare_column(
    column: &mut PrepColumn,
    table: &Table,
    referenced: &[bool],
    interner: &mut TokenInterner,
    stats: &mut CacheStats,
) {
    for (r, &wanted) in referenced.iter().enumerate() {
        if !wanted {
            continue;
        }
        stats.lookups += 1;
        if column.cells[r].is_some() {
            stats.hits += 1;
            continue;
        }
        let v = table.value(r, column.col);
        let cell = if v.is_null() {
            PrepValue::Null
        } else {
            match column.spec {
                PrepSpec::Num => v
                    .as_float()
                    .map(PrepValue::Num)
                    .unwrap_or(PrepValue::NotNum),
                PrepSpec::LowerStr => {
                    PrepValue::Str(v.display_string().trim().to_lowercase())
                }
                PrepSpec::WordBag => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    PrepValue::Bag(AlphanumericTokenizer::new().tokenize(&s))
                }
                PrepSpec::WordSet => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    let toks = AlphanumericTokenizer::as_set().tokenize(&s);
                    PrepValue::Set(interner.intern_set(&toks))
                }
                PrepSpec::QgramSet(q) => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    let toks =
                        magellan_textsim::tokenize::QgramTokenizer::as_set(q).tokenize(&s);
                    PrepValue::Set(interner.intern_set(&toks))
                }
            }
        };
        column.cells[r] = Some(cell);
        stats.records_prepared += 1;
    }
}

/// The prepared-shape evaluation of one feature kind — mirrors
/// [`crate::Feature::compute`] case for case so results are bit-identical.
fn compute_prepared(kind: FeatureKind, va: &PrepValue, vb: &PrepValue) -> f64 {
    if matches!(va, PrepValue::Null) || matches!(vb, PrepValue::Null) {
        return f64::NAN;
    }
    match kind {
        FeatureKind::ExactNum | FeatureKind::AbsDiff | FeatureKind::RelDiff => {
            let (PrepValue::Num(x), PrepValue::Num(y)) = (va, vb) else {
                return f64::NAN;
            };
            match kind {
                FeatureKind::ExactNum => numeric::exact_match_num(*x, *y),
                FeatureKind::AbsDiff => numeric::abs_diff_sim(*x, *y),
                FeatureKind::RelDiff => numeric::rel_diff_sim(*x, *y),
                _ => unreachable!(),
            }
        }
        FeatureKind::ExactMatch
        | FeatureKind::LevSim
        | FeatureKind::Jaro
        | FeatureKind::JaroWinkler => {
            let (PrepValue::Str(sa), PrepValue::Str(sb)) = (va, vb) else {
                debug_assert!(false, "string feature over non-string prep");
                return f64::NAN;
            };
            match kind {
                FeatureKind::ExactMatch => f64::from(sa == sb),
                FeatureKind::LevSim => seqsim::levenshtein_sim(sa, sb),
                FeatureKind::Jaro => seqsim::jaro(sa, sb),
                FeatureKind::JaroWinkler => seqsim::jaro_winkler(sa, sb),
                _ => unreachable!(),
            }
        }
        FeatureKind::MongeElkanJw => {
            let (PrepValue::Bag(ba), PrepValue::Bag(bb)) = (va, vb) else {
                debug_assert!(false, "monge-elkan over non-bag prep");
                return f64::NAN;
            };
            setsim::monge_elkan_jw(ba, bb)
        }
        FeatureKind::Jaccard(_)
        | FeatureKind::Cosine(_)
        | FeatureKind::Dice(_)
        | FeatureKind::OverlapCoeff(_) => {
            let (PrepValue::Set(ia), PrepValue::Set(ib)) = (va, vb) else {
                debug_assert!(false, "set feature over non-set prep");
                return f64::NAN;
            };
            // The scalar path returns NaN when either tokenization is
            // empty — preserved exactly.
            if ia.is_empty() || ib.is_empty() {
                return f64::NAN;
            }
            match kind {
                FeatureKind::Jaccard(_) => intern::jaccard_ids(ia, ib),
                FeatureKind::Cosine(_) => intern::cosine_ids(ia, ib),
                FeatureKind::Dice(_) => intern::dice_ids(ia, ib),
                FeatureKind::OverlapCoeff(_) => intern::overlap_coefficient_ids(ia, ib),
                _ => unreachable!(),
            }
        }
    }
}

/// Extract a feature matrix through a shared [`PreparedPair`] cache: plan
/// the features, prepare the referenced records once each, then evaluate
/// pair rows on the `magellan-par` pool (bit-identical to
/// [`crate::extract_feature_matrix`] for any worker count).
///
/// The returned [`ParStats`] carries this call's [`CacheStats`] delta —
/// records prepared, tokenize calls spent and saved versus the scalar
/// path, lookups/hits (hits = reuse of earlier preparation), and the
/// shared interner's vocabulary size.
pub fn extract_with_prepared(
    prepared: &mut PreparedPair<'_>,
    pairs: &[(u32, u32)],
    features: &[Feature],
    cfg: &ParConfig,
) -> magellan_table::Result<(FeatureMatrix, ParStats)> {
    let plan = prepared.plan(features)?;
    let before = prepared.cache_stats();
    prepared.prepare_for_pairs(&plan, pairs);
    let after = prepared.cache_stats();

    let spent = after.tokenize_calls - before.tokenize_calls;
    let cache = CacheStats {
        records_prepared: after.records_prepared - before.records_prepared,
        tokenize_calls: spent,
        tokenize_calls_saved: plan.scalar_tokenize_calls(pairs.len()).saturating_sub(spent),
        lookups: after.lookups - before.lookups,
        hits: after.hits - before.hits,
        interner_tokens: after.interner_tokens,
    };
    // Also fold the per-call savings into the cumulative counters so
    // `PreparedPair::cache_stats` reports workload totals.
    prepared.stats.tokenize_calls_saved += cache.tokenize_calls_saved;

    let shared: &PreparedPair<'_> = prepared;
    let (rows, mut stats) = magellan_par::map_indexed(pairs.len(), cfg, |p| {
        let (ra, rb) = pairs[p];
        shared.compute_row(&plan, ra as usize, rb as usize)
    });
    // Publish this call's cache delta as `magellan_features_cache_*`
    // registry metrics (no-op when observability is disabled); the struct
    // keeps riding along in `ParStats` for reports.
    cache.publish();
    stats.cache = cache;
    Ok((
        FeatureMatrix {
            names: plan.names.clone(),
            rows,
            pairs: pairs.to_vec(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureKind, TokSpecF};
    use crate::fvtable::extract_feature_matrix_scalar;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("city", Dtype::Str),
                ("age", Dtype::Int),
            ],
            vec![
                vec!["a0".into(), "Dave  Smith".into(), "Madison".into(), Value::Int(40)],
                vec!["a1".into(), Value::Null, "Chicago!!".into(), Value::Int(31)],
                vec!["a2".into(), "O'Brien, J.R.".into(), Value::Null, Value::Null],
                vec!["a3".into(), "!!!".into(), "  ".into(), Value::Int(7)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("city", Dtype::Str),
                ("age", Dtype::Int),
            ],
            vec![
                vec!["b0".into(), "dave smith".into(), "madison".into(), Value::Int(41)],
                vec!["b1".into(), "J R O Brien".into(), "chicago".into(), Value::Null],
            ],
        )
        .unwrap();
        (a, b)
    }

    fn all_kind_features() -> Vec<Feature> {
        vec![
            Feature::new("name", "name", FeatureKind::ExactMatch),
            Feature::new("name", "name", FeatureKind::LevSim),
            Feature::new("name", "name", FeatureKind::Jaro),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("name", "name", FeatureKind::MongeElkanJw),
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Cosine(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Dice(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::OverlapCoeff(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Qgram(3))),
            Feature::new("city", "city", FeatureKind::Cosine(TokSpecF::Qgram(2))),
            Feature::new("age", "age", FeatureKind::ExactNum),
            Feature::new("age", "age", FeatureKind::AbsDiff),
            Feature::new("age", "age", FeatureKind::RelDiff),
        ]
    }

    fn all_pairs(a: &Table, b: &Table) -> Vec<(u32, u32)> {
        (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect()
    }

    /// The prepared path is **bit-identical** to the scalar per-pair path
    /// for every feature kind, including nulls, empty tokenizations,
    /// non-numeric values, and duplicate tokens.
    #[test]
    fn prepared_rows_bit_identical_to_scalar() {
        let (a, b) = tables();
        let features = all_kind_features();
        let pairs = all_pairs(&a, &b);
        let scalar = extract_feature_matrix_scalar(&pairs, &a, &b, &features).unwrap();
        let mut prepared = PreparedPair::new(&a, &b);
        let (cached, stats) =
            extract_with_prepared(&mut prepared, &pairs, &features, &ParConfig::serial())
                .unwrap();
        assert_eq!(cached.names, scalar.names);
        assert_eq!(cached.pairs, scalar.pairs);
        for (i, (cr, sr)) in cached.rows.iter().zip(&scalar.rows).enumerate() {
            for (j, (cv, sv)) in cr.iter().zip(sr).enumerate() {
                assert_eq!(
                    cv.to_bits(),
                    sv.to_bits(),
                    "pair {i} feature {j} ({}) diverged: {cv} vs {sv}",
                    cached.names[j]
                );
            }
        }
        assert!(stats.cache.records_prepared > 0);
        assert!(stats.cache.tokenize_calls > 0);
        assert!(stats.cache.tokenize_calls_saved > 0);
        assert!(stats.cache.interner_tokens > 0);
    }

    /// Parallel prepared extraction is bit-identical to serial for any
    /// worker count (prepared data is immutable during the pair map).
    #[test]
    fn prepared_extraction_worker_count_invariant() {
        let (a, b) = tables();
        let features = all_kind_features();
        let pairs = all_pairs(&a, &b);
        let mut reference_prep = PreparedPair::new(&a, &b);
        let (reference, _) = extract_with_prepared(
            &mut reference_prep,
            &pairs,
            &features,
            &ParConfig::serial(),
        )
        .unwrap();
        for w in [2, 3, 8] {
            let mut prep = PreparedPair::new(&a, &b);
            let (m, _) =
                extract_with_prepared(&mut prep, &pairs, &features, &ParConfig::workers(w))
                    .unwrap();
            for (cr, sr) in m.rows.iter().zip(&reference.rows) {
                for (cv, sv) in cr.iter().zip(sr) {
                    assert_eq!(cv.to_bits(), sv.to_bits(), "{w} workers diverged");
                }
            }
        }
    }

    /// A second plan over the same cache reuses earlier preparation:
    /// shared (attribute, tokenizer) combinations report cache hits and
    /// spend no new tokenize calls for already-prepared records.
    #[test]
    fn cross_plan_reuse_hits_cache() {
        let (a, b) = tables();
        let pairs = all_pairs(&a, &b);
        let mut prepared = PreparedPair::new(&a, &b);
        let stage1 = vec![Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word))];
        let (_, s1) =
            extract_with_prepared(&mut prepared, &pairs, &stage1, &ParConfig::serial()).unwrap();
        assert_eq!(s1.cache.hits, 0);
        assert!(s1.cache.tokenize_calls > 0);

        // Stage 2 shares the word-set combination and adds a new one.
        let stage2 = vec![
            Feature::new("name", "name", FeatureKind::Cosine(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Dice(TokSpecF::Word)),
            Feature::new("city", "city", FeatureKind::Jaccard(TokSpecF::Word)),
        ];
        let (_, s2) =
            extract_with_prepared(&mut prepared, &pairs, &stage2, &ParConfig::serial()).unwrap();
        // name word-sets were already prepared: all those lookups hit.
        assert!(s2.cache.hits > 0, "no cross-plan reuse: {:?}", s2.cache);
        // Only the city column prepared anew: 4 A rows + 2 B rows, one of
        // which (a2's city) is Null and therefore prepared without
        // spending a tokenize call.
        assert_eq!(s2.cache.records_prepared, 6);
        assert_eq!(s2.cache.tokenize_calls, 5);
        let total = prepared.cache_stats();
        assert_eq!(total.lookups, s1.cache.lookups + s2.cache.lookups);
        assert!(total.hit_rate() > 0.0);
    }

    /// Per-record invalidation: updating one record through the streaming
    /// store re-prepares only that record, and the resulting rows are
    /// bit-identical to a cold extraction over the mutated tables.
    #[test]
    fn streaming_store_invalidates_per_record_not_globally() {
        let (a, b) = tables();
        let features = all_kind_features();
        let pairs = all_pairs(&a, &b);
        let mut store = StreamingPreparedPair::new(a.clone(), b.clone());
        let (_, s1) = store.extract(&pairs, &features, &ParConfig::serial()).unwrap();
        assert!(s1.cache.records_prepared > 0);

        // Rewrite one left record's name; only its cells go dirty.
        store
            .set_value(true, 0, "name", Value::Str("David Smith Jr".into()))
            .unwrap();
        assert!(store.cells_invalidated() > 0);
        let (m2, s2) = store.extract(&pairs, &features, &ParConfig::serial()).unwrap();
        // Exactly the dirty record re-prepared: its (col, shape) cells for
        // the name column, nothing from rows 1..3 or the right table.
        let name_shapes = 6; // LowerStr, WordBag, WordSet, QgramSet(3) on name + none elsewhere
        assert!(
            s2.cache.records_prepared <= name_shapes,
            "re-prepared {} cells, expected at most the dirty record's shapes",
            s2.cache.records_prepared
        );
        assert!(s2.cache.hits > 0, "clean records must hit the cache");

        // Bit-identity with a cold extraction over the mutated tables.
        let mut a2 = a.clone();
        a2.set_value(0, "name", Value::Str("David Smith Jr".into())).unwrap();
        let cold = extract_feature_matrix_scalar(&pairs, &a2, &b, &features).unwrap();
        for (cr, sr) in m2.rows.iter().zip(&cold.rows) {
            for (cv, sv) in cr.iter().zip(sr) {
                assert_eq!(cv.to_bits(), sv.to_bits(), "streaming extract diverged");
            }
        }
    }

    /// Appended records extend the caches without touching prepared cells,
    /// and extraction over pairs referencing them matches a cold run.
    #[test]
    fn streaming_store_grows_with_pushed_rows() {
        let (a, b) = tables();
        let features = vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
        ];
        let pairs = all_pairs(&a, &b);
        let mut store = StreamingPreparedPair::new(a.clone(), b.clone());
        store.extract(&pairs, &features, &ParConfig::serial()).unwrap();

        let rid = store
            .push_row(
                false,
                vec!["b2".into(), "dave smith jr".into(), "madison wi".into(), Value::Int(40)],
            )
            .unwrap();
        assert_eq!(rid, b.nrows());
        assert_eq!(store.cells_invalidated(), 0, "appends dirty nothing");

        let mut pairs2 = pairs.clone();
        pairs2.extend((0..a.nrows() as u32).map(|ra| (ra, rid as u32)));
        let (m, s) = store.extract(&pairs2, &features, &ParConfig::workers(4)).unwrap();
        assert!(s.cache.hits > 0);

        let mut b2 = b.clone();
        b2.push_row(vec![
            "b2".into(),
            "dave smith jr".into(),
            "madison wi".into(),
            Value::Int(40),
        ])
        .unwrap();
        let cold = extract_feature_matrix_scalar(&pairs2, &a, &b2, &features).unwrap();
        for (cr, sr) in m.rows.iter().zip(&cold.rows) {
            for (cv, sv) in cr.iter().zip(sr) {
                assert_eq!(cv.to_bits(), sv.to_bits(), "grown extract diverged");
            }
        }
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (a, b) = tables();
        let mut prepared = PreparedPair::new(&a, &b);
        let bad = vec![Feature::new("nope", "name", FeatureKind::ExactMatch)];
        assert!(prepared.plan(&bad).is_err());
        let (aa, bb) = prepared.tables();
        assert_eq!(aa.nrows(), a.nrows());
        assert_eq!(bb.nrows(), b.nrows());
    }

    #[test]
    fn empty_pairs_prepare_nothing() {
        let (a, b) = tables();
        let mut prepared = PreparedPair::new(&a, &b);
        let features = vec![Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word))];
        let (m, stats) =
            extract_with_prepared(&mut prepared, &[], &features, &ParConfig::serial()).unwrap();
        assert!(m.is_empty());
        assert_eq!(stats.cache.records_prepared, 0);
        assert_eq!(stats.cache.tokenize_calls, 0);
        assert_eq!(prepared.interner_len(), 0);
    }
}
