//! Forest-inference experiment: rows/sec of the flattened SoA forest
//! ([`magellan_ml::FlatForest`], contiguous `(feat, thresh, left)` arrays
//! with branchless traversal) vs the preserved pointer-chasing scalar
//! batch path, at 1/2/4/8 workers.
//!
//! Writes `results/exp_forest_inference.txt` (human-readable table) and
//! `BENCH_forest_inference.json` at the repo root (the ISSUE's
//! before/after record; "before" = `forest::predict_proba_batch`,
//! byte-for-byte the PR 1 arena walk, still compiled in as the oracle).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_ml::dataset::Dataset;
use magellan_ml::forest::{predict_proba_batch as scalar_batch, RandomForestLearner};
use magellan_ml::FlatForest;
use magellan_par::ParConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Messy EM-flavored feature rows: separable structure on the first two
/// dimensions, noise elsewhere, and NaNs for missing similarities.
fn rows(seed: u64, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| {
                    if rng.gen_bool(0.08) {
                        f64::NAN
                    } else {
                        rng.gen_range(-1.5..1.5)
                    }
                })
                .collect()
        })
        .collect()
}

fn training_data(seed: u64, n: usize, dims: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::with_dims(dims);
    for _ in 0..n {
        let pos: bool = rng.gen_bool(0.5);
        let c = if pos { 0.7 } else { -0.7 };
        let row: Vec<f64> = (0..dims)
            .map(|j| {
                if rng.gen_bool(0.05) {
                    f64::NAN
                } else if j < 2 {
                    c + rng.gen_range(-1.0..1.0)
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        d.push(&row, pos);
    }
    d
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (n_rows, n_train, n_trees, reps) =
        if smoke { (2_000, 300, 15, 2) } else { (40_000, 800, 31, 5) };
    let dims = 8;

    let forest = RandomForestLearner {
        n_trees,
        seed: 42,
        ..Default::default()
    }
    .fit_forest(&training_data(42, n_train, dims));
    let t_flatten = Instant::now();
    let flat = FlatForest::from_forest(&forest);
    let flatten_secs = t_flatten.elapsed().as_secs_f64();
    let batch = rows(4242, n_rows, dims);

    // Bit-identity check before timing anything.
    let reference = scalar_batch(&forest, &batch, &ParConfig::serial());
    for w in WORKERS {
        let got = flat.predict_proba_batch(&batch, &ParConfig::workers(w));
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.to_bits(), r.to_bits(), "flat forest diverged (w={w})");
        }
    }

    let mut txt = String::new();
    writeln!(
        txt,
        "Forest inference — flattened SoA (branchless traversal) vs preserved arena walk"
    )
    .unwrap();
    writeln!(
        txt,
        "{} trees, {} nodes, {dims} dims, {n_rows} rows, reps = {reps}, smoke = {smoke}",
        flat.n_trees(),
        flat.n_nodes()
    )
    .unwrap();
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    writeln!(txt, "host exposes {cores} core(s); the w>1 rows measure threading overhead on a 1-core host").unwrap();
    writeln!(txt, "one-time flatten cost: {:.3} ms", flatten_secs * 1e3).unwrap();
    writeln!(txt).unwrap();
    writeln!(
        txt,
        "{:>3}  {:>15}  {:>15}  {:>8}",
        "w", "arena rows/s", "flat rows/s", "speedup"
    )
    .unwrap();

    let mut json_rows = String::new();
    let mut speedup_w1 = 0.0;
    for w in WORKERS {
        let cfg = ParConfig::workers(w);
        let t_arena = median_secs(reps, || {
            std::hint::black_box(scalar_batch(&forest, &batch, &cfg));
        });
        let t_flat = median_secs(reps, || {
            std::hint::black_box(flat.predict_proba_batch(&batch, &cfg));
        });
        let (rs_arena, rs_flat) = (n_rows as f64 / t_arena, n_rows as f64 / t_flat);
        let speedup = t_arena / t_flat;
        if w == 1 {
            speedup_w1 = speedup;
        }
        writeln!(txt, "{w:>3}  {rs_arena:>15.0}  {rs_flat:>15.0}  {speedup:>7.2}x").unwrap();
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        write!(
            json_rows,
            "    {{\"workers\": {w}, \"arena_rows_per_sec\": {rs_arena:.0}, \"flat_rows_per_sec\": {rs_flat:.0}, \"speedup\": {speedup:.2}}}"
        )
        .unwrap();
    }
    writeln!(txt).unwrap();
    writeln!(txt, "speedup at 1 worker: {speedup_w1:.2}x").unwrap();
    magellan_obs::log!(info, "{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"forest_inference\",\n  \"workload\": {{\"n_trees\": {}, \"n_nodes\": {}, \"dims\": {dims}, \"n_rows\": {n_rows}, \"reps\": {reps}, \"smoke\": {smoke}}},\n  \"flatten_ms\": {:.3},\n  \"speedup_w1\": {speedup_w1:.2},\n  \"results\": [\n{json_rows}\n  ]\n}}\n",
        flat.n_trees(),
        flat.n_nodes(),
        flatten_secs * 1e3,
    );

    // Best-effort writes (CI smoke may run from a read-only checkout).
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_forest_inference.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_forest_inference.json", &json);
    }
}
