//! The incremental tier: delta-maintained sim-join with O(delta) updates.
//!
//! The batch engine ([`crate::join`]) re-tokenizes, re-indexes, and
//! re-probes the whole corpus on every run — O(corpus) per update, the
//! exact cost the paper's "EM in the cloud, continuously, over evolving
//! data" agenda calls out. This module maintains the join **under
//! mutation**: records are inserted, deleted, and updated in batches, and
//! each batch emits *signed pair deltas* ([`PairDelta::Added`] /
//! [`PairDelta::Removed`]) against a standing index, in time proportional
//! to the batch, not the corpus.
//!
//! ## Index structure
//!
//! Each side keeps a two-level index:
//!
//! * a **standing CSR prefix index** ([`PrefixIndex`]) packed at the last
//!   compaction, with a per-record staleness bitmap — a delete or update
//!   *tombstones* the record's CSR postings in place (they are skipped at
//!   probe time, never eagerly unlinked);
//! * a **tail overlay** (token → postings map) holding records inserted or
//!   re-written since the compaction. Tail postings carry the record's
//!   *mutation generation*; a posting whose generation lags the record's
//!   current one is a tombstone too.
//!
//! When the tombstoned fraction of all postings crosses the compaction
//! threshold (or the tail outgrows the CSR), the index is **re-packed**:
//! one CSR build over the live records, tail cleared, staleness reset,
//! and the side's *index generation* bumped. Compaction never changes any
//! emitted pair — it is a pure layout event (asserted in tests) — so the
//! threshold is a performance knob, not a correctness knob.
//!
//! ## Token order and determinism
//!
//! The batch engine orders tokens rarest-first, but the prefix-filter
//! lemma needs only *some* total order shared by both sides — prefix
//! lengths depend on set size and threshold alone. The incremental tier
//! therefore orders tokens by **append-only interner id**, which is
//! stable under vocabulary growth: new tokens get fresh ids and no
//! existing record's sorted id set ever changes under it. Every measure's
//! similarity is a pure symmetric function of `(|x|, |y|, |x ∩ y|)`, and
//! verification computes the exact overlap, so the live view is
//! **bit-identical** — same pair set, same `f64` bits — to a from-scratch
//! [`crate::join::set_sim_join`] over the surviving records, after any
//! batch, at any worker count, regardless of compaction timing.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use magellan_par::{chunk_map, JoinStats, ParConfig};
use magellan_textsim::intern::TokenInterner;
use magellan_textsim::tokenize::Tokenizer;

use crate::index::PrefixIndex;
use crate::join::{set_sim_join, JoinPair, SetSimMeasure};
use crate::verify::{overlap_sorted_bounded_with, verify_kernel};

/// Which collection a mutation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left collection.
    Left,
    /// The right collection.
    Right,
}

/// One record-level mutation. Record ids are assigned densely per side in
/// insertion order and are **never reused**: a delete tombstones the id, an
/// update re-writes it in place.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordMutation {
    /// Append a record (gets the next rid on its side). `None` behaves
    /// like a null attribute: it never matches anything.
    Insert {
        /// Target collection.
        side: Side,
        /// Record text (`None` = null).
        text: Option<String>,
    },
    /// Tombstone an existing record.
    Delete {
        /// Target collection.
        side: Side,
        /// Record id on that side.
        rid: usize,
    },
    /// Re-write an existing record in place (same rid, new content).
    Update {
        /// Target collection.
        side: Side,
        /// Record id on that side.
        rid: usize,
        /// Replacement text (`None` = null).
        text: Option<String>,
    },
}

/// A signed pair delta: the live matched view after a batch is exactly
/// the previous view minus `Removed` plus `Added`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairDelta {
    /// The pair now qualifies (with its exact similarity).
    Added(JoinPair),
    /// The pair no longer exists (one endpoint was deleted or re-written;
    /// a re-write that still qualifies re-appears as a fresh `Added`).
    Removed {
        /// Left record id.
        l: usize,
        /// Right record id.
        r: usize,
    },
}

/// One tail-overlay posting: like [`crate::index::Posting`] plus the
/// record generation it was packed under (stale ⇔ generation lags).
#[derive(Debug, Clone, Copy)]
struct TailPosting {
    rid: u32,
    size: u32,
    gen: u32,
}

/// Mutable record store for one side.
#[derive(Debug, Default)]
struct SideState {
    /// Live text per rid (`None` = null or tombstoned).
    texts: Vec<Option<String>>,
    /// Sorted deduplicated interner-id set per rid (empty ⇔ never
    /// matches; deletes clear it).
    tokens: Vec<Vec<u32>>,
    /// Mutation generation per rid: bumped on every delete/update, pinned
    /// into tail postings so stale ones are skipped without unlinking.
    gens: Vec<u32>,
    /// Alive flag per rid (`false` = tombstoned by a delete).
    alive: Vec<bool>,
}

impl SideState {
    fn n_alive(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }
}

/// The two-level standing index for one side.
#[derive(Debug, Default)]
struct SideIndex {
    /// CSR prefix index packed at the last compaction.
    csr: PrefixIndex,
    /// Number of rids the CSR covers (rids ≥ this live only in the tail).
    csr_len: usize,
    /// Per-CSR-rid staleness: `true` ⇔ deleted or re-written since the
    /// pack, so every CSR posting of that rid is a tombstone.
    csr_stale: Vec<bool>,
    /// Tombstoned postings still packed in the CSR.
    dead_csr_postings: usize,
    /// Tombstoned postings still held in the tail overlay.
    dead_tail_postings: usize,
    /// Tail overlay: token id → postings added since the compaction.
    tail: HashMap<u32, Vec<TailPosting>>,
    /// Total tail postings (live + tombstoned).
    n_tail_postings: usize,
    /// Index generation: bumped once per compaction.
    generation: u64,
}

impl SideIndex {
    /// Tombstoned fraction of all postings (CSR + tail).
    fn dead_fraction(&self) -> f64 {
        let total = self.csr.n_postings() + self.n_tail_postings;
        if total == 0 {
            0.0
        } else {
            (self.dead_csr_postings + self.dead_tail_postings) as f64 / total as f64
        }
    }

    /// Re-pack: one CSR build over the live records, tail cleared,
    /// staleness reset, generation bumped. Pure layout — no probe output
    /// changes across a compaction.
    fn compact(&mut self, state: &SideState, measure: SetSimMeasure) {
        self.csr = PrefixIndex::build(&state.tokens, |s| measure.prefix_len(s));
        self.csr_len = state.tokens.len();
        self.csr_stale = vec![false; self.csr_len];
        self.dead_csr_postings = 0;
        self.dead_tail_postings = 0;
        self.tail.clear();
        self.n_tail_postings = 0;
        self.generation += 1;
    }

    /// Add the current version of `rid` to the tail overlay.
    fn push_tail(&mut self, rid: usize, state: &SideState, measure: SetSimMeasure) {
        let set = &state.tokens[rid];
        let plen = measure.prefix_len(set.len()).min(set.len());
        for &tok in &set[..plen] {
            self.tail.entry(tok).or_default().push(TailPosting {
                rid: rid as u32,
                size: set.len() as u32,
                gen: state.gens[rid],
            });
        }
        self.n_tail_postings += plen;
    }
}

/// Per-probe candidate-dedup scratch (stamp-validated, reused per chunk).
struct DeltaScratch {
    /// `seen[rid] == stamp` ⇔ rid already collected for this probe.
    seen: Vec<u32>,
    /// Candidates in first-touch order.
    cand: Vec<u32>,
}

impl DeltaScratch {
    fn new(n: usize) -> Self {
        DeltaScratch {
            seen: vec![u32::MAX; n],
            cand: Vec::new(),
        }
    }
}

/// Default tombstoned-postings fraction that triggers a compaction.
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.25;

/// Tail postings below this never trigger the tail-outgrew-CSR repack.
const TAIL_COMPACT_FLOOR: usize = 64;

/// A delta-maintained set-similarity join over two evolving collections.
///
/// Apply [`RecordMutation`] batches with [`IncrementalJoin::apply_batch`];
/// each returns the signed [`PairDelta`]s and delta-phase [`JoinStats`].
/// The maintained view ([`IncrementalJoin::live_pairs`]) is bit-identical
/// to a from-scratch batch join over the surviving records
/// ([`IncrementalJoin::rebuild_from_scratch`]) after every batch.
///
/// ```
/// use magellan_simjoin::incremental::{IncrementalJoin, RecordMutation, Side};
/// use magellan_simjoin::SetSimMeasure;
/// use magellan_par::ParConfig;
/// use magellan_textsim::tokenize::WhitespaceTokenizer;
///
/// let tok = WhitespaceTokenizer::new();
/// let mut join = IncrementalJoin::new(SetSimMeasure::Jaccard(0.5));
/// let (deltas, _) = join.apply_batch(
///     &[
///         RecordMutation::Insert { side: Side::Left, text: Some("dave smith".into()) },
///         RecordMutation::Insert { side: Side::Right, text: Some("dave smith".into()) },
///     ],
///     &tok,
///     &ParConfig::serial(),
/// );
/// assert_eq!(deltas.len(), 1);
/// assert_eq!(join.live_pairs(), join.rebuild_from_scratch(&tok));
/// ```
pub struct IncrementalJoin {
    measure: SetSimMeasure,
    interner: TokenInterner,
    left: SideState,
    right: SideState,
    /// Standing index over the **left** records (probed by new/changed
    /// right records).
    left_index: SideIndex,
    /// Standing index over the **right** records (probed by new/changed
    /// left records).
    right_index: SideIndex,
    /// The live qualifying-pair view: `(l, r) → exact similarity`.
    live: BTreeMap<(usize, usize), f64>,
    /// Adjacency: left rid → right partners (for O(pairs-of-record)
    /// removal, the "restrict work to affected neighborhoods" shape).
    by_left: HashMap<usize, BTreeSet<usize>>,
    /// Adjacency: right rid → left partners.
    by_right: HashMap<usize, BTreeSet<usize>>,
    compaction_threshold: f64,
    /// Wall-clock pause of every compaction so far (bench: pause p99).
    compaction_pauses: Vec<Duration>,
}

impl IncrementalJoin {
    /// Empty engine for a measure, with the default compaction threshold.
    pub fn new(measure: SetSimMeasure) -> Self {
        measure.validate();
        IncrementalJoin {
            measure,
            interner: TokenInterner::new(),
            left: SideState::default(),
            right: SideState::default(),
            left_index: SideIndex::default(),
            right_index: SideIndex::default(),
            live: BTreeMap::new(),
            by_left: HashMap::new(),
            by_right: HashMap::new(),
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            compaction_pauses: Vec::new(),
        }
    }

    /// Override the tombstoned-postings fraction that triggers compaction
    /// (a pure performance knob — the view is compaction-invariant).
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "compaction threshold must be positive");
        self.compaction_threshold = threshold;
        self
    }

    /// The engine's measure.
    pub fn measure(&self) -> SetSimMeasure {
        self.measure
    }

    /// Record texts of a side, tombstones as `None`, rid-addressed.
    pub fn texts(&self, side: Side) -> &[Option<String>] {
        match side {
            Side::Left => &self.left.texts,
            Side::Right => &self.right.texts,
        }
    }

    /// Records ever inserted on a side (tombstones included — rids are
    /// never reused).
    pub fn n_records(&self, side: Side) -> usize {
        match side {
            Side::Left => self.left.texts.len(),
            Side::Right => self.right.texts.len(),
        }
    }

    /// Live (non-tombstoned) records on a side.
    pub fn n_alive(&self, side: Side) -> usize {
        match side {
            Side::Left => self.left.n_alive(),
            Side::Right => self.right.n_alive(),
        }
    }

    /// Index generation of a side: bumped once per compaction.
    pub fn index_generation(&self, side: Side) -> u64 {
        match side {
            Side::Left => self.left_index.generation,
            Side::Right => self.right_index.generation,
        }
    }

    /// Vocabulary generation of the shared interner.
    pub fn vocab_generation(&self) -> u64 {
        self.interner.generation()
    }

    /// The live view as `(l, r)`-sorted pairs — the same shape (and, by
    /// the determinism contract, the same bits) as the batch join.
    pub fn live_pairs(&self) -> Vec<JoinPair> {
        self.live
            .iter()
            .map(|(&(l, r), &sim)| JoinPair { l, r, sim })
            .collect()
    }

    /// Number of live qualifying pairs.
    pub fn n_live_pairs(&self) -> usize {
        self.live.len()
    }

    /// Wall-clock pauses of all compactions so far, in event order.
    pub fn compaction_pauses(&self) -> &[Duration] {
        &self.compaction_pauses
    }

    /// From-scratch oracle: a full batch join over the current record
    /// texts. O(corpus) — exists to *prove* the delta path right (and to
    /// measure what it saves), not to serve queries.
    pub fn rebuild_from_scratch(&self, tokenizer: &dyn Tokenizer) -> Vec<JoinPair> {
        set_sim_join(&self.left.texts, &self.right.texts, tokenizer, self.measure)
    }

    /// Restore an engine from checkpointed state: record texts, the live
    /// view (exact `f64` bits), and the per-side index generations. The
    /// indexes are re-packed from the records (layout is not part of the
    /// contract); the generations are pinned to the stored values.
    pub fn restore(
        measure: SetSimMeasure,
        tokenizer: &dyn Tokenizer,
        left_texts: Vec<Option<String>>,
        right_texts: Vec<Option<String>>,
        live: Vec<JoinPair>,
        left_generation: u64,
        right_generation: u64,
    ) -> Self {
        let mut eng = IncrementalJoin::new(measure);
        eng.left = Self::restore_side(&mut eng.interner, tokenizer, left_texts);
        eng.right = Self::restore_side(&mut eng.interner, tokenizer, right_texts);
        eng.left_index.compact(&eng.left, measure);
        eng.right_index.compact(&eng.right, measure);
        eng.left_index.generation = left_generation;
        eng.right_index.generation = right_generation;
        for p in live {
            eng.live.insert((p.l, p.r), p.sim);
            eng.by_left.entry(p.l).or_default().insert(p.r);
            eng.by_right.entry(p.r).or_default().insert(p.l);
        }
        eng
    }

    fn restore_side(
        interner: &mut TokenInterner,
        tokenizer: &dyn Tokenizer,
        texts: Vec<Option<String>>,
    ) -> SideState {
        let mut state = SideState::default();
        for text in texts {
            let (tokens, alive) = match &text {
                Some(t) => (interner.intern_set(&tokenizer.tokenize(t)), true),
                None => (Vec::new(), false),
            };
            state.tokens.push(tokens);
            state.gens.push(0);
            state.alive.push(alive);
            state.texts.push(text);
        }
        state
    }

    /// Apply one mutation batch and return the signed pair deltas
    /// (`Removed` first, then `Added`, each `(l, r)`-sorted) plus the
    /// delta-phase counters. Work is O(batch × affected neighborhoods):
    /// only new/changed records are probed — in **both directions**, since
    /// the standing side's index answers "which standing records pair
    /// with this new one" and the probe covers "which new records pair
    /// with each other" by construction.
    pub fn apply_batch(
        &mut self,
        batch: &[RecordMutation],
        tokenizer: &dyn Tokenizer,
        cfg: &ParConfig,
    ) -> (Vec<PairDelta>, JoinStats) {
        let mut stats = JoinStats::default();

        // Phase 1: apply the record mutations, tombstoning superseded
        // postings and pushing the new versions into the tail overlays.
        let mut touched_left: BTreeSet<usize> = BTreeSet::new();
        let mut touched_right: BTreeSet<usize> = BTreeSet::new();
        for op in batch {
            let (side, rid, text, is_insert) = match op {
                RecordMutation::Insert { side, text } => (*side, usize::MAX, text.clone(), true),
                RecordMutation::Delete { side, rid } => (*side, *rid, None, false),
                RecordMutation::Update { side, rid, text } => (*side, *rid, text.clone(), false),
            };
            let alive = !matches!(op, RecordMutation::Delete { .. }) && text.is_some();
            let tokens = match &text {
                Some(t) => self.interner.intern_set(&tokenizer.tokenize(t)),
                None => Vec::new(),
            };
            let (state, index, touched) = match side {
                Side::Left => (&mut self.left, &mut self.left_index, &mut touched_left),
                Side::Right => (&mut self.right, &mut self.right_index, &mut touched_right),
            };
            let rid = if is_insert {
                state.texts.push(None);
                state.tokens.push(Vec::new());
                state.gens.push(0);
                state.alive.push(false);
                state.texts.len() - 1
            } else {
                assert!(rid < state.texts.len(), "mutation of unknown rid {rid}");
                rid
            };
            // Tombstone the superseded version's postings in place.
            if rid < index.csr_len && !index.csr_stale[rid] {
                index.csr_stale[rid] = true;
                index.dead_csr_postings += index.csr.prefix_len(rid);
            } else if !is_insert {
                // The superseded version (possibly an earlier op of this
                // very batch) lives in the tail; its postings go stale via
                // the generation bump below.
                let old = &state.tokens[rid];
                let old_plen = self.measure.prefix_len(old.len()).min(old.len());
                index.dead_tail_postings += old_plen;
            }
            state.texts[rid] = text;
            state.tokens[rid] = tokens;
            state.gens[rid] = state.gens[rid].wrapping_add(1);
            state.alive[rid] = alive;
            if !state.tokens[rid].is_empty() {
                index.push_tail(rid, state, self.measure);
            }
            touched.insert(rid);
        }

        // Phase 2: `Removed` deltas — every pre-batch live pair touching
        // a mutated record, straight off the adjacency (no index scan).
        let mut removed: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &l in &touched_left {
            if let Some(rs) = self.by_left.get(&l) {
                removed.extend(rs.iter().map(|&r| (l, r)));
            }
        }
        for &r in &touched_right {
            if let Some(ls) = self.by_right.get(&r) {
                removed.extend(ls.iter().map(|&l| (l, r)));
            }
        }
        for &(l, r) in &removed {
            self.live.remove(&(l, r));
            if let Some(s) = self.by_left.get_mut(&l) {
                s.remove(&r);
            }
            if let Some(s) = self.by_right.get_mut(&r) {
                s.remove(&l);
            }
        }

        // Phase 3: `Added` deltas — probe the surviving touched records
        // against the opposing standing index (CSR + tail). Touched-right
        // probes skip touched-left partners: the touched-left probes
        // already see them through the tail, so each new×new pair is
        // emitted exactly once.
        let probe_left: Vec<usize> = touched_left
            .iter()
            .copied()
            .filter(|&rid| !self.left.tokens[rid].is_empty())
            .collect();
        let probe_right: Vec<usize> = touched_right
            .iter()
            .copied()
            .filter(|&rid| !self.right.tokens[rid].is_empty())
            .collect();
        let mut touched_left_flag = vec![false; self.left.tokens.len()];
        for &rid in &touched_left {
            touched_left_flag[rid] = true;
        }

        let measure = self.measure;
        let mut added = probe_batch(
            &probe_left,
            true,
            &self.left,
            &self.right,
            &self.right_index,
            measure,
            None,
            cfg,
            &mut stats,
        );
        added.extend(probe_batch(
            &probe_right,
            false,
            &self.right,
            &self.left,
            &self.left_index,
            measure,
            Some(&touched_left_flag),
            cfg,
            &mut stats,
        ));
        added.sort_unstable_by_key(|p| (p.l, p.r));

        for p in &added {
            self.live.insert((p.l, p.r), p.sim);
            self.by_left.entry(p.l).or_default().insert(p.r);
            self.by_right.entry(p.r).or_default().insert(p.l);
        }

        // Phase 4: compaction check. Compaction is a pure layout event —
        // it happens after the deltas are computed and changes nothing
        // observable except generation counters and probe cost.
        for (side, (state, index)) in [
            (&self.left, &mut self.left_index),
            (&self.right, &mut self.right_index),
        ]
        .into_iter()
        .enumerate()
        {
            let tail_outgrew =
                index.n_tail_postings > TAIL_COMPACT_FLOOR && index.n_tail_postings > index.csr.n_postings();
            if index.dead_fraction() > self.compaction_threshold || tail_outgrew {
                let span = magellan_obs::span("compaction", side as u64);
                let t0 = Instant::now();
                index.compact(state, measure);
                let pause = t0.elapsed();
                magellan_obs::span_res_add("csr_index_bytes", index.csr.index_bytes() as u64);
                drop(span);
                if !magellan_obs::current().is_some_and(|o| o.is_pinned()) {
                    magellan_obs::hist_record(
                        "magellan_simjoin_compaction_pause_us",
                        pause.as_micros() as u64,
                    );
                }
                self.compaction_pauses.push(pause);
                stats.compactions += 1;
            }
        }

        stats.delta_pairs_added = added.len();
        stats.delta_pairs_removed = removed.len();
        stats.pairs = added.len();
        stats.publish();

        let mut deltas: Vec<PairDelta> = removed
            .into_iter()
            .map(|(l, r)| PairDelta::Removed { l, r })
            .collect();
        deltas.extend(added.into_iter().map(PairDelta::Added));
        (deltas, stats)
    }
}

/// Probe a list of new/changed records against the opposing standing
/// index on the work-stealing pool. Each probe is a pure function of
/// (record, standing state), so chunk order is irrelevant; per-chunk
/// outputs are merged in chunk order and the caller sorts by `(l, r)` —
/// bit-identical at any worker count.
#[allow(clippy::too_many_arguments)]
fn probe_batch(
    probes: &[usize],
    probe_is_left: bool,
    probe_state: &SideState,
    opp_state: &SideState,
    opp_index: &SideIndex,
    measure: SetSimMeasure,
    skip_partner: Option<&[bool]>,
    cfg: &ParConfig,
    stats: &mut JoinStats,
) -> Vec<JoinPair> {
    if probes.is_empty() {
        return Vec::new();
    }
    let (chunks, _) = chunk_map(probes.len(), cfg, |range| {
        let mut scratch = DeltaScratch::new(opp_state.tokens.len());
        let mut out = Vec::new();
        let mut js = JoinStats::default();
        for p in range {
            probe_delta_one(
                probes[p],
                p as u32,
                probe_is_left,
                &probe_state.tokens[probes[p]],
                opp_state,
                opp_index,
                measure,
                skip_partner,
                &mut scratch,
                &mut out,
                &mut js,
            );
        }
        (out, js)
    });
    let mut out = Vec::new();
    for (pairs, js) in chunks {
        out.extend(pairs);
        stats.merge(&js);
    }
    out
}

/// Probe one record through the two-level standing index:
/// size-windowed CSR postings (tombstones skipped via the staleness
/// bitmap) plus the tail overlay (tombstones skipped via generation
/// mismatch), then exact bounded verification of the deduplicated
/// candidates. Pure in (record, standing state) — counters included.
#[allow(clippy::too_many_arguments)]
fn probe_delta_one(
    probe_rid: usize,
    stamp: u32,
    probe_is_left: bool,
    x: &[u32],
    opp_state: &SideState,
    opp_index: &SideIndex,
    measure: SetSimMeasure,
    skip_partner: Option<&[bool]>,
    scratch: &mut DeltaScratch,
    out: &mut Vec<JoinPair>,
    stats: &mut JoinStats,
) {
    let sx = x.len();
    if sx == 0 {
        return;
    }
    stats.delta_probes += 1;
    stats.probes += 1;
    let (lo, hi) = measure.size_bounds(sx);
    let probe_len = measure.prefix_len(sx).min(sx);
    scratch.cand.clear();

    for &tok in &x[..probe_len] {
        // Standing CSR: the size filter is the usual binary-searched
        // contiguous window; staleness is one bitmap read per survivor.
        let win = opp_index.csr.size_window(tok, lo, hi);
        stats.killed_by_size += opp_index.csr.postings(tok).len() - win.len();
        for p in win {
            let rid = p.rid as usize;
            if opp_index.csr_stale[rid] {
                stats.tombstones_skipped += 1;
                continue;
            }
            if skip_partner.is_some_and(|s| s[rid]) {
                continue;
            }
            if scratch.seen[rid] != stamp {
                scratch.seen[rid] = stamp;
                scratch.cand.push(rid as u32);
                stats.candidates += 1;
            }
        }
        // Tail overlay: small, unsorted, scanned with per-posting size
        // and generation checks.
        if let Some(list) = opp_index.tail.get(&tok) {
            stats.tail_postings_scanned += list.len();
            for p in list {
                let rid = p.rid as usize;
                if p.gen != opp_state.gens[rid] {
                    stats.tombstones_skipped += 1;
                    continue;
                }
                let size = p.size as usize;
                if size < lo || size > hi {
                    stats.killed_by_size += 1;
                    continue;
                }
                if skip_partner.is_some_and(|s| s[rid]) {
                    continue;
                }
                if scratch.seen[rid] != stamp {
                    scratch.seen[rid] = stamp;
                    scratch.cand.push(rid as u32);
                    stats.candidates += 1;
                }
            }
        }
    }

    // Exact bounded verification over full sets. The delta path skips
    // the positional filter (batches are small and candidates few); the
    // suffix counter still reports merges the bound abandoned early.
    for &rid in &scratch.cand {
        let rid = rid as usize;
        let y = &opp_state.tokens[rid];
        let sy = y.len();
        let need = measure.min_overlap(sx, sy);
        stats.verified += 1;
        let kernel = verify_kernel(x, y);
        match kernel {
            magellan_textsim::kernels::Kernel::Gallop => stats.kernel_gallop += 1,
            magellan_textsim::kernels::Kernel::Bitset => stats.kernel_bitset += 1,
            _ => stats.kernel_merge += 1,
        }
        match overlap_sorted_bounded_with(kernel, x, y, need, &mut stats.verify_steps) {
            None => stats.killed_by_suffix += 1,
            Some(overlap) => {
                let (l, r) = if probe_is_left {
                    (probe_rid, rid)
                } else {
                    (rid, probe_rid)
                };
                out.push(JoinPair {
                    l,
                    r,
                    sim: measure.similarity(sx, sy, overlap),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::tokenize::WhitespaceTokenizer;

    fn ins(side: Side, text: &str) -> RecordMutation {
        RecordMutation::Insert {
            side,
            text: Some(text.to_owned()),
        }
    }

    fn seed_batch(n: usize, seed: u64) -> Vec<RecordMutation> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        (0..n * 2)
            .map(|i| {
                let side = if i % 2 == 0 { Side::Left } else { Side::Right };
                let len = 2 + next() % 5;
                let text = (0..len)
                    .map(|_| format!("t{}", next() % 30))
                    .collect::<Vec<_>>()
                    .join(" ");
                ins(side, &text)
            })
            .collect()
    }

    /// After every batch the live view equals the from-scratch oracle
    /// bit-for-bit (pairs, order, f64 sims).
    #[test]
    fn live_view_equals_rebuild_under_mixed_mutations() {
        let tok = WhitespaceTokenizer::new();
        for measure in [
            SetSimMeasure::Jaccard(0.5),
            SetSimMeasure::Cosine(0.6),
            SetSimMeasure::Dice(0.6),
            SetSimMeasure::OverlapSize(2),
        ] {
            let mut eng = IncrementalJoin::new(measure);
            let cfg = ParConfig::serial();
            eng.apply_batch(&seed_batch(40, 11), &tok, &cfg);
            assert_eq!(eng.live_pairs(), eng.rebuild_from_scratch(&tok), "{measure:?} seed");
            // Deletes, updates, more inserts, a null update.
            let batch = vec![
                RecordMutation::Delete { side: Side::Left, rid: 3 },
                RecordMutation::Delete { side: Side::Right, rid: 7 },
                RecordMutation::Update { side: Side::Left, rid: 0, text: Some("t1 t2 t3".into()) },
                RecordMutation::Update { side: Side::Right, rid: 1, text: Some("t1 t2 t3".into()) },
                RecordMutation::Update { side: Side::Right, rid: 2, text: None },
                ins(Side::Left, "t1 t2 t3 t4"),
                ins(Side::Right, "t1 t2 t3 t4"),
            ];
            eng.apply_batch(&batch, &tok, &cfg);
            assert_eq!(eng.live_pairs(), eng.rebuild_from_scratch(&tok), "{measure:?} mixed");
        }
    }

    /// Deltas really are signed: replaying them over the previous view
    /// reproduces the new view.
    #[test]
    fn deltas_replay_to_the_new_view() {
        let tok = WhitespaceTokenizer::new();
        let mut eng = IncrementalJoin::new(SetSimMeasure::Jaccard(0.4));
        let cfg = ParConfig::serial();
        eng.apply_batch(&seed_batch(30, 5), &tok, &cfg);
        let mut view: BTreeMap<(usize, usize), f64> =
            eng.live_pairs().iter().map(|p| ((p.l, p.r), p.sim)).collect();
        let batch = vec![
            RecordMutation::Delete { side: Side::Left, rid: 1 },
            RecordMutation::Update { side: Side::Right, rid: 4, text: Some("t3 t4".into()) },
            ins(Side::Left, "t3 t4 t5"),
        ];
        let (deltas, stats) = eng.apply_batch(&batch, &tok, &cfg);
        for d in &deltas {
            match d {
                PairDelta::Removed { l, r } => {
                    assert!(view.remove(&(*l, *r)).is_some(), "removed a non-live pair");
                }
                PairDelta::Added(p) => {
                    assert!(view.insert((p.l, p.r), p.sim).is_none(), "double-add");
                }
            }
        }
        let replayed: Vec<JoinPair> = view
            .iter()
            .map(|(&(l, r), &sim)| JoinPair { l, r, sim })
            .collect();
        assert_eq!(replayed, eng.live_pairs());
        assert_eq!(stats.delta_pairs_added + stats.delta_pairs_removed, deltas.len());
    }

    /// The compaction threshold is a pure performance knob: eager and
    /// lazy engines agree on every view and every delta.
    #[test]
    fn compaction_never_changes_the_view() {
        let tok = WhitespaceTokenizer::new();
        let cfg = ParConfig::serial();
        let mut eager = IncrementalJoin::new(SetSimMeasure::Jaccard(0.5))
            .with_compaction_threshold(1e-9);
        let mut lazy = IncrementalJoin::new(SetSimMeasure::Jaccard(0.5))
            .with_compaction_threshold(1e9);
        let mut batches = vec![seed_batch(25, 3)];
        batches.push(vec![
            RecordMutation::Delete { side: Side::Left, rid: 2 },
            RecordMutation::Update { side: Side::Right, rid: 3, text: Some("t5 t6 t7".into()) },
            ins(Side::Right, "t5 t6"),
        ]);
        batches.push(vec![
            RecordMutation::Delete { side: Side::Right, rid: 3 },
            ins(Side::Left, "t5 t6 t7"),
        ]);
        for batch in &batches {
            let (de, se) = eager.apply_batch(batch, &tok, &cfg);
            let (dl, sl) = lazy.apply_batch(batch, &tok, &cfg);
            assert_eq!(de, dl);
            assert_eq!(eager.live_pairs(), lazy.live_pairs());
            assert_eq!(
                (se.delta_pairs_added, se.delta_pairs_removed),
                (sl.delta_pairs_added, sl.delta_pairs_removed)
            );
        }
        assert!(eager.index_generation(Side::Left) > lazy.index_generation(Side::Left));
        assert!(!eager.compaction_pauses().is_empty());
        assert!(eager.compaction_pauses().len() >= eager.index_generation(Side::Left) as usize);
    }

    /// Worker count never changes deltas, stats, or the view.
    #[test]
    fn apply_batch_is_worker_count_invariant() {
        let tok = WhitespaceTokenizer::new();
        let mut engines: Vec<IncrementalJoin> = (0..3)
            .map(|_| IncrementalJoin::new(SetSimMeasure::Dice(0.55)))
            .collect();
        let cfgs = [ParConfig::serial(), ParConfig::workers(4), ParConfig::workers(8)];
        for (batch_seed, n) in [(21u64, 30), (22, 10), (23, 20)] {
            let batch = seed_batch(n, batch_seed);
            let mut results = Vec::new();
            for (eng, cfg) in engines.iter_mut().zip(&cfgs) {
                results.push(eng.apply_batch(&batch, &tok, cfg));
            }
            for (deltas, stats) in &results[1..] {
                assert_eq!(deltas, &results[0].0);
                assert_eq!(stats, &results[0].1);
            }
            for eng in &engines[1..] {
                assert_eq!(eng.live_pairs(), engines[0].live_pairs());
            }
        }
    }

    /// Tombstoned postings are skipped (and counted) until compaction
    /// reclaims them.
    #[test]
    fn tombstones_are_skipped_then_compacted_away() {
        let tok = WhitespaceTokenizer::new();
        let cfg = ParConfig::serial();
        let mut eng = IncrementalJoin::new(SetSimMeasure::Jaccard(0.5))
            .with_compaction_threshold(1e9); // never compact on its own
        eng.apply_batch(
            &[
                ins(Side::Left, "a b c"),
                ins(Side::Right, "a b c"),
                ins(Side::Right, "a b d"),
            ],
            &tok,
            &cfg,
        );
        // Force both sides into a packed CSR so the delete tombstones a
        // CSR posting rather than a tail posting.
        let (_, s0) = eng.apply_batch(
            &[RecordMutation::Delete { side: Side::Right, rid: 0 }],
            &tok,
            &cfg,
        );
        assert_eq!(s0.delta_pairs_removed, 1);
        // A new left record probes past the dead right-0 postings.
        let (_, s1) = eng.apply_batch(&[ins(Side::Left, "a b c d")], &tok, &cfg);
        assert!(s1.tombstones_skipped > 0, "stale postings must be counted");
        assert_eq!(eng.live_pairs(), eng.rebuild_from_scratch(&tok));
        assert_eq!(eng.n_alive(Side::Right), 1);
        assert_eq!(eng.n_records(Side::Right), 2);
    }

    /// Restore rebuilds a bit-identical engine that keeps streaming.
    #[test]
    fn restore_roundtrip_continues_identically() {
        let tok = WhitespaceTokenizer::new();
        let cfg = ParConfig::serial();
        let mut a = IncrementalJoin::new(SetSimMeasure::Cosine(0.6));
        a.apply_batch(&seed_batch(20, 9), &tok, &cfg);
        a.apply_batch(
            &[RecordMutation::Delete { side: Side::Left, rid: 5 }],
            &tok,
            &cfg,
        );
        let mut b = IncrementalJoin::restore(
            a.measure(),
            &tok,
            a.texts(Side::Left).to_vec(),
            a.texts(Side::Right).to_vec(),
            a.live_pairs(),
            a.index_generation(Side::Left),
            a.index_generation(Side::Right),
        );
        assert_eq!(a.live_pairs(), b.live_pairs());
        assert_eq!(a.index_generation(Side::Left), b.index_generation(Side::Left));
        let batch = seed_batch(10, 13);
        let (da, _) = a.apply_batch(&batch, &tok, &cfg);
        let (db, _) = b.apply_batch(&batch, &tok, &cfg);
        assert_eq!(da, db);
        assert_eq!(a.live_pairs(), b.live_pairs());
        assert_eq!(b.live_pairs(), b.rebuild_from_scratch(&tok));
    }
}
