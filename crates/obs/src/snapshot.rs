//! Canonical, deterministic snapshots and the two exporters.
//!
//! A snapshot merges every per-thread buffer into **tree order**: spans
//! are arranged as a forest by parent id, children sorted by
//! `(name, key, start_ns, end_ns, id)` — never by buffer lane or arrival
//! order, both of which are scheduling-dependent. Under a pinned clock
//! this makes the snapshot (and both exports) a pure function of what the
//! pipeline *did*, not of how the OS scheduled it.

use crate::{ClockMode, EvVal, EventRec, Histogram, MetricValue, SpanRec};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A merged, canonically-ordered view of a recorder at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Clock mode of the recorder that produced this snapshot.
    pub clock: ClockMode,
    /// Completed spans in canonical DFS (tree) order.
    pub spans: Vec<SpanRec>,
    /// Tree depth of each span in `spans` (roots are depth `1`).
    pub depths: Vec<u16>,
    /// Events sorted by `(t_ns, name, span, fields)`.
    pub events: Vec<EventRec>,
    /// The metrics registry (sorted by name).
    pub metrics: BTreeMap<String, MetricValue>,
    /// Spans discarded because a per-thread buffer was full.
    pub dropped_spans: usize,
    /// Events discarded because a per-thread buffer was full.
    pub dropped_events: usize,
}

impl Default for ObsSnapshot {
    /// An empty wall-mode snapshot — what a report carries when the run
    /// recorded nothing (e.g. reconstituted from a `Done` checkpoint).
    fn default() -> Self {
        ObsSnapshot::build(
            ClockMode::Wall,
            Vec::new(),
            Vec::new(),
            BTreeMap::new(),
            0,
            0,
        )
    }
}

fn span_sort_key(s: &SpanRec) -> (&'static str, u64, u64, u64, u64) {
    (s.name, s.key, s.start_ns, s.end_ns, s.id)
}

fn evval_key(v: &EvVal) -> (u8, u64, &'static str) {
    match v {
        EvVal::U(u) => (0, *u, ""),
        EvVal::F(f) => (1, f.to_bits(), ""),
        EvVal::S(s) => (2, 0, s),
    }
}

fn event_cmp(a: &EventRec, b: &EventRec) -> std::cmp::Ordering {
    (a.t_ns, a.name, a.span)
        .cmp(&(b.t_ns, b.name, b.span))
        .then_with(|| {
            let ka: Vec<_> = a.fields.iter().map(|(k, v)| (*k, evval_key(v))).collect();
            let kb: Vec<_> = b.fields.iter().map(|(k, v)| (*k, evval_key(v))).collect();
            ka.cmp(&kb)
        })
}

impl ObsSnapshot {
    pub(crate) fn build(
        clock: ClockMode,
        spans: Vec<SpanRec>,
        mut events: Vec<EventRec>,
        metrics: BTreeMap<String, MetricValue>,
        dropped_spans: usize,
        dropped_events: usize,
    ) -> Self {
        // ---- canonical forest order for spans -----------------------
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            // Orphans (parent never recorded — e.g. it fell off a full
            // buffer) and self-parents are grafted onto the root.
            let p = if s.parent != 0 && s.parent != s.id && ids.contains(&s.parent) {
                s.parent
            } else {
                0
            };
            children.entry(p).or_default().push(i);
        }
        for v in children.values_mut() {
            v.sort_by(|&a, &b| span_sort_key(&spans[a]).cmp(&span_sort_key(&spans[b])));
        }
        let mut order: Vec<usize> = Vec::with_capacity(spans.len());
        let mut depths: Vec<u16> = Vec::with_capacity(spans.len());
        let mut visited = vec![false; spans.len()];
        let mut stack: Vec<(usize, u16)> = children
            .get(&0)
            .map(|v| v.iter().rev().map(|&i| (i, 1)).collect())
            .unwrap_or_default();
        while let Some((i, d)) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            order.push(i);
            depths.push(d);
            if let Some(kids) = children.get(&spans[i].id) {
                for &k in kids.iter().rev() {
                    if !visited[k] {
                        stack.push((k, d.saturating_add(1)));
                    }
                }
            }
        }
        // Cycles (mutually-parented spans) are unreachable from the root;
        // append them deterministically as extra roots.
        let mut rest: Vec<usize> = (0..spans.len()).filter(|&i| !visited[i]).collect();
        rest.sort_by(|&a, &b| span_sort_key(&spans[a]).cmp(&span_sort_key(&spans[b])));
        for i in rest {
            order.push(i);
            depths.push(1);
        }
        let spans: Vec<SpanRec> = order.into_iter().map(|i| spans[i].clone()).collect();

        events.sort_by(event_cmp);

        ObsSnapshot {
            clock,
            spans,
            depths,
            events,
            metrics,
            dropped_spans,
            dropped_events,
        }
    }

    // ---- accessors ---------------------------------------------------

    /// Counter value by exact name (`0` when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge value by exact name (`0.0` when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => *g,
            _ => 0.0,
        }
    }

    /// Histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Maximum span nesting depth (roots are `1`; `0` = no spans).
    pub fn max_depth(&self) -> u16 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// All spans with the given name, in canonical order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// All events with the given name, in canonical order.
    pub fn events_named(&self, name: &str) -> Vec<&EventRec> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    // ---- Prometheus text exporter ------------------------------------

    /// Render the registry as Prometheus-style exposition text.
    ///
    /// Names may embed labels (`magellan_par_items_total{phase="blocking"}`);
    /// the `# TYPE` line uses the base name before the `{`. Histograms
    /// expand into cumulative `_bucket{le=…}`, `_sum`, and `_count` lines.
    /// Output is byte-deterministic: the registry is a sorted map and f64
    /// formatting goes through Rust's shortest-roundtrip `Display`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for (name, v) in &self.metrics {
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
                None => (name.as_str(), ""),
            };
            let kind = match v {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base;
            }
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", fmt_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let sep = if labels.is_empty() { "" } else { "," };
                    let mut cum = 0u64;
                    for (k, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        let le = Histogram::bucket_le(k);
                        let _ =
                            writeln!(out, "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(
                        out,
                        "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                        h.count
                    );
                    let _ = writeln!(out, "{base}_sum{{{labels}}} {}", h.sum);
                    let _ = writeln!(out, "{base}_count{{{labels}}} {}", h.count);
                }
            }
        }
        out
    }

    // ---- Chrome trace_event exporter ---------------------------------

    /// Render spans + events as Chrome `trace_event` JSON (open in
    /// Perfetto or `chrome://tracing`).
    ///
    /// * **Wall mode**: real microsecond timestamps, one `tid` per buffer
    ///   lane — a profiling view of what actually ran where.
    /// * **Pinned mode**: timestamps are synthesized from the canonical
    ///   tree by a DFS tick counter (entry/exit ticks), so nesting is
    ///   exact and the bytes are identical run-to-run; the simulated-ns
    ///   interval travels in `args`. Events render on `tid` 1 at their
    ///   simulated microsecond time.
    pub fn to_chrome_trace(&self) -> String {
        let n = self.spans.len();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, item: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(item);
        };

        // Span X events.
        let (ts, dur): (Vec<u64>, Vec<u64>) = match self.clock {
            ClockMode::Pinned => {
                // Synthetic entry/exit ticks from the canonical forest.
                let mut ts = vec![0u64; n];
                let mut dur = vec![0u64; n];
                let mut tick = 0u64;
                let mut open: Vec<usize> = Vec::new();
                for i in 0..n {
                    while let Some(&top) = open.last() {
                        if self.depths[top] >= self.depths[i] {
                            open.pop();
                            tick += 1;
                            dur[top] = tick - ts[top];
                        } else {
                            break;
                        }
                    }
                    tick += 1;
                    ts[i] = tick;
                    open.push(i);
                }
                while let Some(top) = open.pop() {
                    tick += 1;
                    dur[top] = tick - ts[top];
                }
                (ts, dur)
            }
            ClockMode::Wall => {
                let ts: Vec<u64> = self.spans.iter().map(|s| s.start_ns / 1_000).collect();
                let dur: Vec<u64> = self
                    .spans
                    .iter()
                    .map(|s| ((s.end_ns - s.start_ns) / 1_000).max(1))
                    .collect();
                (ts, dur)
            }
        };
        for (i, s) in self.spans.iter().enumerate() {
            let tid = match self.clock {
                ClockMode::Pinned => 0,
                ClockMode::Wall => s.lane,
            };
            let item = format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"key\":{},\"depth\":{},\
                 \"start_ns\":{},\"end_ns\":{}}}}}",
                json_str(s.name),
                ts[i],
                dur[i],
                s.key,
                self.depths[i],
                s.start_ns,
                s.end_ns
            );
            push(&mut out, &mut first, &item);
        }

        // Instant events.
        for e in &self.events {
            let mut args = String::new();
            let _ = write!(args, "\"span\":{}", e.span);
            for (k, v) in &e.fields {
                let _ = write!(args, ",{}:{}", json_str(k), json_val(v));
            }
            let tid = match self.clock {
                ClockMode::Pinned => 1,
                ClockMode::Wall => 1,
            };
            let item = format!(
                "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\
                 \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
                json_str(e.name),
                e.t_ns / 1_000,
            );
            push(&mut out, &mut first, &item);
        }

        out.push_str("]}");
        out
    }

    /// Write [`ObsSnapshot::to_chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }
}

/// Deterministic f64 text (Rust shortest-roundtrip `Display`); guards the
/// non-finite values Prometheus text can't carry.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_owned() } else { "-Inf".to_owned() }
    } else {
        format!("{v}")
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_val(v: &EvVal) -> String {
    match v {
        EvVal::U(u) => format!("{u}"),
        EvVal::F(f) if f.is_finite() => format!("{f}"),
        EvVal::F(f) => json_str(&fmt_f64(*f)),
        EvVal::S(s) => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span_id;

    fn rec(parent: u64, name: &'static str, key: u64, t0: u64, t1: u64, lane: u32) -> SpanRec {
        SpanRec {
            id: span_id(parent, name, key),
            parent,
            name,
            key,
            start_ns: t0,
            end_ns: t1,
            lane,
            res: Vec::new(),
        }
    }

    #[test]
    fn canonical_order_ignores_arrival_and_lane() {
        let run = rec(0, "run", 0, 0, 100, 0);
        let c0 = rec(run.id, "chunk", 0, 1, 10, 2);
        let c1 = rec(run.id, "chunk", 1, 1, 10, 1);
        let m = std::collections::BTreeMap::new();
        let a = ObsSnapshot::build(
            ClockMode::Pinned,
            vec![c1.clone(), run.clone(), c0.clone()],
            vec![],
            m.clone(),
            0,
            0,
        );
        let b = ObsSnapshot::build(
            ClockMode::Pinned,
            vec![c0.clone(), c1.clone(), run.clone()],
            vec![],
            m,
            0,
            0,
        );
        let names: Vec<_> = a.spans.iter().map(|s| (s.name, s.key)).collect();
        assert_eq!(names, vec![("run", 0), ("chunk", 0), ("chunk", 1)]);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.depths, vec![1, 2, 2]);
        assert_eq!(a.max_depth(), 2);
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    }

    #[test]
    fn orphans_and_cycles_are_grafted_deterministically() {
        // Orphan: parent id never recorded.
        let orphan = rec(777, "lost", 3, 5, 6, 0);
        // Cycle: two spans that parent each other.
        let mut x = rec(0, "x", 0, 0, 1, 0);
        let mut y = rec(0, "y", 0, 0, 1, 0);
        x.parent = y.id;
        y.parent = x.id;
        let snap = ObsSnapshot::build(
            ClockMode::Pinned,
            vec![x, orphan, y],
            vec![],
            std::collections::BTreeMap::new(),
            0,
            0,
        );
        assert_eq!(snap.spans.len(), 3, "no span is silently lost");
        assert_eq!(snap.max_depth(), 1, "cycle members are grafted as flat roots");
        assert_eq!(snap.spans_named("lost").len(), 1);
    }

    #[test]
    fn prometheus_text_is_sorted_and_typed() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(
            "magellan_par_items_total{phase=\"blocking\"}".to_owned(),
            MetricValue::Counter(7),
        );
        m.insert(
            "magellan_par_items_total{phase=\"matching\"}".to_owned(),
            MetricValue::Counter(9),
        );
        m.insert("magellan_core_recall".to_owned(), MetricValue::Gauge(0.95));
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(3);
        m.insert("magellan_par_chunk_items".to_owned(), MetricValue::Histogram(h));
        let snap =
            ObsSnapshot::build(ClockMode::Pinned, vec![], vec![], m, 0, 0);
        let txt = snap.to_prometheus();
        let expect = "\
# TYPE magellan_core_recall gauge
magellan_core_recall 0.95
# TYPE magellan_par_chunk_items histogram
magellan_par_chunk_items_bucket{le=\"0\"} 1
magellan_par_chunk_items_bucket{le=\"3\"} 3
magellan_par_chunk_items_bucket{le=\"+Inf\"} 3
magellan_par_chunk_items_sum{} 6
magellan_par_chunk_items_count{} 3
# TYPE magellan_par_items_total counter
magellan_par_items_total{phase=\"blocking\"} 7
magellan_par_items_total{phase=\"matching\"} 9
";
        assert_eq!(txt, expect);
    }

    #[test]
    fn chrome_trace_parses_and_nests() {
        let run = rec(0, "run", 0, 0, 100, 0);
        let phase = rec(run.id, "phase", 1, 0, 50, 0);
        let chunk = rec(phase.id, "chunk", 2, 0, 25, 1);
        let ev = EventRec {
            t_ns: 10,
            name: "fault_injected",
            span: chunk.id,
            fields: vec![("chunk", EvVal::U(2)), ("kind", EvVal::S("panic"))],
        };
        let snap = ObsSnapshot::build(
            ClockMode::Pinned,
            vec![chunk, run, phase],
            vec![ev],
            std::collections::BTreeMap::new(),
            0,
            0,
        );
        let txt = snap.to_chrome_trace();
        let parsed = crate::parse_json(&txt).expect("valid JSON");
        let evs = parsed
            .get("traceEvents")
            .and_then(|j| j.as_array())
            .expect("traceEvents array");
        assert_eq!(evs.len(), 4);
        // Child X interval strictly inside the parent's.
        let find = |name: &str| {
            evs.iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap()
        };
        let (rts, rdur) = (
            find("run").get("ts").unwrap().as_f64().unwrap(),
            find("run").get("dur").unwrap().as_f64().unwrap(),
        );
        let (cts, cdur) = (
            find("chunk").get("ts").unwrap().as_f64().unwrap(),
            find("chunk").get("dur").unwrap().as_f64().unwrap(),
        );
        assert!(rts < cts && cts + cdur < rts + rdur);
        assert_eq!(snap.max_depth(), 3);
    }
}
