//! Leveled logging gated by the `MAGELLAN_LOG` environment variable.
//!
//! Library code must never write to stdout unconditionally; the
//! [`log!`](crate::log) macro routes leveled messages to **stderr** and
//! compiles down to one atomic load when the level is off. Binaries that
//! historically printed progress call [`init_bin_logging`] to default to
//! `Info` while still letting `MAGELLAN_LOG` override.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// High-level progress (default for bench/experiment binaries).
    Info = 3,
    /// Per-phase internals.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Lower-case display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const UNSET: u8 = 0xFF;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" | "1" => 1,
        "warn" | "warning" | "2" => 2,
        "info" | "3" => 3,
        "debug" | "4" => 4,
        "trace" | "5" => 5,
        // "off", "0", "", unknown — all silent.
        _ => 0,
    }
}

fn effective() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let e = match std::env::var("MAGELLAN_LOG") {
        Ok(s) => parse_level(&s),
        Err(_) => 0,
    };
    LEVEL.store(e, Ordering::Relaxed);
    e
}

/// Programmatically set (or, with `None`, silence) the log level,
/// overriding `MAGELLAN_LOG`.
pub fn set_log_level(level: Option<Level>) {
    LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The currently effective level, if logging is enabled at all.
pub fn log_level() -> Option<Level> {
    match effective() {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Would a message at `level` currently be emitted?
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= effective()
}

/// For binaries: default to `default` unless `MAGELLAN_LOG` is set or a
/// level was already chosen programmatically.
pub fn init_bin_logging(default: Level) {
    if std::env::var_os("MAGELLAN_LOG").is_none() && LEVEL.load(Ordering::Relaxed) == UNSET {
        LEVEL.store(default as u8, Ordering::Relaxed);
    }
}

#[doc(hidden)]
pub fn __log_emit(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[magellan:{level}] {args}");
}

/// Leveled logging macro: `obs::log!(info, "scored {} pairs", n)`.
///
/// Levels are the lower-case idents `error`, `warn`, `info`, `debug`,
/// `trace`. Formatting is lazy — arguments are only evaluated when the
/// level is enabled — and output goes to stderr, never stdout.
#[macro_export]
macro_rules! log {
    (error, $($arg:tt)+) => { $crate::__log_impl!($crate::Level::Error, $($arg)+) };
    (warn,  $($arg:tt)+) => { $crate::__log_impl!($crate::Level::Warn,  $($arg)+) };
    (info,  $($arg:tt)+) => { $crate::__log_impl!($crate::Level::Info,  $($arg)+) };
    (debug, $($arg:tt)+) => { $crate::__log_impl!($crate::Level::Debug, $($arg)+) };
    (trace, $($arg:tt)+) => { $crate::__log_impl!($crate::Level::Trace, $($arg)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __log_impl {
    ($lvl:expr, $($arg:tt)+) => {{
        let lvl = $lvl;
        if $crate::log_enabled(lvl) {
            $crate::__log_emit(lvl, ::core::format_args!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        set_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert_eq!(log_level(), Some(Level::Warn));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        assert_eq!(log_level(), None);
        // Macro with logging off: format args must not be evaluated.
        let mut evaluated = false;
        crate::log!(error, "{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "format args evaluated while disabled");
        set_log_level(Some(Level::Trace));
        crate::log!(trace, "trace message {} (to stderr, expected in test output)", 42);
        set_log_level(None);
    }

    #[test]
    fn parse_level_accepts_names_and_numbers() {
        assert_eq!(parse_level("error"), 1);
        assert_eq!(parse_level("WARN"), 2);
        assert_eq!(parse_level(" info "), 3);
        assert_eq!(parse_level("4"), 4);
        assert_eq!(parse_level("trace"), 5);
        assert_eq!(parse_level("off"), 0);
        assert_eq!(parse_level(""), 0);
        assert_eq!(parse_level("bogus"), 0);
    }
}
