//! Flattened structure-of-arrays random-forest inference.
//!
//! [`crate::tree`] stores trained trees as arenas of [`Node`] enums —
//! the right representation for *walking structure* (Falcon extracts
//! blocking rules from root→leaf paths), but a poor one for *batch
//! scoring*: every step matches on a 40-byte enum, chases two unrelated
//! child indices, and branches on the comparison outcome.
//!
//! [`FlatForest`] re-lays a trained [`RandomForestClassifier`] into
//! three contiguous parallel arrays — `(feat, thresh, left)` — shared
//! by every tree in the forest:
//!
//! * `feat[i]` — feature index tested at node `i`, or [`LEAF`] for a
//!   leaf;
//! * `thresh[i]` — the split threshold, or (for a leaf) the node's
//!   **precomputed Laplace-smoothed probability** `(n_pos+1)/(n+2)` —
//!   the exact expression [`DecisionTreeClassifier::predict_proba`]
//!   evaluates, so scores match bit-for-bit;
//! * `left[i]` — flat index of the left child; the right child is
//!   **always `left[i] + 1`** thanks to a breadth-first re-layout that
//!   allocates sibling slots together.
//!
//! The traversal step is then branchless:
//!
//! ```text
//! i = left[i] + (row[feat[i]] > thresh[i]) as usize
//! ```
//!
//! `NaN > t` is `false`, so missing values route **left**, exactly like
//! the tree walk's `x.is_nan() || x <= threshold`. (The two predicates
//! agree on every input: for non-NaN `x`, `!(x > t) ⇔ x <= t`.)
//!
//! ## Bit-identity contract
//!
//! `FlatForest` is a *view*, not a model: for every row and every worker
//! count, [`FlatForest::predict_proba`] and
//! [`FlatForest::predict_proba_batch`] return exactly what the source
//! forest's scalar walk returns — same leaf, same Laplace expression,
//! same tree-order summation. The invariance suite
//! (`crates/ml/tests/forest_flat_invariance.rs`) enforces this against
//! the preserved [`crate::forest::predict_proba_batch`] reference,
//! including through a [`crate::persist`] round-trip.

use magellan_par::ParConfig;

use crate::forest::RandomForestClassifier;
use crate::tree::{DecisionTreeClassifier, Node};

/// Sentinel in `feat` marking a leaf slot.
pub const LEAF: u32 = u32::MAX;

/// A random forest flattened for batch inference: one contiguous
/// `(feat, thresh, left)` node pool shared by all trees, breadth-first
/// per tree so siblings are adjacent (`right == left + 1`).
#[derive(Debug, Clone)]
pub struct FlatForest {
    /// Tested feature per node; [`LEAF`] for leaves.
    feat: Vec<u32>,
    /// Split threshold per node; Laplace-smoothed probability for leaves.
    thresh: Vec<f64>,
    /// Flat index of the left child (right = left + 1); 0 for leaves.
    left: Vec<u32>,
    /// Root slot of each tree, in forest order.
    roots: Vec<u32>,
}

impl FlatForest {
    /// Flatten a trained forest. Pure re-layout: no value is recomputed
    /// except the per-leaf Laplace probability, evaluated with the same
    /// expression the tree walk uses.
    pub fn from_forest(forest: &RandomForestClassifier) -> FlatForest {
        let total: usize = forest.trees().iter().map(|t| t.nodes().len()).sum();
        let mut flat = FlatForest {
            feat: Vec::with_capacity(total),
            thresh: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            roots: Vec::with_capacity(forest.trees().len()),
        };
        for tree in forest.trees() {
            flat.push_tree(tree);
        }
        flat
    }

    /// BFS re-layout of one tree into the shared pool. Sibling slots are
    /// allocated together, which is what makes `right == left + 1` a
    /// structural invariant rather than a convention.
    fn push_tree(&mut self, tree: &DecisionTreeClassifier) {
        let nodes = tree.nodes();
        let root = self.alloc();
        self.roots.push(root as u32);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, root));
        while let Some((arena, slot)) = queue.pop_front() {
            match &nodes[arena] {
                Node::Leaf { n, n_pos } => {
                    self.feat[slot] = LEAF;
                    self.thresh[slot] = (*n_pos as f64 + 1.0) / (*n as f64 + 2.0);
                    self.left[slot] = 0;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    assert!((*feature as u64) < LEAF as u64, "feature index collides with sentinel");
                    let l = self.alloc();
                    let r = self.alloc();
                    debug_assert_eq!(r, l + 1);
                    self.feat[slot] = *feature as u32;
                    self.thresh[slot] = *threshold;
                    self.left[slot] = l as u32;
                    queue.push_back((*left, l));
                    queue.push_back((*right, r));
                }
            }
        }
    }

    fn alloc(&mut self) -> usize {
        self.feat.push(LEAF);
        self.thresh.push(0.0);
        self.left.push(0);
        self.feat.len() - 1
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feat.len()
    }

    /// Walk one tree to its leaf; returns the leaf's flat slot.
    #[inline]
    fn leaf_slot(&self, root: u32, row: &[f64]) -> usize {
        let mut i = root as usize;
        loop {
            let f = self.feat[i];
            if f == LEAF {
                return i;
            }
            // Branchless child select; NaN compares false → left, matching
            // the tree walk's `x.is_nan() || x <= threshold`.
            i = self.left[i] as usize + usize::from(row[f as usize] > self.thresh[i]);
        }
    }

    /// Mean of per-tree Laplace-smoothed leaf probabilities — the same
    /// tree-order sum and final divide as the scalar forest walk.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let sum: f64 = self
            .roots
            .iter()
            .map(|&root| self.thresh[self.leaf_slot(root, row)])
            .sum();
        sum / self.roots.len() as f64
    }

    /// Hard prediction at the 0.5 operating point (majority vote: the
    /// per-tree probability clears 0.5 iff the leaf's hard vote is
    /// "match", so this matches the forest's `predict`).
    pub fn predict(&self, row: &[f64]) -> bool {
        self.vote_fraction(row) >= 0.5
    }

    /// Fraction of trees voting "match" (Falcon's α test), flat edition.
    pub fn vote_fraction(&self, row: &[f64]) -> f64 {
        let votes = self
            .roots
            .iter()
            .filter(|&&root| self.thresh[self.leaf_slot(root, row)] >= 0.5)
            .count();
        votes as f64 / self.roots.len() as f64
    }

    /// Batch scoring over the `magellan-par` pool:
    /// `out[i] == self.predict_proba(&rows[i])` bit-identically for any
    /// worker count. Within a chunk the loop runs **tree-outer,
    /// row-inner**, keeping one tree's nodes hot across the whole chunk;
    /// per-row sums still accumulate in tree order, so the arithmetic is
    /// exactly the scalar walk's.
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>], cfg: &ParConfig) -> Vec<f64> {
        let (chunks, _stats) = magellan_par::chunk_map(rows.len(), cfg, |range| {
            let chunk = &rows[range];
            let mut acc = vec![0.0f64; chunk.len()];
            for &root in &self.roots {
                for (out, row) in acc.iter_mut().zip(chunk) {
                    *out += self.thresh[self.leaf_slot(root, row)];
                }
            }
            let n = self.roots.len() as f64;
            for out in &mut acc {
                *out /= n;
            }
            acc
        });
        chunks.into_iter().flatten().collect()
    }

    /// Re-score only the **dirty** pairs of a streaming batch: the
    /// incremental tier's model stage. `dirty` carries `(pair key,
    /// feature row)` for exactly the pairs whose records changed;
    /// everything else keeps its previous score untouched. Returns
    /// `(key, probability)` in input order, scored through
    /// [`FlatForest::predict_proba_batch`] — so a dirty pair's new score
    /// is bit-identical to what a full-matrix rebuild would give it, for
    /// any worker count.
    pub fn rescore_dirty<K: Copy>(
        &self,
        dirty: &[(K, Vec<f64>)],
        cfg: &ParConfig,
    ) -> Vec<(K, f64)> {
        let rows: Vec<Vec<f64>> = dirty.iter().map(|(_, r)| r.clone()).collect();
        let probs = self.predict_proba_batch(&rows, cfg);
        dirty
            .iter()
            .map(|(k, _)| *k)
            .zip(probs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestLearner;
    use crate::model::Classifier;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_dims(3);
        for _ in 0..n {
            let pos: bool = rng.gen_bool(0.5);
            let c = if pos { 1.0 } else { -1.0 };
            let row = [
                c + rng.gen_range(-0.9..0.9),
                c + rng.gen_range(-0.9..0.9),
                rng.gen_range(-1.0..1.0),
            ];
            d.push(&row, pos);
        }
        d
    }

    #[test]
    fn layout_has_adjacent_siblings_and_same_node_count() {
        let d = blob_data(11, 120);
        let forest = RandomForestLearner {
            n_trees: 5,
            ..Default::default()
        }
        .fit_forest(&d);
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.n_trees(), 5);
        let arena_total: usize = forest.trees().iter().map(|t| t.nodes().len()).sum();
        assert_eq!(flat.n_nodes(), arena_total);
        // Structural invariant: every split's children are adjacent and
        // strictly after it (BFS order).
        for i in 0..flat.n_nodes() {
            if flat.feat[i] != LEAF {
                assert!((flat.left[i] as usize) > i);
                assert!((flat.left[i] as usize + 1) < flat.n_nodes());
            }
        }
    }

    #[test]
    fn flat_scores_match_tree_walk_bitwise() {
        let d = blob_data(12, 150);
        let forest = RandomForestLearner {
            n_trees: 9,
            ..Default::default()
        }
        .fit_forest(&d);
        let flat = FlatForest::from_forest(&forest);
        for i in 0..d.len() {
            let row = d.row(i);
            assert_eq!(
                flat.predict_proba(row).to_bits(),
                forest.predict_proba(row).to_bits()
            );
            assert_eq!(
                flat.vote_fraction(row).to_bits(),
                forest.vote_fraction(row).to_bits()
            );
            assert_eq!(flat.predict(row), forest.predict(row));
        }
    }

    /// Rescoring only the dirty subset gives each pair the bit-identical
    /// probability a full batch rescore would, for any worker count.
    #[test]
    fn rescore_dirty_matches_full_batch_bitwise() {
        let d = blob_data(21, 160);
        let forest = RandomForestLearner {
            n_trees: 7,
            ..Default::default()
        }
        .fit_forest(&d);
        let flat = FlatForest::from_forest(&forest);
        let all_rows: Vec<Vec<f64>> = (0..d.len()).map(|i| d.row(i).to_vec()).collect();
        let full = flat.predict_proba_batch(&all_rows, &ParConfig::serial());
        // Dirty subset: every third pair, keyed by (l, r) ids.
        let dirty: Vec<((usize, usize), Vec<f64>)> = (0..d.len())
            .step_by(3)
            .map(|i| ((i, i + 1000), all_rows[i].clone()))
            .collect();
        for w in [1, 4] {
            let scored = flat.rescore_dirty(&dirty, &ParConfig::workers(w));
            assert_eq!(scored.len(), dirty.len());
            for ((key, p), (dkey, _)) in scored.iter().zip(&dirty) {
                assert_eq!(key, dkey);
                assert_eq!(p.to_bits(), full[key.0].to_bits(), "w={w} diverged");
            }
        }
    }

    #[test]
    fn nan_routes_left_like_the_tree_walk() {
        let d = Dataset::from_rows(
            &[vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
            &[false, false, true, true],
        );
        let forest = RandomForestLearner {
            n_trees: 3,
            bootstrap: false,
            ..Default::default()
        }
        .fit_forest(&d);
        let flat = FlatForest::from_forest(&forest);
        for row in [[f64::NAN], [0.15], [0.85]] {
            assert_eq!(
                flat.predict_proba(&row).to_bits(),
                forest.predict_proba(&row).to_bits()
            );
        }
    }

    #[test]
    fn single_leaf_tree_flattens() {
        let d = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[true, true]);
        let forest = RandomForestLearner {
            n_trees: 2,
            ..Default::default()
        }
        .fit_forest(&d);
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.predict_proba(&[5.0]), 0.75);
    }
}
