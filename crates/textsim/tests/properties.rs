//! Property-based tests for the similarity measures: bounds, symmetry,
//! identity, and triangle-style relations that every downstream tool
//! (blockers, feature generators, sim-joins) relies on.

use magellan_textsim::seqsim::*;
use magellan_textsim::setsim::*;
use magellan_textsim::tokenize::{QgramTokenizer, Tokenizer, WhitespaceTokenizer};
use magellan_textsim::TfIdfModel;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-d]{0,8}"
}

fn phrase() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-d]{1,5}", 0..5).prop_map(|v| v.join(" "))
}

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
        // Distance bounded by longer length.
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn sequence_sims_bounded_and_symmetric(a in word(), b in word()) {
        for f in [levenshtein_sim, jaro, jaro_winkler] {
            let s1 = f(&a, &b);
            let s2 = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&s1), "{} out of range", s1);
            prop_assert!((s1 - s2).abs() < 1e-12);
        }
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in word(), b in word()) {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn set_sims_bounded_symmetric_reflexive(x in phrase(), y in phrase()) {
        let tok = WhitespaceTokenizer::new();
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        for f in [jaccard::<String>, dice::<String>, cosine::<String>, overlap_coefficient::<String>] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
            prop_assert_eq!(f(&a, &a), 1.0);
        }
        // Known dominance chain: jaccard <= dice <= overlap_coefficient.
        prop_assert!(jaccard(&a, &b) <= dice(&a, &b) + 1e-12);
        prop_assert!(dice(&a, &b) <= overlap_coefficient(&a, &b) + 1e-12);
    }

    #[test]
    fn qgram_tokenizer_padded_count(s in "[a-z]{0,12}", q in 1usize..5) {
        let tok = QgramTokenizer::new(q);
        let n = s.chars().count();
        let toks = tok.tokenize(&s);
        if n == 0 && q > 1 {
            // padded empty string still yields q-1 grams of pure sentinels
            prop_assert_eq!(toks.len(), q - 1);
        } else if n == 0 {
            prop_assert!(toks.is_empty());
        } else {
            prop_assert_eq!(toks.len(), n + q - 1);
        }
        for t in &toks {
            prop_assert_eq!(t.chars().count(), q);
        }
    }

    #[test]
    fn tfidf_bounded_symmetric_reflexive(
        docs in proptest::collection::vec(phrase(), 1..6),
        x in phrase(),
        y in phrase(),
    ) {
        let tok = WhitespaceTokenizer::new();
        let corpus: Vec<Vec<String>> = docs.iter().map(|d| tok.tokenize(d)).collect();
        let m = TfIdfModel::fit(&corpus);
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        let s = m.tfidf(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - m.tfidf(&b, &a)).abs() < 1e-9);
        prop_assert!((m.tfidf(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monge_elkan_bounded(x in phrase(), y in phrase()) {
        let tok = WhitespaceTokenizer::new();
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        let s = monge_elkan_jw(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((monge_elkan_jw(&a, &a) - 1.0).abs() < 1e-12 || a.is_empty());
    }

    #[test]
    fn hamming_matches_manual_count(a in "[ab]{0,10}") {
        // Same-length strings always have a Hamming distance; shifting one
        // char changes distance by at most 1.
        let b: String = a.chars().rev().collect();
        let d = hamming(&a, &b).expect("equal length");
        prop_assert!(d <= a.len());
    }
}

// ---------------------------------------------------------------------------
// Equivalence pins for the sort-dedup-merge setsim rewrite and the interned
// u32 kernels: both must be *bit-identical* to the original hash-set-based
// measures for arbitrary token bags, including duplicate-token and
// empty-set edge cases.
// ---------------------------------------------------------------------------

/// The original `HashSet`-based measures, kept here as the reference
/// implementation the production code is pinned against.
mod hash_reference {
    use std::collections::HashSet;

    fn to_set<'a>(tokens: &'a [String]) -> HashSet<&'a str> {
        tokens.iter().map(|t| t.as_str()).collect()
    }

    fn inter(a: &HashSet<&str>, b: &HashSet<&str>) -> usize {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small.iter().filter(|t| large.contains(*t)).count()
    }

    pub fn jaccard(a: &[String], b: &[String]) -> f64 {
        let (a, b) = (to_set(a), to_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let i = inter(&a, &b);
        i as f64 / (a.len() + b.len() - i) as f64
    }

    pub fn dice(a: &[String], b: &[String]) -> f64 {
        let (a, b) = (to_set(a), to_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        2.0 * inter(&a, &b) as f64 / (a.len() + b.len()) as f64
    }

    pub fn cosine(a: &[String], b: &[String]) -> f64 {
        let (a, b) = (to_set(a), to_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        inter(&a, &b) as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
    }

    pub fn overlap_coefficient(a: &[String], b: &[String]) -> f64 {
        let (a, b) = (to_set(a), to_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        inter(&a, &b) as f64 / a.len().min(b.len()) as f64
    }

    pub fn overlap_size(a: &[String], b: &[String]) -> usize {
        inter(&to_set(a), &to_set(b))
    }
}

/// Token bags with deliberately high duplicate rates (tiny alphabet,
/// repeated draws) so dedup behaviour is exercised hard; `0..6` length
/// includes the empty bag.
fn dup_bag() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[ab]{1,2}", 0..6)
}

proptest! {
    #[test]
    fn merge_setsim_bit_identical_to_hash_reference(a in dup_bag(), b in dup_bag()) {
        prop_assert_eq!(jaccard(&a, &b).to_bits(), hash_reference::jaccard(&a, &b).to_bits());
        prop_assert_eq!(dice(&a, &b).to_bits(), hash_reference::dice(&a, &b).to_bits());
        prop_assert_eq!(cosine(&a, &b).to_bits(), hash_reference::cosine(&a, &b).to_bits());
        prop_assert_eq!(
            overlap_coefficient(&a, &b).to_bits(),
            hash_reference::overlap_coefficient(&a, &b).to_bits()
        );
        prop_assert_eq!(overlap_size(&a, &b), hash_reference::overlap_size(&a, &b));
    }

    #[test]
    fn interned_kernels_bit_identical_to_string_measures(a in dup_bag(), b in dup_bag()) {
        use magellan_textsim::intern::{
            cosine_ids, dice_ids, jaccard_ids, overlap_coefficient_ids, overlap_size_ids,
            TokenInterner,
        };
        let mut it = TokenInterner::new();
        let ia = it.intern_set(&a);
        let ib = it.intern_set(&b);
        prop_assert_eq!(jaccard_ids(&ia, &ib).to_bits(), jaccard(&a, &b).to_bits());
        prop_assert_eq!(dice_ids(&ia, &ib).to_bits(), dice(&a, &b).to_bits());
        prop_assert_eq!(cosine_ids(&ia, &ib).to_bits(), cosine(&a, &b).to_bits());
        prop_assert_eq!(
            overlap_coefficient_ids(&ia, &ib).to_bits(),
            overlap_coefficient(&a, &b).to_bits()
        );
        prop_assert_eq!(overlap_size_ids(&ia, &ib), overlap_size(&a, &b));
    }

    #[test]
    fn empty_and_duplicate_edges_pinned(a in dup_bag()) {
        let empty: Vec<String> = Vec::new();
        // Two empty sets: maximally similar by convention.
        prop_assert_eq!(jaccard(&empty, &empty), 1.0);
        prop_assert_eq!(dice(&empty, &empty), 1.0);
        prop_assert_eq!(cosine(&empty, &empty), 1.0);
        prop_assert_eq!(overlap_coefficient(&empty, &empty), 1.0);
        // One empty set: 0.0 similarity, matching the hash reference.
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &empty), 0.0);
            prop_assert_eq!(jaccard(&a, &empty).to_bits(), hash_reference::jaccard(&a, &empty).to_bits());
            prop_assert_eq!(cosine(&empty, &a), 0.0);
        }
        // Duplicates never change a set measure: a bag vs its dedup.
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(jaccard(&a, &dedup), if a.is_empty() { 1.0 } else { 1.0 });
        let doubled: Vec<String> = a.iter().chain(a.iter()).cloned().collect();
        prop_assert_eq!(jaccard(&a, &doubled).to_bits(), jaccard(&a, &a).to_bits());
    }
}
