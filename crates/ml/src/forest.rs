//! Random forests: bagged CART trees with per-split feature sub-sampling.
//!
//! Falcon (§5.1 of the paper) needs more from a forest than `predict`:
//!
//! * the forest declares a pair a match when at least `α·n` trees vote
//!   match ([`RandomForestClassifier::vote_fraction`] exposes the raw vote);
//! * the trees themselves are walked to extract candidate blocking rules
//!   ([`RandomForestClassifier::trees`]);
//! * active learning selects the unlabeled examples with the most
//!   *disagreement* among trees (vote entropy), which again needs raw votes.

use magellan_par::ParConfig;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::model::{Classifier, Learner};
use crate::tree::{DecisionTreeClassifier, DecisionTreeLearner, SplitCriterion};

/// Random-forest hyper-parameters; [`Learner`] implementation.
#[derive(Debug, Clone)]
pub struct RandomForestLearner {
    /// Number of trees.
    pub n_trees: usize,
    /// Impurity criterion for every tree.
    pub criterion: SplitCriterion,
    /// Maximum depth of every tree.
    pub max_depth: usize,
    /// Minimum examples a node needs to be split.
    pub min_samples_split: usize,
    /// Minimum examples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` = `ceil(sqrt(n_features))`.
    pub max_features: Option<usize>,
    /// Draw a bootstrap sample per tree (true = classic bagging).
    pub bootstrap: bool,
    /// RNG seed (bootstrap + per-tree feature sampling).
    pub seed: u64,
    /// Worker threads for tree training (trees are independent, so the
    /// trained forest is **identical for any worker count**: each tree's
    /// RNG is derived from `(seed, tree index)`, never from scheduling).
    pub n_workers: usize,
}

impl Default for RandomForestLearner {
    fn default() -> Self {
        RandomForestLearner {
            n_trees: 10,
            criterion: SplitCriterion::Gini,
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            bootstrap: true,
            seed: 7,
            n_workers: 1,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
}

impl RandomForestClassifier {
    /// Reconstruct a forest from trained trees (the persistence path).
    pub fn from_trees(
        trees: Vec<DecisionTreeClassifier>,
    ) -> Result<RandomForestClassifier, String> {
        if trees.is_empty() {
            return Err("a forest needs at least one tree".to_owned());
        }
        Ok(RandomForestClassifier { trees })
    }

    /// The individual trees (Falcon walks these for blocking rules).
    pub fn trees(&self) -> &[DecisionTreeClassifier] {
        &self.trees
    }

    /// Fraction of trees voting "match" for the example (Falcon's α test).
    pub fn vote_fraction(&self, row: &[f64]) -> f64 {
        let votes = self
            .trees
            .iter()
            .filter(|t| t.predict(row))
            .count();
        votes as f64 / self.trees.len() as f64
    }

    /// Hard prediction at a vote-fraction threshold `alpha` (the paper's
    /// "at least α·n trees declare match").
    pub fn predict_at(&self, row: &[f64], alpha: f64) -> bool {
        self.vote_fraction(row) >= alpha
    }

    /// Parallel batch scoring: `out[i] == self.predict_proba(&rows[i])`
    /// bit-identically for any worker count (rows are chunked over the
    /// `magellan-par` pool and merged in order).
    ///
    /// Internally this flattens the forest into the SoA inference layout
    /// ([`crate::forest_flat::FlatForest`]) and scores through its
    /// branchless batch traversal; the flatten is a pure re-layout, so
    /// scores stay bit-identical to the scalar tree walk (the preserved
    /// [`predict_proba_batch`] free function — the reference the
    /// invariance suite compares against).
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>], cfg: &ParConfig) -> Vec<f64> {
        crate::forest_flat::FlatForest::from_forest(self).predict_proba_batch(rows, cfg)
    }

    /// Binary vote entropy in bits — the query-by-committee uncertainty
    /// active learning ranks unlabeled pairs by (max 1.0 at a 50/50 split).
    pub fn vote_entropy(&self, row: &[f64]) -> f64 {
        let p = self.vote_fraction(row);
        let mut h = 0.0;
        for q in [p, 1.0 - p] {
            if q > 0.0 {
                h -= q * q.log2();
            }
        }
        h
    }
}

impl Classifier for RandomForestClassifier {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        // Mean of per-tree leaf probabilities (soft voting).
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f64
    }

    fn predict(&self, row: &[f64]) -> bool {
        // Hard prediction = majority vote, matching the paper's semantics.
        self.vote_fraction(row) >= 0.5
    }
}

impl Learner for RandomForestLearner {
    fn name(&self) -> &str {
        "random_forest"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        Box::new(self.fit_forest(data))
    }

    fn ensemble_size(&self) -> usize {
        self.n_trees
    }
}

impl RandomForestLearner {
    /// Train and return the concrete forest type.
    ///
    /// Trees are trained on the `magellan-par` work-stealing pool when
    /// `n_workers > 1`. Each tree's bootstrap and feature-sampling RNGs are
    /// seeded from `(seed, tree index)` alone, so the forest is
    /// bit-identical for any worker count.
    pub fn fit_forest(&self, data: &Dataset) -> RandomForestClassifier {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(self.n_trees >= 1, "forest needs at least one tree");
        let max_features = self
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .clamp(1, data.n_features());
        let cfg = ParConfig::workers(self.n_workers).with_chunk_size(1);
        let (trees, _stats) = magellan_par::map_indexed(self.n_trees, &cfg, |t| {
            let sample: Vec<usize> = if self.bootstrap {
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        .wrapping_add((t as u64).wrapping_mul(0xA24BAED4963EE407)),
                );
                (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect()
            } else {
                (0..data.len()).collect()
            };
            let bag = data.subset(&sample);
            // Guard against a single-class bootstrap draw: the tree handles
            // it (pure root leaf), no special casing needed.
            let learner = DecisionTreeLearner {
                criterion: self.criterion,
                max_depth: self.max_depth,
                min_samples_split: self.min_samples_split,
                min_samples_leaf: self.min_samples_leaf,
                max_features: Some(max_features),
                seed: self.seed.wrapping_add(t as u64).wrapping_mul(0x9E3779B97F4A7C15),
            };
            learner.fit_tree(&bag)
        });
        RandomForestClassifier { trees }
    }
}

/// Batch scoring of any [`Classifier`] over the `magellan-par` pool.
/// `out[i] == clf.predict_proba(&rows[i])` for every worker count.
pub fn predict_proba_batch(
    clf: &dyn Classifier,
    rows: &[Vec<f64>],
    cfg: &ParConfig,
) -> Vec<f64> {
    magellan_par::map_indexed(rows.len(), cfg, |i| clf.predict_proba(&rows[i])).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy linearly separable data in 2D.
    fn blob_data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_dims(2);
        for _ in 0..n {
            let pos: bool = rng.gen_bool(0.5);
            let (cx, cy) = if pos { (1.0, 1.0) } else { (-1.0, -1.0) };
            let x = cx + rng.gen_range(-0.8..0.8);
            let y = cy + rng.gen_range(-0.8..0.8);
            d.push(&[x, y], pos);
        }
        d
    }

    #[test]
    fn forest_learns_separable_data() {
        let train = blob_data(1, 200);
        let test = blob_data(2, 100);
        let forest = RandomForestLearner {
            n_trees: 15,
            ..Default::default()
        }
        .fit_forest(&train);
        let correct = (0..test.len())
            .filter(|&i| forest.predict(test.row(i)) == test.label(i))
            .count();
        assert!(correct >= 95, "accuracy too low: {correct}/100");
    }

    #[test]
    fn vote_fraction_bounds_and_alpha() {
        let d = blob_data(3, 100);
        let forest = RandomForestLearner::default().fit_forest(&d);
        let row = [1.0, 1.0];
        let v = forest.vote_fraction(&row);
        assert!((0.0..=1.0).contains(&v));
        // predict_at(0.0) accepts anything a single tree accepts; alpha 1.0
        // requires unanimity — monotone in alpha.
        assert!(forest.predict_at(&row, 0.0));
        if forest.predict_at(&row, 1.0) {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn entropy_peaks_at_disagreement() {
        let d = blob_data(4, 150);
        let forest = RandomForestLearner {
            n_trees: 11,
            ..Default::default()
        }
        .fit_forest(&d);
        // Deep in the positive blob: low entropy. On the decision boundary
        // (origin): higher entropy than the confident point.
        let confident = forest.vote_entropy(&[1.2, 1.2]);
        let boundary = forest.vote_entropy(&[0.0, 0.0]);
        assert!(confident <= boundary + 1e-9, "{confident} > {boundary}");
        assert!((0.0..=1.0).contains(&boundary));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d = blob_data(5, 80);
        let mk = || {
            RandomForestLearner {
                n_trees: 5,
                seed: 99,
                ..Default::default()
            }
            .fit_forest(&d)
        };
        let (f1, f2) = (mk(), mk());
        for i in 0..d.len() {
            assert_eq!(
                f1.predict_proba(d.row(i)),
                f2.predict_proba(d.row(i))
            );
        }
    }

    #[test]
    fn trees_are_exposed() {
        let d = blob_data(6, 50);
        let forest = RandomForestLearner {
            n_trees: 7,
            ..Default::default()
        }
        .fit_forest(&d);
        assert_eq!(forest.trees().len(), 7);
        // Trees differ (bootstrap + feature sampling).
        let distinct = forest
            .trees()
            .iter()
            .map(|t| format!("{:?}", t.nodes()))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "all trees identical");
    }

    #[test]
    fn single_class_training_is_handled() {
        let d = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[true, true]);
        let forest = RandomForestLearner {
            n_trees: 3,
            ..Default::default()
        }
        .fit_forest(&d);
        assert!(forest.predict(&[1.5]));
        // Every tree is a pure 2-example leaf: Laplace-smoothed 0.75 each.
        assert_eq!(forest.predict_proba(&[1.5]), 0.75);
    }
}
