//! Intelligent down-sampling — the first pain-point tool of the guide.
//!
//! Randomly sampling both tables independently would destroy most matched
//! pairs (a random 10% of A × random 10% of B keeps only ~1% of matches).
//! Magellan's `down_sample` instead samples one table and then pulls, for
//! each sampled tuple, its most *lexically similar* tuples from the other
//! table via an inverted token index — preserving match pairs at small
//! sample sizes. That algorithm is reproduced here.

use std::collections::{HashMap, HashSet};

use magellan_table::Table;
use magellan_textsim::tokenize::{AlphanumericTokenizer, Tokenizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Tokenize the concatenation of all string attributes of each row.
fn row_tokens(t: &Table, exclude: &[&str]) -> Vec<Vec<String>> {
    let tok = AlphanumericTokenizer::as_set();
    let idxs: Vec<usize> = t
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| !exclude.contains(&f.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    t.rows()
        .map(|r| {
            let mut text = String::new();
            for &i in &idxs {
                let v = t.value(r, i);
                if !v.is_null() {
                    text.push_str(&v.display_string());
                    text.push(' ');
                }
            }
            tok.tokenize(&text)
        })
        .collect()
}

/// Down-sample two tables: keep `size_b` random rows of `B`, and for each
/// kept row, its `y/2` most token-overlapping rows of `A` plus `y/2`
/// random rows of `A`. Returns the row-index samples `(a_rows, b_rows)`.
///
/// `exclude` lists attributes (typically the keys) left out of the lexical
/// index.
pub fn down_sample_indices(
    a: &Table,
    b: &Table,
    size_b: usize,
    y: usize,
    exclude: &[&str],
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(y >= 2, "y must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);

    // Sample B rows.
    let mut b_rows: Vec<usize> = (0..b.nrows()).collect();
    b_rows.shuffle(&mut rng);
    b_rows.truncate(size_b.min(b.nrows()));
    b_rows.sort_unstable();

    // Inverted index over A's tokens.
    let a_tokens = row_tokens(a, exclude);
    let mut index: HashMap<&str, Vec<u32>> = HashMap::new();
    for (r, toks) in a_tokens.iter().enumerate() {
        for t in toks {
            index.entry(t.as_str()).or_default().push(r as u32);
        }
    }

    let b_tokens = row_tokens(b, exclude);
    let mut keep_a: HashSet<usize> = HashSet::new();
    let half = (y / 2).max(1);
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &rb in &b_rows {
        // Top `half` A rows by token overlap with this B row.
        counts.clear();
        for t in &b_tokens[rb] {
            if let Some(rows) = index.get(t.as_str()) {
                for &ra in rows {
                    *counts.entry(ra).or_insert(0) += 1;
                }
            }
        }
        let mut scored: Vec<(u32, u32)> = counts.iter().map(|(&r, &c)| (c, r)).collect();
        scored.sort_unstable_by(|x, y| y.cmp(x)); // overlap desc, row desc tiebreak
        for &(_, ra) in scored.iter().take(half) {
            keep_a.insert(ra as usize);
        }
        // Plus `half` random A rows for negative diversity.
        for _ in 0..half {
            if a.nrows() > 0 {
                keep_a.insert(rng.gen_range(0..a.nrows()));
            }
        }
    }
    let mut a_rows: Vec<usize> = keep_a.into_iter().collect();
    a_rows.sort_unstable();
    (a_rows, b_rows)
}

/// [`down_sample_indices`] materialized as tables.
pub fn down_sample(
    a: &Table,
    b: &Table,
    size_b: usize,
    y: usize,
    exclude: &[&str],
    seed: u64,
) -> (Table, Table) {
    let (a_rows, b_rows) = down_sample_indices(a, b, size_b, y, exclude, seed);
    (a.take(&a_rows), b.take(&b_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};

    #[test]
    fn preserves_matches_far_better_than_random_sampling() {
        let s = persons(&ScenarioConfig {
            size_a: 600,
            size_b: 600,
            n_matches: 200,
            dirt: DirtModel::light(),
            seed: 11,
        });
        let (a_rows, b_rows) =
            down_sample_indices(&s.table_a, &s.table_b, 150, 4, &["id"], 7);
        assert_eq!(b_rows.len(), 150);

        // Count gold pairs surviving in the sample.
        let a_ids: HashSet<String> = a_rows
            .iter()
            .map(|&r| s.table_a.value_by_name(r, "id").unwrap().display_string())
            .collect();
        let b_ids: HashSet<String> = b_rows
            .iter()
            .map(|&r| s.table_b.value_by_name(r, "id").unwrap().display_string())
            .collect();
        let kept = s
            .gold
            .iter()
            .filter(|(x, y)| a_ids.contains(x) && b_ids.contains(y))
            .count();
        // ~150/600 of B's side of gold lands in the sample (~50 pairs);
        // smart sampling should keep the A side for most of them.
        let b_side = s.gold.iter().filter(|(_, y)| b_ids.contains(y)).count();
        assert!(b_side > 20, "sanity: B sample hits gold, got {b_side}");
        let keep_rate = kept as f64 / b_side as f64;
        assert!(
            keep_rate > 0.6,
            "smart down-sample kept only {kept}/{b_side} reachable matches"
        );

        // Reference point: independent random sampling of A at the same
        // size would keep matches at rate ≈ |A'|/|A|; the index-guided
        // sampler must clearly beat that baseline.
        let frac = a_rows.len() as f64 / s.table_a.nrows() as f64;
        assert!(
            keep_rate > frac + 0.25,
            "keep rate {keep_rate} not better than random fraction {frac}"
        );
    }

    #[test]
    fn sample_sizes_are_respected() {
        let s = persons(&ScenarioConfig::small(3));
        let (a2, b2) = down_sample(&s.table_a, &s.table_b, 50, 6, &["id"], 1);
        assert_eq!(b2.nrows(), 50);
        assert!(a2.nrows() <= s.table_a.nrows());
        assert!(a2.nrows() >= 50, "A sample too small: {}", a2.nrows());
        assert_eq!(a2.schema(), s.table_a.schema());
    }

    #[test]
    fn oversized_request_clamps() {
        let s = persons(&ScenarioConfig {
            size_a: 30,
            size_b: 20,
            n_matches: 10,
            dirt: DirtModel::clean(),
            seed: 5,
        });
        let (_, b_rows) = down_sample_indices(&s.table_a, &s.table_b, 999, 4, &["id"], 2);
        assert_eq!(b_rows.len(), 20);
    }

    #[test]
    fn deterministic_in_seed() {
        let s = persons(&ScenarioConfig::small(9));
        let r1 = down_sample_indices(&s.table_a, &s.table_b, 40, 4, &["id"], 77);
        let r2 = down_sample_indices(&s.table_a, &s.table_b, 40, 4, &["id"], 77);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "y must be")]
    fn tiny_y_panics() {
        let s = persons(&ScenarioConfig::small(1));
        down_sample_indices(&s.table_a, &s.table_b, 10, 1, &["id"], 0);
    }
}
