//! CloudMatcher: self-service EM as a (simulated) cloud service.
//!
//! §5.1 of the paper: CloudMatcher 1.0 "break[s] each submitted EM
//! workflow into multiple DAG fragments, where each fragment performs only
//! one kind of task", routes fragments to three execution engines
//! (user-interaction, crowd, batch), and a *metamanager* interleaves
//! fragments from concurrent workflows.
//!
//! This module reproduces that architecture with the substitutions
//! documented in DESIGN.md: the crowd is a majority vote of simulated
//! noisy annotators with Mechanical-Turk-like fees and latency; compute
//! either runs on "our local machine" (no dollar cost) or on metered
//! "cloud" time; labeling latency is simulated time while compute time is
//! measured wall-clock. The per-task accounting reproduces every cost and
//! time column of Table 2, and the metamanager's event-driven schedule
//! shows the interleaving win (makespan well under the serial sum).

use std::collections::HashSet;
use std::time::Instant;

use magellan_core::evaluate::evaluate_matches;
use magellan_core::labeling::{Label, Labeler, OracleLabeler};
use magellan_core::MagellanError;
use magellan_faults::{FaultPlan, RetryPolicy};
use magellan_ml::Metrics;
use magellan_obs::EvVal;
use magellan_table::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::workflow::{run_falcon, FalconConfig, FalconReport};

/// The three CloudMatcher execution engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Interactive labeling by the submitting user.
    UserInteraction,
    /// Crowdsourced labeling (Mechanical Turk role).
    Crowd,
    /// Batch data processing (Hadoop/Spark role).
    Batch,
}

/// Cost and latency model for the simulated deployment.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fee per crowd vote (the paper's tasks paid cents per answer).
    pub crowd_fee_per_vote: f64,
    /// Votes solicited per crowd question (majority decides).
    pub crowd_votes: usize,
    /// Per-question crowd round-trip in simulated seconds (Turk latency:
    /// Table 2 shows 22–36 h for crowd tasks).
    pub crowd_latency_s: f64,
    /// Per-question single-user latency in simulated seconds (Table 2:
    /// 9 min – 2 h for 160–1200 questions).
    pub user_latency_s: f64,
    /// Metered compute price per hour (AWS role; Table 2's "$2.33").
    pub compute_dollars_per_hour: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            crowd_fee_per_vote: 0.02,
            // Five-way redundancy: at a 10% per-worker error rate the
            // majority answer is wrong only ~0.9% of the time, which the
            // blocking-rule learner tolerates; three-way (~2.8% wrong)
            // measurably poisons learned rules.
            crowd_votes: 5,
            crowd_latency_s: 90.0,
            user_latency_s: 6.0,
            compute_dollars_per_hour: 0.50,
        }
    }
}

/// Who labels a task's questions.
#[derive(Debug, Clone, Copy)]
pub enum LabelingMode {
    /// The submitting user labels, with the given error rate (0 = the
    /// ideal expert; the "Vehicles" expert of Table 2 was far from it).
    SingleUser {
        /// Per-question flip probability.
        error_rate: f64,
    },
    /// Crowd workers label; majority of `CostModel::crowd_votes` votes,
    /// each vote flipped with this probability.
    Crowd {
        /// Per-vote flip probability.
        worker_error_rate: f64,
    },
}

/// A submitted EM task.
pub struct TaskSpec<'a> {
    /// Task name (Table 2's first column).
    pub name: String,
    /// Left table.
    pub table_a: &'a Table,
    /// Right table.
    pub table_b: &'a Table,
    /// Key attribute of A.
    pub a_key: String,
    /// Key attribute of B.
    pub b_key: String,
    /// Gold matches for the oracle behind the labeler and for scoring.
    pub gold: &'a HashSet<(String, String)>,
    /// Labeling mode.
    pub labeling: LabelingMode,
    /// Billed cloud compute (true) vs. free local machine (false).
    pub on_cloud: bool,
    /// Falcon knobs.
    pub falcon: FalconConfig,
}

/// Per-task accounting — one row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskOutcome {
    /// Task name.
    pub name: String,
    /// |A|, |B|.
    pub rows: (usize, usize),
    /// Match precision against gold.
    pub precision: f64,
    /// Match recall against gold.
    pub recall: f64,
    /// Questions asked.
    pub questions: usize,
    /// Crowd dollars (0 for single-user tasks).
    pub crowd_cost: f64,
    /// Compute dollars (0 for local tasks).
    pub compute_cost: f64,
    /// Simulated labeling time, seconds.
    pub label_time_s: f64,
    /// Measured machine time, seconds.
    pub machine_time_s: f64,
    /// Candidate pairs examined.
    pub n_candidates: usize,
    /// Crowd votes that never showed up and were re-solicited (0 unless
    /// the service runs under a [`FaultPlan`]).
    pub crowd_no_shows: usize,
    /// Questions the crowd abandoned entirely, answered instead by the
    /// submitting user (the crowd→single-user degradation path).
    pub crowd_degraded_questions: usize,
}

impl TaskOutcome {
    /// Label + machine time.
    pub fn total_time_s(&self) -> f64 {
        self.label_time_s + self.machine_time_s
    }
}

/// A crowd labeler: majority vote over noisy votes, with fee accounting.
///
/// Under a non-empty [`FaultPlan`], individual votes can be **no-shows**
/// (the Turker accepts the HIT and never answers): the labeler solicits a
/// replacement vote (a fresh vote id), paying only for delivered votes.
/// A question whose replacement budget is exhausted is **degraded** to
/// the submitting user, who answers it directly — the crowd→single-user
/// fallback of the self-healing metamanager.
struct CrowdLabeler {
    oracle: OracleLabeler,
    votes: usize,
    worker_error_rate: f64,
    rng: StdRng,
    fees: f64,
    fee_per_vote: f64,
    /// Seeded no-show source; [`FaultPlan::none`] disables injection.
    plan: FaultPlan,
    /// Monotonic question id for no-show keying.
    next_question: u64,
    /// Votes that never arrived (re-solicited).
    no_shows: usize,
    /// Questions handed back to the submitting user.
    degraded: usize,
}

impl Labeler for CrowdLabeler {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        let truth = self.oracle.label(a, ra, b, rb);
        let qid = self.next_question;
        self.next_question += 1;
        let mut yes = 0usize;
        let mut delivered = 0usize;
        // Replacement budget: a question may burn at most one extra batch
        // of solicitations before the service gives up on the crowd.
        let cap = (self.votes * 2) as u64;
        let mut vote_id = 0u64;
        while delivered < self.votes && vote_id < cap {
            if self.plan.crowd_no_show(qid, vote_id) {
                self.no_shows += 1;
                vote_id += 1;
                magellan_obs::counter_add("magellan_falcon_crowd_no_shows_total", 1);
                continue;
            }
            let vote = if self.rng.gen_bool(self.worker_error_rate) {
                truth != Label::Match
            } else {
                truth == Label::Match
            };
            if vote {
                yes += 1;
            }
            self.fees += self.fee_per_vote;
            delivered += 1;
            vote_id += 1;
        }
        if delivered < self.votes {
            // The crowd abandoned this question: degrade to the
            // submitting user, whose answer is authoritative (and free).
            self.degraded += 1;
            magellan_obs::counter_add("magellan_falcon_crowd_degraded_total", 1);
            magellan_obs::event("crowd_question_degraded", &[("question", EvVal::U(qid))]);
            return truth;
        }
        if yes * 2 > self.votes {
            Label::Match
        } else {
            Label::NoMatch
        }
    }

    fn questions_asked(&self) -> usize {
        self.oracle.questions_asked()
    }
}

/// A single (possibly imperfect) user.
struct UserLabeler {
    oracle: OracleLabeler,
    error_rate: f64,
    rng: StdRng,
}

impl Labeler for UserLabeler {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        let truth = self.oracle.label(a, ra, b, rb);
        if self.error_rate > 0.0 && self.rng.gen_bool(self.error_rate) {
            if truth == Label::Match {
                Label::NoMatch
            } else {
                Label::Match
            }
        } else {
            truth
        }
    }

    fn questions_asked(&self) -> usize {
        self.oracle.questions_asked()
    }
}

/// One engine-tagged fragment of a task's DAG, with its duration.
#[derive(Debug, Clone, Copy)]
pub struct Fragment {
    /// Engine the fragment runs on.
    pub engine: Engine,
    /// Duration in (simulated or measured) seconds.
    pub duration_s: f64,
}

/// What the self-healing metamanager did while scheduling: damage
/// absorbed per recovery mechanism. All zeros for a fault-free schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScheduleTelemetry {
    /// Fragment attempts that failed and were retried with backoff.
    pub fragment_retries: u32,
    /// Straggler attempts killed at the per-fragment budget and rerun.
    pub fragments_timed_out: u32,
    /// Crowd fragments rerouted to the submitting user (degradation).
    pub fragments_rerouted: u32,
    /// Speculative backup copies launched for straggler batch fragments.
    pub speculative_launched: u32,
    /// Backups that finished before the straggling original.
    pub speculative_wins: u32,
    /// Total simulated backoff spent between fragment retries, seconds.
    pub backoff_s: f64,
}

impl ScheduleTelemetry {
    /// Publish the metamanager's recovery counters into the ambient
    /// [`magellan_obs`] recorder as `magellan_falcon_*` metrics. No-op
    /// for a fault-free (all-zero) schedule so clean runs export no
    /// falcon noise.
    pub fn publish(&self) {
        if *self == ScheduleTelemetry::default() {
            return;
        }
        magellan_obs::counter_add(
            "magellan_falcon_fragment_retries_total",
            u64::from(self.fragment_retries),
        );
        magellan_obs::counter_add(
            "magellan_falcon_fragments_timed_out_total",
            u64::from(self.fragments_timed_out),
        );
        magellan_obs::counter_add(
            "magellan_falcon_fragments_rerouted_total",
            u64::from(self.fragments_rerouted),
        );
        magellan_obs::counter_add(
            "magellan_falcon_speculative_launched_total",
            u64::from(self.speculative_launched),
        );
        magellan_obs::counter_add(
            "magellan_falcon_speculative_wins_total",
            u64::from(self.speculative_wins),
        );
        magellan_obs::gauge_set("magellan_falcon_backoff_seconds", self.backoff_s);
    }
}

/// The metamanager's schedule summary.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Wall-clock of running every task serially (sum of fragments).
    pub serial_total_s: f64,
    /// Simulated makespan with fragment interleaving.
    pub interleaved_makespan_s: f64,
    /// Busy seconds per engine.
    pub busy: Vec<(Engine, f64)>,
    /// Batch-engine worker slots used in the simulation.
    pub batch_slots: usize,
    /// Recovery counters (all zeros under [`schedule_fragments`];
    /// populated by [`schedule_fragments_with_recovery`]).
    pub telemetry: ScheduleTelemetry,
}

impl ScheduleReport {
    /// serial / interleaved speedup.
    pub fn speedup(&self) -> f64 {
        if self.interleaved_makespan_s == 0.0 {
            1.0
        } else {
            self.serial_total_s / self.interleaved_makespan_s
        }
    }
}

/// The CloudMatcher service: runs tasks, accounts costs, and schedules
/// fragments across engines.
#[derive(Debug, Clone, Copy)]
pub struct CloudMatcher {
    /// Cost/latency model.
    pub cost_model: CostModel,
    /// Batch-engine worker slots for the metamanager simulation.
    pub batch_slots: usize,
    /// Seed for the simulated annotators.
    pub seed: u64,
    /// Seeded fault plan for the chaos suite; [`FaultPlan::none`] (the
    /// default) runs the service fault-free.
    pub faults: FaultPlan,
}

impl Default for CloudMatcher {
    fn default() -> Self {
        CloudMatcher {
            cost_model: CostModel::default(),
            batch_slots: 4,
            seed: 7,
            faults: FaultPlan::none(),
        }
    }
}

/// Everything the labeling phase of one task produced — shared by
/// [`CloudMatcher::run_task`] (which accounts machine time by wall
/// clock) and the multi-tenant service layer (which must account it on
/// the simulated clock to stay bit-deterministic).
pub(crate) struct LabelRun {
    /// The Falcon run report.
    pub report: FalconReport,
    /// Total questions asked.
    pub questions: usize,
    /// Crowd fees paid (0 for single-user labeling).
    pub crowd_cost: f64,
    /// Simulated per-question round-trip latency.
    pub per_q_latency_s: f64,
    /// Which engine answered questions.
    pub label_engine: Engine,
    /// Crowd votes that never arrived.
    pub no_shows: usize,
    /// Questions degraded from the crowd to the submitting user.
    pub degraded: usize,
}

/// Run the Falcon workflow for one task under the given labeling mode.
/// A pure function of `(spec, seed, faults, cost model)` — every source
/// of randomness is seeded — which is what makes a tenant's outcome in
/// the service layer byte-identical to its solo run.
pub(crate) fn execute_labeling(
    spec: &TaskSpec<'_>,
    seed: u64,
    faults: FaultPlan,
    cm: &CostModel,
) -> magellan_table::Result<LabelRun> {
    let oracle = OracleLabeler::new(spec.gold.clone(), &spec.a_key, &spec.b_key);
    match spec.labeling {
        LabelingMode::SingleUser { error_rate } => {
            let mut labeler = UserLabeler {
                oracle,
                error_rate,
                rng: StdRng::seed_from_u64(seed ^ 0x11),
            };
            let report =
                run_falcon(spec.table_a, spec.table_b, &spec.a_key, &spec.b_key, &mut labeler, &spec.falcon)?;
            Ok(LabelRun {
                questions: labeler.questions_asked(),
                report,
                crowd_cost: 0.0,
                per_q_latency_s: cm.user_latency_s,
                label_engine: Engine::UserInteraction,
                no_shows: 0,
                degraded: 0,
            })
        }
        LabelingMode::Crowd { worker_error_rate } => {
            let mut labeler = CrowdLabeler {
                oracle,
                votes: cm.crowd_votes,
                worker_error_rate,
                rng: StdRng::seed_from_u64(seed ^ 0x22),
                fees: 0.0,
                fee_per_vote: cm.crowd_fee_per_vote,
                plan: faults,
                next_question: 0,
                no_shows: 0,
                degraded: 0,
            };
            let report =
                run_falcon(spec.table_a, spec.table_b, &spec.a_key, &spec.b_key, &mut labeler, &spec.falcon)?;
            Ok(LabelRun {
                questions: labeler.questions_asked(),
                crowd_cost: labeler.fees,
                per_q_latency_s: cm.crowd_latency_s,
                label_engine: Engine::Crowd,
                no_shows: labeler.no_shows,
                degraded: labeler.degraded,
                report,
            })
        }
    }
}

/// Score a Falcon match set against gold.
pub(crate) fn score_matches(
    spec: &TaskSpec<'_>,
    report: &FalconReport,
) -> magellan_table::Result<Metrics> {
    evaluate_matches(
        &report.matches,
        spec.table_a,
        spec.table_b,
        &spec.a_key,
        &spec.b_key,
        spec.gold,
    )
}

/// Stable FNV-1a hash of a task name, used to key task spans.
pub(crate) fn name_key(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

impl CloudMatcher {
    /// Run one task end to end; returns its Table 2 row and its DAG
    /// fragments for the metamanager.
    pub fn run_task(
        &self,
        spec: &TaskSpec<'_>,
    ) -> magellan_table::Result<(TaskOutcome, Vec<Fragment>)> {
        // Key the task span by a stable hash of the task name so traces
        // of multi-task submissions keep one span per task.
        let _task_span = magellan_obs::span("falcon_task", name_key(&spec.name));
        let cm = self.cost_model;

        let t0 = Instant::now();
        let run = execute_labeling(spec, self.seed, self.faults, &cm)?;
        let machine_time_s = t0.elapsed().as_secs_f64();

        let label_time_s = run.questions as f64 * run.per_q_latency_s;
        let compute_cost = if spec.on_cloud {
            machine_time_s / 3600.0 * cm.compute_dollars_per_hour
        } else {
            0.0
        };
        let metrics = score_matches(spec, &run.report)?;

        let q_block_time = run.report.questions_blocking as f64 * run.per_q_latency_s;
        let q_match_time = run.report.questions_matching as f64 * run.per_q_latency_s;
        let fragments = vec![
            Fragment {
                engine: run.label_engine,
                duration_s: q_block_time,
            },
            Fragment {
                engine: Engine::Batch,
                duration_s: machine_time_s * 0.5,
            },
            Fragment {
                engine: run.label_engine,
                duration_s: q_match_time,
            },
            Fragment {
                engine: Engine::Batch,
                duration_s: machine_time_s * 0.5,
            },
        ];
        let outcome = TaskOutcome {
            name: spec.name.clone(),
            rows: (spec.table_a.nrows(), spec.table_b.nrows()),
            precision: metrics.precision(),
            recall: metrics.recall(),
            questions: run.questions,
            crowd_cost: run.crowd_cost,
            compute_cost,
            label_time_s,
            machine_time_s,
            n_candidates: run.report.n_candidates,
            crowd_no_shows: run.no_shows,
            crowd_degraded_questions: run.degraded,
        };
        Ok((outcome, fragments))
    }

    /// Run several tasks and schedule their fragments — CloudMatcher 1.0's
    /// metamanager. Fragments within a task are a chain; fragments of
    /// different tasks interleave. User-interaction fragments never
    /// contend (each task has its own user), the crowd is effectively
    /// unbounded, and the batch engine has `batch_slots` workers.
    pub fn run_tasks(
        &self,
        specs: &[TaskSpec<'_>],
    ) -> magellan_table::Result<(Vec<TaskOutcome>, ScheduleReport)> {
        let mut outcomes = Vec::with_capacity(specs.len());
        let mut chains: Vec<Vec<Fragment>> = Vec::with_capacity(specs.len());
        for spec in specs {
            let (outcome, fragments) = self.run_task(spec)?;
            outcomes.push(outcome);
            chains.push(fragments);
        }
        let schedule = if self.faults.is_none() {
            schedule_fragments(&chains, self.batch_slots)
        } else {
            schedule_fragments_with_recovery(
                &chains,
                self.batch_slots,
                &ScheduleRecoveryOptions {
                    faults: self.faults,
                    ..ScheduleRecoveryOptions::default()
                },
            )
        };
        Ok((outcomes, schedule))
    }
}

/// Simulated seconds → trace nanoseconds (saturating, NaN/∞-safe).
pub(crate) fn sim_ns(s: f64) -> u64 {
    if s.is_finite() && s > 0.0 {
        (s * 1e9).round() as u64
    } else {
        0
    }
}

/// Static span name for a fragment's engine.
pub(crate) fn engine_span_name(e: Engine) -> &'static str {
    match e {
        Engine::UserInteraction => "frag_user",
        Engine::Crowd => "frag_crowd",
        Engine::Batch => "frag_batch",
    }
}

/// Event-driven interleaving of task chains across engines.
///
/// When a [`magellan_obs`] recorder is installed, the simulated timeline
/// is mirrored into it: a `schedule` span with one
/// `frag_user`/`frag_crowd`/`frag_batch` child per placed fragment,
/// recorded at its simulated start/finish via
/// [`magellan_obs::record_span_at`] (key = `chain << 32 | index`), plus
/// `magellan_falcon_schedule_*` gauges on the report totals.
pub fn schedule_fragments(chains: &[Vec<Fragment>], batch_slots: usize) -> ScheduleReport {
    // Zero slots is clamped here for backwards compatibility; callers
    // that want the typed error use [`try_schedule_fragments`].
    schedule_fragments_impl(chains, batch_slots.max(1))
}

/// [`schedule_fragments`] with configuration validation instead of
/// clamping: `batch_slots == 0` is a fatal [`MagellanError::Config`],
/// never a panic — there is no sensible schedule for a batch engine with
/// no workers.
pub fn try_schedule_fragments(
    chains: &[Vec<Fragment>],
    batch_slots: usize,
) -> Result<ScheduleReport, MagellanError> {
    if batch_slots == 0 {
        return Err(MagellanError::Config {
            message: "batch_slots must be >= 1 (the batch engine needs at least one worker)"
                .into(),
        });
    }
    Ok(schedule_fragments_impl(chains, batch_slots))
}

fn schedule_fragments_impl(chains: &[Vec<Fragment>], batch_slots: usize) -> ScheduleReport {
    let sched_span = magellan_obs::span("schedule", 0);
    debug_assert!(batch_slots >= 1);
    let mut slot_free = vec![0.0f64; batch_slots];
    // (next fragment index, ready time) per chain.
    let mut next = vec![(0usize, 0.0f64); chains.len()];
    let mut busy: std::collections::HashMap<Engine, f64> = std::collections::HashMap::new();
    let mut makespan = 0.0f64;
    let serial_total: f64 = chains
        .iter()
        .flat_map(|c| c.iter().map(|f| f.duration_s))
        .sum();

    loop {
        // Pick the ready chain whose next fragment can start earliest.
        let mut best: Option<(f64, usize)> = None; // (start time, chain)
        for (c, &(i, ready)) in next.iter().enumerate() {
            if i >= chains[c].len() {
                continue;
            }
            let frag = chains[c][i];
            let start = match frag.engine {
                Engine::Batch => {
                    let earliest = slot_free
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min);
                    ready.max(earliest)
                }
                _ => ready,
            };
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, c));
            }
        }
        let Some((start, c)) = best else { break };
        let (i, _) = next[c];
        let frag = chains[c][i];
        let finish = start + frag.duration_s;
        if frag.engine == Engine::Batch {
            // Occupy the earliest-free slot. A plain index fold — not
            // `min_by(...).expect(...)` — so an empty slot vector could
            // never panic even if the validation above were bypassed.
            let mut slot = 0usize;
            for (s, &free) in slot_free.iter().enumerate() {
                if free < slot_free[slot] {
                    slot = s;
                }
            }
            if let Some(t) = slot_free.get_mut(slot) {
                *t = finish;
            }
        }
        *busy.entry(frag.engine).or_insert(0.0) += frag.duration_s;
        magellan_obs::record_span_at(
            None,
            engine_span_name(frag.engine),
            (c as u64) << 32 | i as u64,
            sim_ns(start),
            sim_ns(finish),
        );
        next[c] = (i + 1, finish);
        makespan = makespan.max(finish);
    }

    magellan_obs::gauge_set("magellan_falcon_schedule_serial_seconds", serial_total);
    magellan_obs::gauge_set("magellan_falcon_schedule_makespan_seconds", makespan);
    drop(sched_span);

    let mut busy: Vec<(Engine, f64)> = busy.into_iter().collect();
    busy.sort_by_key(|(e, _)| format!("{e:?}"));
    ScheduleReport {
        serial_total_s: serial_total,
        interleaved_makespan_s: makespan,
        busy,
        batch_slots,
        telemetry: ScheduleTelemetry::default(),
    }
}

/// Knobs for [`schedule_fragments_with_recovery`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduleRecoveryOptions {
    /// Seeded fault source; [`FaultPlan::none`] reproduces the plain
    /// scheduler exactly.
    pub faults: FaultPlan,
    /// Backoff schedule for failed fragment attempts.
    pub retry: RetryPolicy,
    /// Per-fragment budget in simulated seconds. A straggler-inflated
    /// attempt that would exceed it is killed at the budget mark and
    /// rerun at nominal speed (rescheduled off the slow machine).
    /// Nominal attempts are never killed, so the scheduler always
    /// converges. `f64::INFINITY` disables timeouts.
    pub fragment_timeout_s: f64,
    /// Duration multiplier when a crowd fragment degrades to the
    /// submitting user (default 1/15: a 6 s user answer vs. a 90 s crowd
    /// round-trip, per [`CostModel::default`]).
    pub degrade_factor: f64,
    /// Launch a speculative backup when an attempt's effective duration
    /// exceeds `nominal × this` (clamped to ≥ 1). The backup starts at
    /// `t = nominal` and runs at nominal speed; the fragment finishes
    /// when either copy does.
    pub speculate_threshold: f64,
}

impl Default for ScheduleRecoveryOptions {
    fn default() -> Self {
        ScheduleRecoveryOptions {
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            fragment_timeout_s: f64::INFINITY,
            degrade_factor: 1.0 / 15.0,
            speculate_threshold: 1.5,
        }
    }
}

/// Resolve one fragment's fate under the fault plan: which engine it
/// ultimately runs on and how long it occupies the schedule, including
/// failed attempts, backoff, timeouts, degradation, and speculation.
/// Returns the resolved fragment plus extra batch busy-seconds burned by
/// a speculative backup copy.
pub(crate) fn resolve_fragment(
    task: u64,
    fid: u64,
    frag: Fragment,
    opts: &ScheduleRecoveryOptions,
    tel: &mut ScheduleTelemetry,
) -> (Fragment, f64) {
    let plan = &opts.faults;
    let mut engine = frag.engine;
    let mut nominal = frag.duration_s;
    let mut total = 0.0f64;
    let mut extra_batch_busy = 0.0f64;

    // Crowd that never picks the fragment up: repost once (backoff), then
    // hand it to the submitting user at single-user speed.
    if engine == Engine::Crowd && plan.crowd_no_show(task, fid) {
        let repost = opts.retry.delay_s(1);
        total += repost;
        tel.backoff_s += repost;
        tel.fragments_rerouted += 1;
        engine = Engine::UserInteraction;
        nominal *= opts.degrade_factor;
        magellan_obs::event(
            "fragment_degraded",
            &[
                ("task", EvVal::U(task)),
                ("fragment", EvVal::U(fid)),
                ("to", EvVal::S("user")),
            ],
        );
    }

    let spec_threshold = opts.speculate_threshold.max(1.0);
    let mut attempt: u32 = 0;
    loop {
        // Injected attempt failure: the fragment dies halfway, the
        // metamanager backs off and retries. Bounded per site, so the
        // loop always reaches a completing attempt.
        if plan.fragment_fails(task, fid, attempt) && opts.retry.allows(attempt + 1) {
            let backoff = opts.retry.delay_s(attempt + 1);
            tel.fragment_retries += 1;
            tel.backoff_s += backoff;
            total += nominal * 0.5 + backoff;
            attempt += 1;
            magellan_obs::event(
                "fragment_retry_scheduled",
                &[
                    ("task", EvVal::U(task)),
                    ("fragment", EvVal::U(fid)),
                    ("attempt", EvVal::U(u64::from(attempt))),
                ],
            );
            continue;
        }
        // This attempt completes. Attempt 0 of a batch fragment may land
        // on a straggling machine; re-executions run at nominal speed.
        let dur = if engine == Engine::Batch && attempt == 0 {
            plan.straggler_duration_s(task, fid, nominal)
        } else {
            nominal
        };
        if dur > nominal && dur > opts.fragment_timeout_s {
            // The inflated attempt blows the fragment budget: kill it at
            // the budget mark and reschedule elsewhere.
            let backoff = opts.retry.delay_s(attempt + 1);
            tel.fragments_timed_out += 1;
            tel.backoff_s += backoff;
            total += opts.fragment_timeout_s + backoff;
            attempt += 1;
            magellan_obs::event(
                "fragment_timed_out",
                &[
                    ("task", EvVal::U(task)),
                    ("fragment", EvVal::U(fid)),
                    ("budget_s", EvVal::F(opts.fragment_timeout_s)),
                ],
            );
            continue;
        }
        if dur > nominal * spec_threshold {
            // Straggler within budget: launch a backup at t = nominal
            // running at nominal speed; take whichever finishes first.
            tel.speculative_launched += 1;
            let backup_finish = 2.0 * nominal;
            let effective = dur.min(backup_finish);
            if backup_finish < dur {
                tel.speculative_wins += 1;
            }
            magellan_obs::event(
                "straggler_speculated",
                &[
                    ("task", EvVal::U(task)),
                    ("fragment", EvVal::U(fid)),
                    ("backup_won", EvVal::U(u64::from(backup_finish < dur))),
                ],
            );
            // The backup occupies a second batch slot from its launch
            // until the fragment resolves.
            extra_batch_busy += effective - nominal;
            total += effective;
            break;
        }
        total += dur;
        break;
    }
    (Fragment { engine, duration_s: total }, extra_batch_busy)
}

/// [`schedule_fragments`] hardened against a [`FaultPlan`]: fragment
/// attempts can fail (retried with exponential backoff in simulated
/// time), batch fragments can straggle (speculatively re-executed or
/// killed at a per-fragment timeout), and crowd fragments can be
/// abandoned (rerouted to the submitting user). With
/// [`FaultPlan::none`] the result is identical to the plain scheduler.
pub fn schedule_fragments_with_recovery(
    chains: &[Vec<Fragment>],
    batch_slots: usize,
    opts: &ScheduleRecoveryOptions,
) -> ScheduleReport {
    schedule_fragments_with_recovery_impl(chains, batch_slots.max(1), opts)
}

/// [`schedule_fragments_with_recovery`] with `batch_slots` validation
/// instead of clamping (see [`try_schedule_fragments`]).
pub fn try_schedule_fragments_with_recovery(
    chains: &[Vec<Fragment>],
    batch_slots: usize,
    opts: &ScheduleRecoveryOptions,
) -> Result<ScheduleReport, MagellanError> {
    if batch_slots == 0 {
        return Err(MagellanError::Config {
            message: "batch_slots must be >= 1 (the batch engine needs at least one worker)"
                .into(),
        });
    }
    Ok(schedule_fragments_with_recovery_impl(chains, batch_slots, opts))
}

fn schedule_fragments_with_recovery_impl(
    chains: &[Vec<Fragment>],
    batch_slots: usize,
    opts: &ScheduleRecoveryOptions,
) -> ScheduleReport {
    let mut tel = ScheduleTelemetry::default();
    let mut extra_batch_busy = 0.0f64;
    let resolved: Vec<Vec<Fragment>> = chains
        .iter()
        .enumerate()
        .map(|(c, chain)| {
            chain
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let (frag, extra) =
                        resolve_fragment(c as u64, i as u64, *f, opts, &mut tel);
                    extra_batch_busy += extra;
                    frag
                })
                .collect()
        })
        .collect();
    let mut rep = schedule_fragments(&resolved, batch_slots);
    if extra_batch_busy > 0.0 {
        match rep.busy.iter_mut().find(|(e, _)| *e == Engine::Batch) {
            Some((_, b)) => *b += extra_batch_busy,
            None => rep.busy.push((Engine::Batch, extra_batch_busy)),
        }
    }
    tel.publish();
    rep.telemetry = tel;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};

    fn small_falcon() -> FalconConfig {
        FalconConfig {
            sample_size: 300,
            ..Default::default()
        }
    }

    fn scenario(seed: u64) -> magellan_datagen::EmScenario {
        persons(&ScenarioConfig {
            size_a: 250,
            size_b: 250,
            n_matches: 80,
            dirt: DirtModel::light(),
            seed,
        })
    }

    #[test]
    fn single_user_task_accounts_costs_and_accuracy() {
        let s = scenario(61);
        let cm = CloudMatcher::default();
        let spec = TaskSpec {
            name: "persons".into(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".into(),
            b_key: "id".into(),
            gold: &s.gold,
            labeling: LabelingMode::SingleUser { error_rate: 0.0 },
            on_cloud: false,
            falcon: small_falcon(),
        };
        let (outcome, fragments) = cm.run_task(&spec).unwrap();
        assert_eq!(outcome.crowd_cost, 0.0);
        assert_eq!(outcome.compute_cost, 0.0);
        assert!(outcome.precision > 0.75, "{outcome:?}");
        assert!(outcome.recall > 0.6, "{outcome:?}");
        assert!(outcome.questions > 0);
        assert!(
            (outcome.label_time_s - outcome.questions as f64 * 6.0).abs() < 1e-9
        );
        assert_eq!(fragments.len(), 4);
        assert!(fragments
            .iter()
            .any(|f| f.engine == Engine::UserInteraction));
    }

    #[test]
    fn crowd_task_costs_dollars_and_is_slower() {
        let s = scenario(62);
        let cm = CloudMatcher::default();
        let spec = TaskSpec {
            name: "persons-crowd".into(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".into(),
            b_key: "id".into(),
            gold: &s.gold,
            labeling: LabelingMode::Crowd {
                worker_error_rate: 0.1,
            },
            on_cloud: true,
            falcon: small_falcon(),
        };
        let (outcome, _) = cm.run_task(&spec).unwrap();
        let votes = CloudMatcher::default().cost_model.crowd_votes as f64;
        let expected = outcome.questions as f64 * votes * 0.02;
        assert!((outcome.crowd_cost - expected).abs() < 1e-9);
        assert!(outcome.compute_cost > 0.0);
        // Crowd latency dwarfs single-user latency.
        assert!(outcome.label_time_s > outcome.questions as f64 * 80.0);
        // Majority vote largely absorbs 10% worker noise.
        assert!(outcome.precision > 0.7, "{outcome:?}");
    }

    #[test]
    fn metamanager_interleaving_beats_serial() {
        // Synthetic chains: label (no contention) then batch.
        let chains: Vec<Vec<Fragment>> = (0..6)
            .map(|_| {
                vec![
                    Fragment {
                        engine: Engine::UserInteraction,
                        duration_s: 100.0,
                    },
                    Fragment {
                        engine: Engine::Batch,
                        duration_s: 50.0,
                    },
                ]
            })
            .collect();
        let rep = schedule_fragments(&chains, 3);
        assert_eq!(rep.serial_total_s, 900.0);
        // 6 users label in parallel (100s), then 6 batch fragments over 3
        // slots (2 waves of 50s) => 200s.
        assert!((rep.interleaved_makespan_s - 200.0).abs() < 1e-9);
        assert!(rep.speedup() > 4.0);
        let batch_busy = rep
            .busy
            .iter()
            .find(|(e, _)| *e == Engine::Batch)
            .unwrap()
            .1;
        assert_eq!(batch_busy, 300.0);
    }

    #[test]
    fn batch_contention_is_respected() {
        let chains: Vec<Vec<Fragment>> = (0..4)
            .map(|_| {
                vec![Fragment {
                    engine: Engine::Batch,
                    duration_s: 10.0,
                }]
            })
            .collect();
        let rep = schedule_fragments(&chains, 1);
        assert!((rep.interleaved_makespan_s - 40.0).abs() < 1e-9);
        let rep = schedule_fragments(&chains, 4);
        assert!((rep.interleaved_makespan_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_batch_slots_is_a_typed_error_never_a_panic() {
        let chains = vec![vec![Fragment {
            engine: Engine::Batch,
            duration_s: 10.0,
        }]];
        let err = try_schedule_fragments(&chains, 0).unwrap_err();
        assert!(matches!(err, MagellanError::Config { .. }), "{err}");
        assert!(err.fatal(), "bad configuration is not retryable");
        assert!(err.to_string().contains("batch_slots"), "{err}");
        let err = try_schedule_fragments_with_recovery(
            &chains,
            0,
            &ScheduleRecoveryOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MagellanError::Config { .. }), "{err}");
        // The clamping legacy entry points still accept 0 and treat it
        // as one slot.
        let rep = schedule_fragments(&chains, 0);
        assert_eq!(rep.batch_slots, 1);
        assert!((rep.interleaved_makespan_s - 10.0).abs() < 1e-9);
        // And the validated path agrees with the plain one when valid.
        let ok = try_schedule_fragments(&chains, 2).unwrap();
        assert_eq!(ok.interleaved_makespan_s, schedule_fragments(&chains, 2).interleaved_makespan_s);
    }

    #[test]
    fn empty_schedule_is_zero() {
        let rep = schedule_fragments(&[], 2);
        assert_eq!(rep.serial_total_s, 0.0);
        assert_eq!(rep.interleaved_makespan_s, 0.0);
        // Zero-denominator convention: an empty schedule speeds nothing
        // up, so the ratio is the neutral 1.0 — finite, never NaN/∞.
        assert_eq!(rep.speedup(), 1.0);
        assert!(rep.speedup().is_finite());
        assert_eq!(rep.telemetry, ScheduleTelemetry::default());
    }

    fn synthetic_chains() -> Vec<Vec<Fragment>> {
        (0..6)
            .map(|_| {
                vec![
                    Fragment {
                        engine: Engine::Crowd,
                        duration_s: 100.0,
                    },
                    Fragment {
                        engine: Engine::Batch,
                        duration_s: 50.0,
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn recovery_scheduler_without_faults_is_identical() {
        let chains = synthetic_chains();
        let plain = schedule_fragments(&chains, 3);
        let rec =
            schedule_fragments_with_recovery(&chains, 3, &ScheduleRecoveryOptions::default());
        assert_eq!(plain.interleaved_makespan_s, rec.interleaved_makespan_s);
        assert_eq!(plain.serial_total_s, rec.serial_total_s);
        assert_eq!(plain.busy, rec.busy);
        assert_eq!(rec.telemetry, ScheduleTelemetry::default());
    }

    #[test]
    fn fragment_failures_are_retried_with_backoff() {
        let chains = synthetic_chains();
        let opts = ScheduleRecoveryOptions {
            faults: FaultPlan {
                fragment_failure_per_mille: 1000,
                straggler_per_mille: 0,
                crowd_no_show_per_mille: 0,
                ..FaultPlan::seeded(41)
            },
            ..ScheduleRecoveryOptions::default()
        };
        let rec = schedule_fragments_with_recovery(&chains, 3, &opts);
        assert!(rec.telemetry.fragment_retries > 0);
        assert!(rec.telemetry.backoff_s > 0.0);
        let plain = schedule_fragments(&chains, 3);
        assert!(rec.interleaved_makespan_s > plain.interleaved_makespan_s);
        // Deterministic: the same plan yields the same schedule.
        let again = schedule_fragments_with_recovery(&chains, 3, &opts);
        assert_eq!(rec.interleaved_makespan_s, again.interleaved_makespan_s);
        assert_eq!(rec.telemetry, again.telemetry);
    }

    #[test]
    fn straggling_batch_fragments_get_speculative_backups() {
        let chains = synthetic_chains();
        let opts = ScheduleRecoveryOptions {
            faults: FaultPlan {
                straggler_per_mille: 1000,
                straggler_factor_x100: 400, // 4x stragglers
                fragment_failure_per_mille: 0,
                crowd_no_show_per_mille: 0,
                ..FaultPlan::seeded(42)
            },
            ..ScheduleRecoveryOptions::default()
        };
        let rec = schedule_fragments_with_recovery(&chains, 3, &opts);
        assert_eq!(rec.telemetry.speculative_launched, 6);
        assert_eq!(rec.telemetry.speculative_wins, 6, "2x backup beats 4x straggler");
        // Every batch fragment finishes at 2x nominal, not 4x.
        let plain = schedule_fragments(&chains, 3);
        assert!(rec.interleaved_makespan_s < plain.interleaved_makespan_s * 4.0);
        // The backup copies burn extra batch busy-seconds.
        let batch_busy = rec.busy.iter().find(|(e, _)| *e == Engine::Batch).unwrap().1;
        let plain_busy = plain.busy.iter().find(|(e, _)| *e == Engine::Batch).unwrap().1;
        assert!(batch_busy > plain_busy);
    }

    #[test]
    fn straggler_over_budget_is_killed_and_rerun_at_nominal() {
        let chains = vec![vec![Fragment {
            engine: Engine::Batch,
            duration_s: 10.0,
        }]];
        let opts = ScheduleRecoveryOptions {
            faults: FaultPlan {
                straggler_per_mille: 1000,
                straggler_factor_x100: 10_000, // 100x: hopeless straggler
                fragment_failure_per_mille: 0,
                crowd_no_show_per_mille: 0,
                ..FaultPlan::seeded(43)
            },
            fragment_timeout_s: 30.0,
            ..ScheduleRecoveryOptions::default()
        };
        let rec = schedule_fragments_with_recovery(&chains, 1, &opts);
        assert_eq!(rec.telemetry.fragments_timed_out, 1);
        assert_eq!(rec.telemetry.speculative_launched, 0);
        // Cost: 30s killed attempt + backoff + 10s nominal rerun — far
        // below the 1000s the straggler would have taken.
        assert!(rec.interleaved_makespan_s < 100.0, "{rec:?}");
        assert!(rec.interleaved_makespan_s >= 40.0);
    }

    #[test]
    fn abandoned_crowd_fragments_degrade_to_single_user() {
        let chains = synthetic_chains();
        let opts = ScheduleRecoveryOptions {
            faults: FaultPlan {
                crowd_no_show_per_mille: 1000,
                fragment_failure_per_mille: 0,
                straggler_per_mille: 0,
                ..FaultPlan::seeded(44)
            },
            ..ScheduleRecoveryOptions::default()
        };
        let rec = schedule_fragments_with_recovery(&chains, 3, &opts);
        assert_eq!(rec.telemetry.fragments_rerouted, 6);
        // The degraded fragments now run on the user engine.
        let user_busy = rec
            .busy
            .iter()
            .find(|(e, _)| *e == Engine::UserInteraction)
            .map(|(_, b)| *b)
            .unwrap_or(0.0);
        assert!(user_busy > 0.0);
        assert!(rec.busy.iter().all(|(e, b)| *e != Engine::Crowd || *b == 0.0));
    }

    #[test]
    fn crowd_labeler_replaces_no_shows_and_degrades_when_abandoned() {
        let s = scenario(63);
        let mut cm = CloudMatcher::default();
        cm.faults = FaultPlan {
            crowd_no_show_per_mille: 300,
            ..FaultPlan::none()
        };
        cm.faults.seed = 9;
        let spec = TaskSpec {
            name: "persons-flaky-crowd".into(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".into(),
            b_key: "id".into(),
            gold: &s.gold,
            labeling: LabelingMode::Crowd {
                worker_error_rate: 0.1,
            },
            on_cloud: false,
            falcon: small_falcon(),
        };
        let (outcome, _) = cm.run_task(&spec).unwrap();
        assert!(outcome.crowd_no_shows > 0, "{outcome:?}");
        // Accuracy survives the flaky crowd: replacements + degradation
        // keep the majority signal intact.
        assert!(outcome.precision > 0.7, "{outcome:?}");
        // Fees are only paid for delivered votes.
        let max_fee = outcome.questions as f64
            * cm.cost_model.crowd_votes as f64
            * cm.cost_model.crowd_fee_per_vote;
        assert!(outcome.crowd_cost <= max_fee + 1e-9);

        // A crowd that never shows up degrades every question to the
        // submitting user: zero fees, oracle-grade answers.
        let mut dead = CloudMatcher::default();
        dead.faults = FaultPlan {
            crowd_no_show_per_mille: 1000,
            ..FaultPlan::none()
        };
        dead.faults.seed = 9;
        let (outcome, _) = dead.run_task(&spec).unwrap();
        assert_eq!(outcome.crowd_degraded_questions, outcome.questions);
        assert_eq!(outcome.crowd_cost, 0.0);
        assert!(outcome.precision > 0.75, "{outcome:?}");
    }

    #[test]
    fn faulted_cloudmatcher_outcome_matches_are_unchanged() {
        // Fault injection at the schedule level must not perturb the EM
        // results themselves: same seed, same precision/recall.
        let s = scenario(64);
        let spec = |_name: &str| TaskSpec {
            name: "persons".into(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".into(),
            b_key: "id".into(),
            gold: &s.gold,
            labeling: LabelingMode::SingleUser { error_rate: 0.0 },
            on_cloud: false,
            falcon: small_falcon(),
        };
        let clean = CloudMatcher::default();
        let mut chaotic = CloudMatcher::default();
        chaotic.faults = FaultPlan::seeded(77);
        let (a, _) = clean.run_task(&spec("a")).unwrap();
        let (b, _) = chaotic.run_task(&spec("b")).unwrap();
        assert_eq!(a.precision, b.precision);
        assert_eq!(a.recall, b.recall);
        assert_eq!(a.n_candidates, b.n_candidates);
        assert_eq!(a.questions, b.questions);
    }
}
