//! Figure 3 — the Falcon workflow, step by step with per-step outputs.

use magellan_bench::score;
use magellan_core::labeling::OracleLabeler;
use magellan_datagen::domains::products;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::{run_falcon, FalconConfig};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let s = products(&ScenarioConfig {
        size_a: 2000,
        size_b: 2000,
        n_matches: 600,
        dirt: DirtModel::moderate(),
        seed: 33,
    });
    let (a, b) = (&s.table_a, &s.table_b);
    magellan_obs::log!(info, "Fig. 3 walkthrough — Falcon self-service EM");
    magellan_obs::log!(info, "tables: {} x {} products\n", a.nrows(), b.nrows());

    let cfg = FalconConfig::default();
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let report = run_falcon(a, b, "id", "id", &mut labeler, &cfg).expect("falcon");

    magellan_obs::log!(info, "step 1  sampled |S| = {} tuple pairs", cfg.sample_size);
    magellan_obs::log!(info, 
        "step 2  active learning (blocking stage): {} labels from the lay user",
        report.questions_blocking
    );
    magellan_obs::log!(info, "step 3  extracted + user-verified blocking rules:");
    for r in &report.rules {
        magellan_obs::log!(info, "        {r}");
    }
    magellan_obs::log!(info, 
        "        ({} executable as sim-join plans{})",
        report.n_rules_executable,
        if report.used_fallback_blocker {
            "; fallback overlap blocker used"
        } else {
            ""
        }
    );
    magellan_obs::log!(info, 
        "step 4  executed rules on A x B: |C| = {} of {} cross pairs",
        report.n_candidates,
        a.nrows() * b.nrows()
    );
    magellan_obs::log!(info, 
        "step 5  active learning (matching stage): {} more labels",
        report.questions_matching
    );
    let m = score(&report.matches, a, b, &s.gold);
    magellan_obs::log!(info, 
        "step 6  applied forest at alpha = {}: {} predicted matches",
        cfg.alpha,
        report.matches.len()
    );
    magellan_obs::log!(info, "\nresult: {m}");
    magellan_obs::log!(info, 
        "total lay-user questions: {} (paper's Table 2 range: 160-1200)",
        report.total_questions()
    );
}
