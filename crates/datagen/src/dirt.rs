//! Dirt models: controlled corruption of rendered entity strings.
//!
//! The accuracy shapes of the paper's Table 2 are driven by how dirty each
//! dataset is. A [`DirtModel`] bundles the per-field corruption
//! probabilities; domain generators draw from it independently for the two
//! renderings of a matched entity, so matched pairs differ realistically.

use rand::rngs::StdRng;
use rand::Rng;

/// Per-field corruption probabilities, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtModel {
    /// Probability of one character-level typo per string field.
    pub typo_rate: f64,
    /// Probability of abbreviating an abbreviatable token
    /// (given name → initial, "corporation" → "corp", "street" → "st").
    pub abbrev_rate: f64,
    /// Probability of swapping two adjacent tokens.
    pub token_swap_rate: f64,
    /// Probability of dropping a token (multi-token fields only).
    pub token_drop_rate: f64,
    /// Probability a field is missing entirely (rendered as NULL).
    pub missing_rate: f64,
    /// Probability of numeric drift on numeric fields (±1 unit or ±2%).
    pub numeric_drift_rate: f64,
}

impl DirtModel {
    /// Clean data: no corruption at all.
    pub fn clean() -> Self {
        DirtModel {
            typo_rate: 0.0,
            abbrev_rate: 0.0,
            token_swap_rate: 0.0,
            token_drop_rate: 0.0,
            missing_rate: 0.0,
            numeric_drift_rate: 0.0,
        }
    }

    /// Light dirt: occasional typos and abbreviations (well-curated
    /// sources, e.g. the bibliography domain).
    pub fn light() -> Self {
        DirtModel {
            typo_rate: 0.08,
            abbrev_rate: 0.15,
            token_swap_rate: 0.03,
            token_drop_rate: 0.02,
            missing_rate: 0.01,
            numeric_drift_rate: 0.02,
        }
    }

    /// Moderate dirt: the typical enterprise-integration profile.
    pub fn moderate() -> Self {
        DirtModel {
            typo_rate: 0.18,
            abbrev_rate: 0.30,
            token_swap_rate: 0.10,
            token_drop_rate: 0.08,
            missing_rate: 0.05,
            numeric_drift_rate: 0.06,
        }
    }

    /// Heavy dirt: the "vehicles"/"addresses" profile of Table 2 — so much
    /// missingness and noise that some pairs become undecidable even for a
    /// domain expert.
    pub fn heavy() -> Self {
        DirtModel {
            typo_rate: 0.35,
            abbrev_rate: 0.40,
            token_swap_rate: 0.18,
            token_drop_rate: 0.20,
            missing_rate: 0.30,
            numeric_drift_rate: 0.15,
        }
    }

    /// Apply string dirt (typo / swap / drop) to a rendered value.
    /// Abbreviation is domain-specific and handled by the generators.
    /// Returns `None` when the field comes out missing.
    pub fn corrupt_string(&self, s: &str, rng: &mut StdRng) -> Option<String> {
        if rng.gen_bool(self.missing_rate) {
            return None;
        }
        let mut out = s.to_owned();
        if rng.gen_bool(self.token_swap_rate) {
            out = swap_adjacent_tokens(&out, rng);
        }
        if rng.gen_bool(self.token_drop_rate) {
            out = drop_token(&out, rng);
        }
        if rng.gen_bool(self.typo_rate) {
            out = typo(&out, rng);
        }
        Some(out)
    }

    /// Apply numeric drift; returns `None` when missing.
    pub fn corrupt_int(&self, v: i64, rng: &mut StdRng) -> Option<i64> {
        if rng.gen_bool(self.missing_rate) {
            return None;
        }
        if rng.gen_bool(self.numeric_drift_rate) {
            let delta = if rng.gen_bool(0.5) { 1 } else { -1 };
            Some(v + delta)
        } else {
            Some(v)
        }
    }

    /// Apply relative numeric drift to a float; returns `None` when missing.
    pub fn corrupt_float(&self, v: f64, rng: &mut StdRng) -> Option<f64> {
        if rng.gen_bool(self.missing_rate) {
            return None;
        }
        if rng.gen_bool(self.numeric_drift_rate) {
            let factor = 1.0 + rng.gen_range(-0.02..0.02);
            Some((v * factor * 100.0).round() / 100.0)
        } else {
            Some(v)
        }
    }
}

/// Introduce one character-level typo: delete, duplicate, replace, or
/// transpose. No-op on empty strings.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let i = rng.gen_range(0..chars.len());
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            out.remove(i); // deletion
        }
        1 => out.insert(i, chars[i]), // duplication
        2 => out[i] = (b'a' + rng.gen_range(0..26u8)) as char, // replacement
        _ => {
            if i + 1 < out.len() {
                out.swap(i, i + 1); // transposition
            } else if out.len() >= 2 {
                let n = out.len();
                out.swap(n - 2, n - 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Swap two adjacent whitespace tokens (no-op for < 2 tokens).
pub fn swap_adjacent_tokens(s: &str, rng: &mut StdRng) -> String {
    let mut toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..toks.len() - 1);
    toks.swap(i, i + 1);
    toks.join(" ")
}

/// Drop one whitespace token (no-op for < 2 tokens — never empties a field).
pub fn drop_token(s: &str, rng: &mut StdRng) -> String {
    let mut toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..toks.len());
    toks.remove(i);
    toks.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clean_model_is_identity() {
        let m = DirtModel::clean();
        let mut r = rng(1);
        for s in ["dave smith", "", "x"] {
            assert_eq!(m.corrupt_string(s, &mut r), Some(s.to_owned()));
        }
        assert_eq!(m.corrupt_int(42, &mut r), Some(42));
        assert_eq!(m.corrupt_float(9.5, &mut r), Some(9.5));
    }

    #[test]
    fn heavy_model_produces_missing_values() {
        let m = DirtModel::heavy();
        let mut r = rng(2);
        let missing = (0..500)
            .filter(|_| m.corrupt_string("some value here", &mut r).is_none())
            .count();
        // missing_rate = 0.30 -> expect roughly 150/500.
        assert!((100..220).contains(&missing), "{missing}");
    }

    #[test]
    fn typo_changes_string_by_bounded_edit() {
        let mut r = rng(3);
        for _ in 0..100 {
            let t = typo("madison", &mut r);
            let d = magellan_textsim_lev(&t, "madison");
            assert!(d <= 2, "{t} too far");
        }
    }

    // Small local Levenshtein to avoid a dependency cycle in tests.
    fn magellan_textsim_lev(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0; b.len() + 1];
        for (i, ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.iter().enumerate() {
                cur[j + 1] = (prev[j] + usize::from(ca != cb))
                    .min(prev[j + 1] + 1)
                    .min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn token_ops_preserve_token_multiset_or_subset() {
        let mut r = rng(4);
        let s = "alpha beta gamma delta";
        let swapped = swap_adjacent_tokens(s, &mut r);
        let mut a: Vec<&str> = s.split_whitespace().collect();
        let mut b: Vec<&str> = swapped.split_whitespace().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let dropped = drop_token(s, &mut r);
        assert_eq!(dropped.split_whitespace().count(), 3);
    }

    #[test]
    fn single_token_fields_never_emptied() {
        let mut r = rng(5);
        assert_eq!(drop_token("solo", &mut r), "solo");
        assert_eq!(swap_adjacent_tokens("solo", &mut r), "solo");
    }

    #[test]
    fn numeric_drift_is_small() {
        let m = DirtModel {
            numeric_drift_rate: 1.0,
            ..DirtModel::clean()
        };
        let mut r = rng(6);
        for _ in 0..50 {
            let v = m.corrupt_int(2015, &mut r).unwrap();
            assert!((2014..=2016).contains(&v));
            let f = m.corrupt_float(100.0, &mut r).unwrap();
            assert!((97.9..=102.1).contains(&f));
        }
    }
}
