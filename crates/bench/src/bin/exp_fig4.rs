//! Figure 4 — a decision tree learned by Falcon and the blocking rules
//! extracted from it.
//!
//! The paper's example: a tree over book pairs that "predicts that two
//! book tuples match only if their ISBNs match and the number of pages
//! match", and the two rules extracted from its root→No paths.

use magellan_core::labeling::{Labeler, OracleLabeler};
use magellan_datagen::domains::citations;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::active::{active_learn, ActiveLearnConfig};
use magellan_falcon::rules::extract_blocking_rules;
use magellan_falcon::workflow::blocking_features;
use magellan_features::extract_feature_matrix;

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    // Book-like records: citations carry title/authors/venue/year, the
    // closest in-repo analog of the figure's ISBN/pages books.
    let s = citations(&ScenarioConfig {
        size_a: 800,
        size_b: 800,
        n_matches: 250,
        dirt: DirtModel::light(),
        seed: 44,
    });
    let (a, b) = (&s.table_a, &s.table_b);

    // Sample pairs and features the way Falcon's blocking stage does.
    let bfeatures = blocking_features(a, b, &["id"]).expect("blocking features");
    // Plausible + random pairs.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..400u32 {
        pairs.push((i % a.nrows() as u32, (i * 7 + 3) % b.nrows() as u32));
    }
    // Ensure the sample contains true matches.
    let ak = a.key_index("id").expect("key");
    let bk = b.key_index("id").expect("key");
    for (x, y) in s.gold.iter().take(120) {
        pairs.push((ak[x] as u32, bk[y] as u32));
    }
    let matrix = extract_feature_matrix(&pairs, a, b, &bfeatures).expect("matrix");

    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let outcome = active_learn(
        &matrix,
        |i| {
            let (ra, rb) = matrix.pairs[i];
            labeler.label(a, ra as usize, b, rb as usize).as_bool()
        },
        &ActiveLearnConfig {
            n_trees: 5,
            ..Default::default()
        },
    );

    magellan_obs::log!(info, "Fig. 4 analog — one committee tree and its extracted rules\n");
    magellan_obs::log!(info, "(a) a decision tree learned by Falcon:");
    let tree = &outcome.forest.trees()[0];
    // Print with feature names substituted.
    let mut rendered = tree.pretty();
    for (i, name) in matrix.names.iter().enumerate() {
        rendered = rendered.replace(&format!("f{i} "), &format!("{name} "));
    }
    magellan_obs::log!(info, "{rendered}");

    magellan_obs::log!(info, "(b) blocking rules extracted from root -> No paths:");
    let (kept, executable) = extract_blocking_rules(
        &outcome.forest,
        &matrix,
        &outcome.labeled,
        &bfeatures,
        0.95,
        6,
    );
    for r in &kept {
        magellan_obs::log!(info, 
            "  {}   [precision {:.2}, drops {:.0}% of labeled negatives]",
            r.pretty(&matrix.names),
            r.precision,
            100.0 * r.coverage
        );
    }
    magellan_obs::log!(info, 
        "\n{} rules kept, {} executable as sim-join plans",
        kept.len(),
        executable.len()
    );
}
