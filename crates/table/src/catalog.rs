//! The Magellan metadata catalog.
//!
//! §4.1 of the paper: to keep commands interoperable, tables are stored in a
//! generic structure that cannot carry EM metadata, so key and
//! key–foreign-key information lives in a *stand-alone catalog*. Because any
//! tool (including ones that know nothing about the catalog) may mutate a
//! table, every command that consumes metadata must be **self-contained**:
//! it re-validates the metadata before relying on it, and surfaces a clear
//! error when the constraint no longer holds. [`Catalog::validate_key`] and
//! [`Catalog::validate_candidate`] are those checks.

use std::collections::HashMap;

use crate::error::TableError;
use crate::table::{Table, TableId};
use crate::Result;

/// Metadata for a base table: which attribute is its key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Key attribute name.
    pub key: String,
}

/// Metadata for a candidate set `C` produced by blocking two tables `A`
/// and `B`. Per the paper's space-efficiency principle, `C` stores only
/// `(A.id, B.id)` pairs; this struct records how those columns relate back
/// to the base tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateMeta {
    /// Column of `C` holding the left table's key values.
    pub fk_ltable: String,
    /// Column of `C` holding the right table's key values.
    pub fk_rtable: String,
    /// Identity of the left base table.
    pub ltable: TableId,
    /// Identity of the right base table.
    pub rtable: TableId,
    /// Key attribute of the left base table.
    pub ltable_key: String,
    /// Key attribute of the right base table.
    pub rtable_key: String,
}

/// The stand-alone metadata store, keyed by [`TableId`].
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    keys: HashMap<TableId, TableMeta>,
    candidates: HashMap<TableId, CandidateMeta>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declare `attr` as the key of `table`, validating uniqueness and
    /// non-nullness first.
    pub fn set_key(&mut self, table: &Table, attr: &str) -> Result<()> {
        validate_key_constraint(table, attr)?;
        self.keys
            .insert(table.id(), TableMeta { key: attr.to_owned() });
        Ok(())
    }

    /// The recorded key of `table`, if any.
    pub fn key(&self, table: &Table) -> Option<&str> {
        self.keys.get(&table.id()).map(|m| m.key.as_str())
    }

    /// The recorded key, or a [`TableError::NoMetadata`] error.
    pub fn require_key(&self, table: &Table) -> Result<&str> {
        self.key(table)
            .ok_or_else(|| TableError::NoMetadata(table.name().to_owned()))
    }

    /// Re-validate the key constraint of `table` against its *current*
    /// contents (the self-containment check). Fails if the key column went
    /// missing, grew nulls, or grew duplicates since `set_key`.
    pub fn validate_key(&self, table: &Table) -> Result<()> {
        let key = self.require_key(table)?;
        validate_key_constraint(table, key)
    }

    /// Record candidate-set metadata for `c`, validating it first.
    pub fn set_candidate_meta(
        &mut self,
        c: &Table,
        meta: CandidateMeta,
        ltable: &Table,
        rtable: &Table,
    ) -> Result<()> {
        validate_candidate_constraint(c, &meta, ltable, rtable)?;
        self.candidates.insert(c.id(), meta);
        Ok(())
    }

    /// The recorded candidate metadata of `c`, if any.
    pub fn candidate_meta(&self, c: &Table) -> Option<&CandidateMeta> {
        self.candidates.get(&c.id())
    }

    /// The recorded candidate metadata, or a [`TableError::NoMetadata`] error.
    pub fn require_candidate_meta(&self, c: &Table) -> Result<&CandidateMeta> {
        self.candidate_meta(c)
            .ok_or_else(|| TableError::NoMetadata(c.name().to_owned()))
    }

    /// Re-validate the FK constraints of candidate set `c` against the
    /// current contents of its base tables. This is the check a
    /// self-contained command runs before trusting `(A.id, B.id)` pairs —
    /// e.g. after some other tool deleted tuples from `A` (the exact failure
    /// scenario §4.1 walks through).
    pub fn validate_candidate(&self, c: &Table, ltable: &Table, rtable: &Table) -> Result<()> {
        let meta = self.require_candidate_meta(c)?;
        if meta.ltable != ltable.id() {
            return Err(TableError::ForeignKeyViolation {
                table: c.name().to_owned(),
                attr: meta.fk_ltable.clone(),
                reason: format!(
                    "left base table mismatch: expected table id {}, got `{}` (id {})",
                    meta.ltable.raw(),
                    ltable.name(),
                    ltable.id().raw()
                ),
            });
        }
        if meta.rtable != rtable.id() {
            return Err(TableError::ForeignKeyViolation {
                table: c.name().to_owned(),
                attr: meta.fk_rtable.clone(),
                reason: format!(
                    "right base table mismatch: expected table id {}, got `{}` (id {})",
                    meta.rtable.raw(),
                    rtable.name(),
                    rtable.id().raw()
                ),
            });
        }
        validate_candidate_constraint(c, meta, ltable, rtable)
    }

    /// Drop all metadata recorded for `table`.
    pub fn remove(&mut self, table: &Table) {
        self.keys.remove(&table.id());
        self.candidates.remove(&table.id());
    }

    /// Number of tables with any recorded metadata.
    pub fn len(&self) -> usize {
        let mut ids: Vec<TableId> = self.keys.keys().copied().collect();
        ids.extend(self.candidates.keys().copied());
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// True when no metadata is recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.candidates.is_empty()
    }
}

/// Check that `attr` is a valid key of `table`: present, non-null, unique.
fn validate_key_constraint(table: &Table, attr: &str) -> Result<()> {
    let idx = table
        .schema()
        .index_of(attr)
        .ok_or_else(|| TableError::KeyViolation {
            table: table.name().to_owned(),
            attr: attr.to_owned(),
            reason: "column not present".to_owned(),
        })?;
    let mut seen: HashMap<String, usize> = HashMap::with_capacity(table.nrows());
    for r in table.rows() {
        let v = table.value(r, idx);
        if v.is_null() {
            return Err(TableError::KeyViolation {
                table: table.name().to_owned(),
                attr: attr.to_owned(),
                reason: format!("null key at row {r}"),
            });
        }
        let s = v.display_string();
        if let Some(prev) = seen.insert(s, r) {
            return Err(TableError::KeyViolation {
                table: table.name().to_owned(),
                attr: attr.to_owned(),
                reason: format!(
                    "duplicate value `{}` at rows {prev} and {r}",
                    table.value(r, idx)
                ),
            });
        }
    }
    Ok(())
}

/// Check that every FK value in `c` resolves to a key of its base table.
fn validate_candidate_constraint(
    c: &Table,
    meta: &CandidateMeta,
    ltable: &Table,
    rtable: &Table,
) -> Result<()> {
    validate_key_constraint(ltable, &meta.ltable_key)?;
    validate_key_constraint(rtable, &meta.rtable_key)?;
    let lkeys = ltable.key_index(&meta.ltable_key)?;
    let rkeys = rtable.key_index(&meta.rtable_key)?;
    for (attr, keys, side) in [
        (&meta.fk_ltable, &lkeys, "left"),
        (&meta.fk_rtable, &rkeys, "right"),
    ] {
        let idx = c
            .schema()
            .index_of(attr)
            .ok_or_else(|| TableError::ForeignKeyViolation {
                table: c.name().to_owned(),
                attr: attr.clone(),
                reason: "column not present".to_owned(),
            })?;
        for r in c.rows() {
            let v = c.value(r, idx);
            if v.is_null() {
                return Err(TableError::ForeignKeyViolation {
                    table: c.name().to_owned(),
                    attr: attr.clone(),
                    reason: format!("null foreign key at row {r}"),
                });
            }
            let s = v.display_string();
            if !keys.contains_key(&s) {
                return Err(TableError::ForeignKeyViolation {
                    table: c.name().to_owned(),
                    attr: attr.clone(),
                    reason: format!(
                        "value `{s}` at row {r} has no matching key in the {side} table"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Dtype, Value};

    fn base(name: &str, ids: &[&str]) -> Table {
        Table::from_rows(
            name,
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            ids.iter()
                .map(|i| vec![Value::from(*i), Value::from(format!("row {i}"))])
                .collect(),
        )
        .unwrap()
    }

    fn cand(pairs: &[(&str, &str)]) -> Table {
        Table::from_rows(
            "C",
            &[("l_id", Dtype::Str), ("r_id", Dtype::Str)],
            pairs
                .iter()
                .map(|(l, r)| vec![Value::from(*l), Value::from(*r)])
                .collect(),
        )
        .unwrap()
    }

    fn meta(a: &Table, b: &Table) -> CandidateMeta {
        CandidateMeta {
            fk_ltable: "l_id".into(),
            fk_rtable: "r_id".into(),
            ltable: a.id(),
            rtable: b.id(),
            ltable_key: "id".into(),
            rtable_key: "id".into(),
        }
    }

    #[test]
    fn set_key_validates_uniqueness_and_nulls() {
        let mut cat = Catalog::new();
        let a = base("A", &["a1", "a2"]);
        cat.set_key(&a, "id").unwrap();
        assert_eq!(cat.key(&a), Some("id"));

        let dup = base("D", &["x", "x"]);
        assert!(matches!(
            cat.set_key(&dup, "id"),
            Err(TableError::KeyViolation { .. })
        ));

        let mut withnull = base("N", &["x"]);
        withnull
            .push_row(vec![Value::Null, Value::from("ghost")])
            .unwrap();
        assert!(cat.set_key(&withnull, "id").is_err());
        assert!(cat.set_key(&a, "missing").is_err());
    }

    #[test]
    fn self_containment_detects_mutation_behind_catalogs_back() {
        let mut cat = Catalog::new();
        let mut a = base("A", &["a1", "a2"]);
        cat.set_key(&a, "id").unwrap();
        cat.validate_key(&a).unwrap();
        // Some catalog-unaware tool introduces a duplicate key.
        a.push_row(vec![Value::from("a1"), Value::from("clone")])
            .unwrap();
        assert!(matches!(
            cat.validate_key(&a),
            Err(TableError::KeyViolation { .. })
        ));
    }

    #[test]
    fn candidate_metadata_roundtrip_and_validation() {
        let mut cat = Catalog::new();
        let a = base("A", &["a1", "a2", "a3"]);
        let b = base("B", &["b1", "b2"]);
        let c = cand(&[("a1", "b1"), ("a3", "b2")]);
        cat.set_candidate_meta(&c, meta(&a, &b), &a, &b).unwrap();
        cat.validate_candidate(&c, &a, &b).unwrap();
        assert_eq!(cat.require_candidate_meta(&c).unwrap().fk_ltable, "l_id");
    }

    #[test]
    fn fk_violation_after_base_table_shrinks() {
        // The exact §4.1 scenario: a command of some other package removes a
        // tuple from A; the FK metadata on C is now stale and a
        // self-contained command must notice.
        let mut cat = Catalog::new();
        let a = base("A", &["a1", "a2", "a3"]);
        let b = base("B", &["b1", "b2"]);
        let c = cand(&[("a1", "b1"), ("a3", "b2")]);
        cat.set_candidate_meta(&c, meta(&a, &b), &a, &b).unwrap();

        let shrunk = a.filter(|r| r != 2); // drop a3
        // `shrunk` is a new table; validating against it as the left table
        // reports the base-table identity mismatch...
        assert!(cat.validate_candidate(&c, &shrunk, &b).is_err());
        // ...and rebinding the metadata to the shrunk table reports the
        // dangling FK value itself.
        let m = CandidateMeta {
            ltable: shrunk.id(),
            ..meta(&a, &b)
        };
        let err = cat
            .set_candidate_meta(&c, m, &shrunk, &b)
            .unwrap_err();
        assert!(matches!(err, TableError::ForeignKeyViolation { .. }));
        assert!(err.to_string().contains("a3"));
    }

    #[test]
    fn missing_metadata_is_an_error() {
        let cat = Catalog::new();
        let a = base("A", &["a1"]);
        assert!(matches!(
            cat.require_key(&a),
            Err(TableError::NoMetadata(_))
        ));
        assert!(cat.validate_key(&a).is_err());
    }

    #[test]
    fn remove_and_len() {
        let mut cat = Catalog::new();
        let a = base("A", &["a1"]);
        let b = base("B", &["b1"]);
        cat.set_key(&a, "id").unwrap();
        cat.set_key(&b, "id").unwrap();
        assert_eq!(cat.len(), 2);
        cat.remove(&a);
        assert_eq!(cat.len(), 1);
        assert!(cat.key(&a).is_none());
        assert!(!cat.is_empty());
    }

    #[test]
    fn candidate_with_null_fk_is_rejected() {
        let mut cat = Catalog::new();
        let a = base("A", &["a1"]);
        let b = base("B", &["b1"]);
        let mut c = cand(&[("a1", "b1")]);
        c.push_row(vec![Value::Null, Value::from("b1")]).unwrap();
        let err = cat.set_candidate_meta(&c, meta(&a, &b), &a, &b).unwrap_err();
        assert!(err.to_string().contains("null foreign key"));
    }
}
