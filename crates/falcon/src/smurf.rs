//! Smurf-lite: blocking rules without labels (§5.3 of the paper).
//!
//! > "we have developed Smurf, which removes the need to label to learn
//! > blocking rules ... This drastically reduces the labeling effort by
//! > 43–76%, yet achieving the same accuracy."
//!
//! The idea reproduced here: instead of asking the user, generate
//! *pseudo-labels* from the unlabeled pair sample itself — pairs whose
//! aggregate similarity is extreme are confidently positive/negative —
//! train the random forest on those, and extract blocking rules exactly as
//! Falcon does. Only the matching stage still asks the user.

use magellan_block::{Blocker, CandidateSet, OverlapBlocker, RuleBasedBlocker};
use magellan_core::labeling::Labeler;
use magellan_features::{extract_with_prepared, PreparedPair};
use magellan_ml::{Dataset, RandomForestLearner};
use magellan_par::ParConfig;
use magellan_table::Table;

use crate::active::active_learn;
use crate::rules::extract_blocking_rules;
use crate::workflow::{biased_pool, blocking_features, sample_pairs, FalconConfig, FalconReport};

/// Mean of non-NaN features: the unsupervised similarity proxy.
fn proxy(row: &[f64]) -> f64 {
    let (mut s, mut n) = (0.0, 0usize);
    for &v in row {
        if !v.is_nan() {
            s += v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Run Smurf-lite: label-free blocking-rule learning, then Falcon's
/// matching stage. The report's `questions_blocking` is always 0 — that
/// is the whole point.
pub fn run_smurf(
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
    labeler: &mut dyn Labeler,
    cfg: &FalconConfig,
) -> magellan_table::Result<FalconReport> {
    // One prepared cache across both stages (same cross-stage reuse as
    // Falcon: sample records seen again in the candidate set are
    // tokenized once).
    let mut prepared = PreparedPair::new(a, b);

    // ---- Blocking stage, zero questions ----
    let s_pairs = sample_pairs(a, b, a_key, b_key, cfg.sample_size, cfg.seed);
    let bfeatures = blocking_features(a, b, &[a_key, b_key])?;
    let (s_matrix, _) =
        extract_with_prepared(&mut prepared, &s_pairs, &bfeatures, &ParConfig::serial())?;

    // Pseudo-labels from the proxy-score extremes.
    let mut scored: Vec<(f64, usize)> = s_matrix
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| (proxy(r), i))
        .collect();
    scored.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = scored.len();
    // Confident positives: the top few percent, and only while the proxy
    // stays clearly high — pseudo-label noise here poisons every rule.
    let n_pos_cap = (n / 12).max(2).min(n / 2);
    let n_pos = scored
        .iter()
        .take(n_pos_cap)
        .take_while(|&&(s, _)| s >= 0.45)
        .count()
        .max(2);
    let n_neg = (n / 2).max(2).min(n - n_pos); // bottom half = negatives
    let mut pseudo: Vec<(usize, bool)> = Vec::with_capacity(n_pos + n_neg);
    pseudo.extend(scored.iter().take(n_pos).map(|&(_, i)| (i, true)));
    pseudo.extend(scored.iter().rev().take(n_neg).map(|&(_, i)| (i, false)));

    let mut data = Dataset::new(s_matrix.names.clone());
    for &(i, y) in &pseudo {
        data.push(&s_matrix.rows[i], y);
    }
    let forest = RandomForestLearner {
        n_trees: cfg.blocking_al.n_trees,
        seed: cfg.seed,
        ..Default::default()
    }
    .fit_forest(&data);

    // Rule extraction: precision 1.0 against the pseudo-labels — a rule
    // may not drop a single confident pseudo-positive.
    let (kept, blocking_rules) =
        extract_blocking_rules(&forest, &s_matrix, &pseudo, &bfeatures, 1.0, cfg.max_rules);
    let rules_pretty: Vec<String> = kept.iter().map(|r| r.pretty(&s_matrix.names)).collect();
    let n_rules_executable = blocking_rules.len();

    // Label-free rules were never user-verified (that is the point of
    // Smurf), so they can over-fire on dirt the pseudo-positives never
    // exhibited. Guard recall by unioning the rule survivors with a
    // permissive one-token overlap blocker on the first textual attribute:
    // the blocking stage then errs toward candidates, and the (still
    // actively-learned) matching stage restores precision.
    let guard_attr = a
        .schema()
        .fields()
        .iter()
        .find(|f| f.name != a_key && f.dtype == magellan_table::Dtype::Str)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| a_key.to_owned());
    // Two shared tokens: loose enough to catch matches the unverified
    // rules would wrongly drop, tight enough not to balloon |C| (which
    // would inflate the matching-stage label budget and erase the very
    // labeling savings Smurf exists for).
    let guard = OverlapBlocker::words(&guard_attr, 2).block(a, b)?;
    let (candidates, used_fallback) = if blocking_rules.is_empty() {
        (guard, true)
    } else {
        let survivors = RuleBasedBlocker::new(blocking_rules).block(a, b)?;
        // Only union the guard in when it stays proportionate: a guard
        // that dwarfs the rule survivors would balloon |C|, inflate the
        // matching-stage label budget, and erase the labeling savings
        // Smurf exists for.
        let guard_is_proportionate =
            guard.len() <= 100_000.max(survivors.len().saturating_mul(10));
        if guard_is_proportionate {
            (survivors.union(&guard), false)
        } else {
            (survivors, false)
        }
    };

    // ---- Matching stage: unchanged Falcon (labels still needed) ----
    let mfeatures = magellan_features::generate_features(a, b, &[a_key, b_key])?;
    let (c_matrix, _) = extract_with_prepared(
        &mut prepared,
        candidates.pairs(),
        &mfeatures,
        &ParConfig::serial(),
    )?;
    if c_matrix.is_empty() {
        return Ok(FalconReport {
            questions_blocking: 0,
            questions_matching: 0,
            rules: rules_pretty,
            n_rules_executable,
            used_fallback_blocker: used_fallback,
            n_candidates: 0,
            matches: CandidateSet::default(),
        });
    }
    let mut matching_al = cfg.matching_al;
    let mut pool_cap = cfg.max_matching_pool;
    if candidates.len() > 100_000 {
        matching_al.max_rounds = matching_al.max_rounds * 2 + 10;
        pool_cap *= 2;
    }
    let pool_matrix;
    let pool_ref = if c_matrix.len() > pool_cap {
        pool_matrix = biased_pool(&c_matrix, pool_cap, cfg.seed ^ 0xC0FFEE);
        &pool_matrix
    } else {
        &c_matrix
    };
    let q0 = labeler.questions_asked();
    let outcome = active_learn(
        pool_ref,
        |i| {
            let (ra, rb) = pool_ref.pairs[i];
            labeler.label(a, ra as usize, b, rb as usize).as_bool()
        },
        &matching_al,
    );
    let questions_matching = labeler.questions_asked() - q0;

    let matches: CandidateSet = c_matrix
        .pairs
        .iter()
        .zip(&c_matrix.rows)
        .filter_map(|(&p, row)| outcome.forest.predict_at(row, cfg.alpha).then_some(p))
        .collect();

    Ok(FalconReport {
        questions_blocking: 0,
        questions_matching,
        rules: rules_pretty,
        n_rules_executable,
        used_fallback_blocker: used_fallback,
        n_candidates: candidates.len(),
        matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::run_falcon;
    use magellan_core::evaluate::evaluate_matches;
    use magellan_core::labeling::OracleLabeler;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};

    #[test]
    fn smurf_cuts_labeling_effort_at_comparable_accuracy() {
        let s = persons(&ScenarioConfig {
            size_a: 350,
            size_b: 350,
            n_matches: 110,
            dirt: DirtModel::light(),
            seed: 71,
        });
        let cfg = FalconConfig::default();

        let mut falcon_labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let falcon = run_falcon(&s.table_a, &s.table_b, "id", "id", &mut falcon_labeler, &cfg)
            .unwrap();
        let mut smurf_labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let smurf = run_smurf(&s.table_a, &s.table_b, "id", "id", &mut smurf_labeler, &cfg)
            .unwrap();

        assert_eq!(smurf.questions_blocking, 0);
        assert!(
            smurf.total_questions() < falcon.total_questions(),
            "smurf {} >= falcon {}",
            smurf.total_questions(),
            falcon.total_questions()
        );

        let mf = evaluate_matches(&falcon.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
            .unwrap();
        let ms = evaluate_matches(&smurf.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
            .unwrap();
        // "yet achieving the same accuracy" — allow a modest margin.
        assert!(
            ms.f1() > mf.f1() - 0.12,
            "smurf F1 {} much worse than falcon {}",
            ms.f1(),
            mf.f1()
        );
    }

    #[test]
    fn smurf_blocking_retains_most_gold_pairs() {
        let s = persons(&ScenarioConfig {
            size_a: 300,
            size_b: 300,
            n_matches: 90,
            dirt: DirtModel::light(),
            seed: 72,
        });
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let report = run_smurf(
            &s.table_a,
            &s.table_b,
            "id",
            "id",
            &mut labeler,
            &FalconConfig::default(),
        )
        .unwrap();
        // Candidate set must contain most gold pairs (blocking recall).
        let ak = s.table_a.key_index("id").unwrap();
        let _ = ak;
        assert!(report.n_candidates > 0);
        let m = evaluate_matches(&report.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
            .unwrap();
        assert!(m.recall() > 0.5, "{m}");
    }
}
