//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x that this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*`, [`strategy::Strategy`]
//! with `prop_map` / `prop_flat_map` / `boxed`, [`strategy::Just`],
//! [`prop_oneof!`], range and regex-literal strategies,
//! [`collection::vec`], [`option::weighted`], [`any`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports the case number and the
//!   per-test seed instead of a minimal counterexample;
//! * string strategies support the regex *subset* found in this repo's
//!   tests (character classes with ranges/escapes/negation, literals,
//!   groups, and `{m,n}` / `{n}` repetition) and panic on anything else;
//! * streams differ from upstream proptest (tests must not pin generated
//!   values, only properties of them).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case driving: config, RNG, and failure plumbing.

    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What a `proptest!` body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator driving every strategy (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeded generator.
        pub fn new(mut seed: u64) -> Self {
            TestRng {
                s: [
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                ],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }

        /// Uniform in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            (wide % bound as u128) as u64
        }
    }

    /// FNV-1a of a static name — stable per-test base seed.
    pub fn fnv(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe strategy (what [`BoxedStrategy`] holds).
    pub trait DynStrategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.as_ref().gen_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping is exact")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// `&str` literals are regex strategies producing matching [`String`]s.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    /// A `Vec` of strategies generates element-wise (one value per entry).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.gen_value(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a full-domain value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite floats over a wide magnitude range.
            let m = rng.next_f64() * 2.0 - 1.0;
            let e = (rng.next_u64() % 61) as i32 - 30;
            m * (2.0f64).powi(e)
        }
    }

    /// The strategy behind [`crate::any`].
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<T> {
    arbitrary::AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vec-length specification (mirrors real
    /// proptest's `Into<SizeRange>`: an exact length, `lo..hi`, `lo..=hi`).
    pub trait IntoSizeRange {
        /// Convert to a half-open `lo..hi` length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` whose length is drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` with a given probability.
    pub struct WeightedOption<S> {
        p_some: f64,
        inner: S,
    }

    /// `Some(inner)` with probability `p_some`, else `None`.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
        assert!((0.0..=1.0).contains(&p_some));
        WeightedOption { p_some, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.p_some {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    //! Generation of strings from the regex subset used by the tests.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        Class { members: Vec<(char, char)>, negated: bool },
        Group(Vec<(Node, (u32, u32))>),
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Node {
        let negated = chars.peek() == Some(&'^') && {
            chars.next();
            true
        };
        let mut members: Vec<(char, char)> = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"));
            match c {
                ']' => break,
                '\\' => {
                    let e = unescape(chars.next().expect("escape in class"));
                    members.push((e, e));
                }
                lo => {
                    if chars.peek() == Some(&'-') {
                        // Lookahead: `-` then a closing `]` means literal '-'.
                        let mut clone = chars.clone();
                        clone.next();
                        if clone.peek() == Some(&']') {
                            members.push((lo, lo));
                        } else {
                            chars.next(); // consume '-'
                            let hi = chars.next().expect("range end in class");
                            let hi = if hi == '\\' {
                                unescape(chars.next().expect("escape in class"))
                            } else {
                                hi
                            };
                            members.push((lo, hi));
                        }
                    } else {
                        members.push((lo, lo));
                    }
                }
            }
        }
        Node::Class { members, negated }
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier lower bound"),
                hi.trim().parse().expect("quantifier upper bound"),
            ),
            None => {
                let n = spec.trim().parse().expect("exact quantifier");
                (n, n)
            }
        }
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        pattern: &str,
        in_group: bool,
    ) -> Vec<(Node, (u32, u32))> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            let node = match c {
                ')' if in_group => {
                    chars.next();
                    return out;
                }
                '[' => {
                    chars.next();
                    parse_class(chars, pattern)
                }
                '(' => {
                    chars.next();
                    Node::Group(parse_seq(chars, pattern, true))
                }
                '\\' => {
                    chars.next();
                    Node::Lit(unescape(chars.next().expect("escape")))
                }
                '|' | '*' | '+' | '?' | '.' | '$' | '^' => {
                    panic!("regex feature {c:?} in {pattern:?} is not supported by the proptest shim")
                }
                lit => {
                    chars.next();
                    Node::Lit(lit)
                }
            };
            out.push((node, parse_quantifier(chars)));
        }
        assert!(!in_group, "unterminated group in regex {pattern:?}");
        out
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class { members, negated } => {
                if *negated {
                    // Printable ASCII (plus space) minus the members.
                    loop {
                        let c = (0x20 + rng.below(0x5f) as u8) as char;
                        if !members.iter().any(|&(lo, hi)| lo <= c && c <= hi) {
                            out.push(c);
                            break;
                        }
                    }
                } else {
                    let total: u64 = members.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in members {
                        let span = hi as u64 - lo as u64 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).expect("class char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
            Node::Group(seq) => gen_seq(seq, rng, out),
        }
    }

    fn gen_seq(seq: &[(Node, (u32, u32))], rng: &mut TestRng, out: &mut String) {
        for (node, (lo, hi)) in seq {
            let n = if lo == hi {
                *lo
            } else {
                lo + rng.below((*hi - *lo + 1) as u64) as u32
            };
            for _ in 0..n {
                gen_node(node, rng, out);
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, pattern, false);
        let mut out = String::new();
        gen_seq(&seq, rng, &mut out);
        out
    }
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted / unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ( $( $strategy, )+ );
            for case in 0..cfg.cases {
                let seed = base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                let ( $( $arg, )+ ) =
                    $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, cfg.cases, seed, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = crate::string::generate("[a-d]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");

            let p = crate::string::generate("[ab]{0,3}( [ab]{1,3}){0,3}", &mut rng);
            for tok in p.split(' ').skip(1) {
                assert!((1..=3).contains(&tok.len()), "{p:?}");
            }

            let q = crate::string::generate("[a-z ,\"\n]{0,12}", &mut rng);
            assert!(q.chars().count() <= 12);
            assert!(q.chars().all(|c| c.is_ascii_lowercase() || " ,\"\n".contains(c)), "{q:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hit_bounds(x in 0usize..10, y in -3i64..3, f in 0.25f64..0.75) {
            prop_assert!(x < 10);
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(prop_oneof![3 => Just(1u8), 1 => Just(2u8)], 1..9),
                                 o in crate::option::weighted(0.5, "[xy]{2}")) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
            if let Some(s) = &o {
                prop_assert_eq!(s.len(), 2);
            }
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(0u8), n..n + 1))) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }
}
