//! Automatic feature generation — a named "pain point" tool (Table 3).

use magellan_table::Table;

use crate::feature::{Feature, FeatureKind, TokSpecF};
use crate::types::{infer_attr_type, AttrType};

/// The feature kinds instantiated for each attribute type. This is the
/// tokenizer × measure grid the paper alludes to with
/// `jaccard(3gram(A.name), 3gram(B.name))`.
pub fn kinds_for(attr_type: AttrType) -> Vec<FeatureKind> {
    match attr_type {
        AttrType::Numeric => vec![
            FeatureKind::ExactNum,
            FeatureKind::AbsDiff,
            FeatureKind::RelDiff,
        ],
        AttrType::Boolean => vec![FeatureKind::ExactMatch],
        AttrType::ShortString => vec![
            FeatureKind::ExactMatch,
            FeatureKind::LevSim,
            FeatureKind::JaroWinkler,
            FeatureKind::Jaccard(TokSpecF::Qgram(3)),
        ],
        AttrType::MediumString => vec![
            FeatureKind::Jaccard(TokSpecF::Word),
            FeatureKind::Cosine(TokSpecF::Word),
            FeatureKind::Jaccard(TokSpecF::Qgram(3)),
            FeatureKind::MongeElkanJw,
            FeatureKind::LevSim,
        ],
        AttrType::LongString => vec![
            FeatureKind::Jaccard(TokSpecF::Word),
            FeatureKind::Cosine(TokSpecF::Word),
            FeatureKind::Dice(TokSpecF::Word),
            FeatureKind::OverlapCoeff(TokSpecF::Word),
        ],
    }
}

/// Generate features for every attribute name the two tables share, except
/// the listed key attributes (matching on keys would leak the gold
/// standard in synthetic settings and is meaningless in real ones).
///
/// The result is an editable `Vec` — the paper's customizability principle:
/// users delete entries and push their own [`Feature`]s.
///
/// ```
/// use magellan_features::generate_features;
/// use magellan_table::{Dtype, Table};
///
/// let a = Table::from_rows("A", &[("id", Dtype::Str), ("name", Dtype::Str)],
///                          vec![vec!["a0".into(), "dave smith".into()]]).unwrap();
/// let b = Table::from_rows("B", &[("id", Dtype::Str), ("name", Dtype::Str)],
///                          vec![vec!["b0".into(), "david smith".into()]]).unwrap();
/// let features = generate_features(&a, &b, &["id"]).unwrap();
/// assert!(features.iter().any(|f| f.name == "jaccard(3gram(A.name), 3gram(B.name))"));
/// ```
pub fn generate_features(
    a: &Table,
    b: &Table,
    exclude: &[&str],
) -> magellan_table::Result<Vec<Feature>> {
    let mut features = Vec::new();
    for field in a.schema().fields() {
        let name = field.name.as_str();
        if exclude.contains(&name) {
            continue;
        }
        if b.schema().index_of(name).is_none() {
            continue;
        }
        // Use the coarser of the two sides' inferred types so both sides'
        // values make sense for the chosen measures.
        let ta = infer_attr_type(a, name)?;
        let tb = infer_attr_type(b, name)?;
        let ty = coarser(ta, tb);
        for kind in kinds_for(ty) {
            features.push(Feature::new(name, name, kind));
        }
    }
    Ok(features)
}

fn rank(t: AttrType) -> u8 {
    match t {
        AttrType::Numeric => 0,
        AttrType::Boolean => 1,
        AttrType::ShortString => 2,
        AttrType::MediumString => 3,
        AttrType::LongString => 4,
    }
}

/// When the two sides disagree, pick the type that yields the more robust
/// (token-based) features. Numeric/boolean vs string disagreement resolves
/// to the string interpretation.
fn coarser(a: AttrType, b: AttrType) -> AttrType {
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("state", Dtype::Str),
                ("age", Dtype::Int),
            ],
            vec![vec![
                "a0".into(),
                "dave smith jones".into(),
                "WI".into(),
                Value::Int(40),
            ]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("state", Dtype::Str),
                ("age", Dtype::Int),
                ("extra", Dtype::Str),
            ],
            vec![vec![
                "b0".into(),
                "david smith jones".into(),
                "WI".into(),
                Value::Int(41),
                "only in b".into(),
            ]],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn generates_per_type_grids_and_skips_keys_and_unshared() {
        let (a, b) = tables();
        let feats = generate_features(&a, &b, &["id"]).unwrap();
        // name: medium string -> 5 kinds; state: short -> 4; age: numeric -> 3.
        assert_eq!(feats.len(), 5 + 4 + 3);
        assert!(feats.iter().all(|f| f.l_attr != "id"));
        assert!(feats.iter().all(|f| f.l_attr != "extra"));
        // Paper-style names exist.
        assert!(feats
            .iter()
            .any(|f| f.name == "jaccard(3gram(A.name), 3gram(B.name))"));
        assert!(feats.iter().any(|f| f.name == "abs_diff(A.age, B.age)"));
    }

    #[test]
    fn feature_set_is_editable() {
        let (a, b) = tables();
        let mut feats = generate_features(&a, &b, &["id"]).unwrap();
        let before = feats.len();
        feats.retain(|f| f.l_attr != "age"); // user deletes age features
        feats.push(Feature::new("name", "name", FeatureKind::Jaro)); // adds one
        assert_eq!(feats.len(), before - 3 + 1);
    }

    #[test]
    fn type_disagreement_resolves_to_coarser() {
        assert_eq!(
            coarser(AttrType::ShortString, AttrType::MediumString),
            AttrType::MediumString
        );
        assert_eq!(
            coarser(AttrType::Numeric, AttrType::ShortString),
            AttrType::ShortString
        );
        assert_eq!(coarser(AttrType::Numeric, AttrType::Numeric), AttrType::Numeric);
    }

    #[test]
    fn every_generated_feature_computes_on_the_tables() {
        let (a, b) = tables();
        let feats = generate_features(&a, &b, &["id"]).unwrap();
        for f in &feats {
            let va = a.value_by_name(0, &f.l_attr).unwrap();
            let vb = b.value_by_name(0, &f.r_attr).unwrap();
            let v = f.compute(va, vb);
            assert!(v.is_nan() || (0.0..=1.0).contains(&v), "{} = {v}", f.name);
        }
    }
}
