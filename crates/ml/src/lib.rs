//! # magellan-ml
//!
//! Classical machine-learning substrate for Magellan-rs: the role
//! scikit-learn plays in PyMatcher (Table 3, "Matching" row) and that the
//! random-forest learner plays in Falcon/CloudMatcher.
//!
//! Provided learners (all binary classifiers over dense `f64` feature
//! vectors, all deterministic under a fixed seed):
//!
//! * [`tree::DecisionTreeLearner`] — CART with Gini or entropy splits;
//! * [`forest::RandomForestLearner`] — bagged trees with feature
//!   sub-sampling, per-tree vote access (Falcon extracts blocking rules
//!   from the trees and thresholds on the vote fraction α);
//! * [`linear::LogisticRegressionLearner`] — L2-regularized SGD;
//! * [`linear::LinearSvmLearner`] — hinge-loss SGD;
//! * [`naive_bayes::GaussianNbLearner`] and [`naive_bayes::BernoulliNbLearner`];
//! * [`knn::KnnLearner`].
//!
//! Model selection uses [`cv`] (stratified k-fold cross-validation — the
//! "select matcher using cross validation" step of the Fig. 2 guide) and
//! [`metrics`] (precision / recall / F1, the quantities every table in the
//! paper reports).
//!
//! Missing feature values (`NaN`) are legal inputs: trees route NaN to the
//! low branch (missing similarity reads as low similarity), linear models
//! and NB treat NaN as 0 after standardization. This mirrors how EM feature
//! vectors behave when an attribute value is absent.

#![warn(missing_docs)]

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod forest_flat;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod persist;
pub mod tree;

pub use cv::{cross_validate, train_test_split, CvReport};
pub use dataset::Dataset;
pub use forest::{predict_proba_batch, RandomForestClassifier, RandomForestLearner};
pub use forest_flat::FlatForest;
pub use linear::{LinearSvmLearner, LogisticRegressionLearner};
pub use metrics::Metrics;
pub use model::{Classifier, Learner};
pub use tree::{DecisionTreeClassifier, DecisionTreeLearner, Node, SplitCriterion};
