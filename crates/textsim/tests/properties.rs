//! Property-based tests for the similarity measures: bounds, symmetry,
//! identity, and triangle-style relations that every downstream tool
//! (blockers, feature generators, sim-joins) relies on.

use magellan_textsim::seqsim::*;
use magellan_textsim::setsim::*;
use magellan_textsim::tokenize::{QgramTokenizer, Tokenizer, WhitespaceTokenizer};
use magellan_textsim::TfIdfModel;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-d]{0,8}"
}

fn phrase() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-d]{1,5}", 0..5).prop_map(|v| v.join(" "))
}

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
        // Distance bounded by longer length.
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn sequence_sims_bounded_and_symmetric(a in word(), b in word()) {
        for f in [levenshtein_sim, jaro, jaro_winkler] {
            let s1 = f(&a, &b);
            let s2 = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&s1), "{} out of range", s1);
            prop_assert!((s1 - s2).abs() < 1e-12);
        }
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in word(), b in word()) {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn set_sims_bounded_symmetric_reflexive(x in phrase(), y in phrase()) {
        let tok = WhitespaceTokenizer::new();
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        for f in [jaccard::<String>, dice::<String>, cosine::<String>, overlap_coefficient::<String>] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
            prop_assert_eq!(f(&a, &a), 1.0);
        }
        // Known dominance chain: jaccard <= dice <= overlap_coefficient.
        prop_assert!(jaccard(&a, &b) <= dice(&a, &b) + 1e-12);
        prop_assert!(dice(&a, &b) <= overlap_coefficient(&a, &b) + 1e-12);
    }

    #[test]
    fn qgram_tokenizer_padded_count(s in "[a-z]{0,12}", q in 1usize..5) {
        let tok = QgramTokenizer::new(q);
        let n = s.chars().count();
        let toks = tok.tokenize(&s);
        if n == 0 && q > 1 {
            // padded empty string still yields q-1 grams of pure sentinels
            prop_assert_eq!(toks.len(), q - 1);
        } else if n == 0 {
            prop_assert!(toks.is_empty());
        } else {
            prop_assert_eq!(toks.len(), n + q - 1);
        }
        for t in &toks {
            prop_assert_eq!(t.chars().count(), q);
        }
    }

    #[test]
    fn tfidf_bounded_symmetric_reflexive(
        docs in proptest::collection::vec(phrase(), 1..6),
        x in phrase(),
        y in phrase(),
    ) {
        let tok = WhitespaceTokenizer::new();
        let corpus: Vec<Vec<String>> = docs.iter().map(|d| tok.tokenize(d)).collect();
        let m = TfIdfModel::fit(&corpus);
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        let s = m.tfidf(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - m.tfidf(&b, &a)).abs() < 1e-9);
        prop_assert!((m.tfidf(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monge_elkan_bounded(x in phrase(), y in phrase()) {
        let tok = WhitespaceTokenizer::new();
        let a = tok.tokenize(&x);
        let b = tok.tokenize(&y);
        let s = monge_elkan_jw(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((monge_elkan_jw(&a, &a) - 1.0).abs() < 1e-12 || a.is_empty());
    }

    #[test]
    fn hamming_matches_manual_count(a in "[ab]{0,10}") {
        // Same-length strings always have a Hamming distance; shifting one
        // char changes distance by at most 1.
        let b: String = a.chars().rev().collect();
        let d = hamming(&a, &b).expect("equal length");
        prop_assert!(d <= a.len());
    }
}
