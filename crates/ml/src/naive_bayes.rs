//! Gaussian naive Bayes.

use crate::dataset::Dataset;
use crate::model::{Classifier, Learner};

/// Gaussian naive Bayes learner. Per-class, per-feature means and
/// variances with a small variance floor; NaN features are skipped both
/// during fitting and scoring (treated as uninformative).
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianNbLearner;

/// Trained Gaussian NB model.
#[derive(Debug, Clone)]
pub struct GaussianNbClassifier {
    log_prior_pos: f64,
    log_prior_neg: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
}

const VAR_FLOOR: f64 = 1e-9;

fn class_stats(data: &Dataset, positive: bool) -> (Vec<f64>, Vec<f64>, usize) {
    let k = data.n_features();
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];
    let mut n = 0usize;
    for i in 0..data.len() {
        if data.label(i) != positive {
            continue;
        }
        n += 1;
        for (j, &x) in data.row(i).iter().enumerate() {
            if !x.is_nan() {
                sums[j] += x;
                counts[j] += 1;
            }
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let mut sq = vec![0.0; k];
    for i in 0..data.len() {
        if data.label(i) != positive {
            continue;
        }
        for (j, &x) in data.row(i).iter().enumerate() {
            if !x.is_nan() {
                sq[j] += (x - means[j]).powi(2);
            }
        }
    }
    let vars: Vec<f64> = sq
        .iter()
        .zip(&counts)
        .map(|(s, &c)| {
            if c == 0 {
                1.0
            } else {
                (s / c as f64).max(VAR_FLOOR)
            }
        })
        .collect();
    (means, vars, n)
}

impl Learner for GaussianNbLearner {
    fn name(&self) -> &str {
        "naive_bayes"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let (mean_pos, var_pos, n_pos) = class_stats(data, true);
        let (mean_neg, var_neg, n_neg) = class_stats(data, false);
        let n = data.len() as f64;
        // Laplace-smoothed priors keep single-class training sets finite.
        let log_prior_pos = ((n_pos as f64 + 1.0) / (n + 2.0)).ln();
        let log_prior_neg = ((n_neg as f64 + 1.0) / (n + 2.0)).ln();
        Box::new(GaussianNbClassifier {
            log_prior_pos,
            log_prior_neg,
            mean_pos,
            var_pos,
            mean_neg,
            var_neg,
        })
    }
}

fn log_likelihood(row: &[f64], means: &[f64], vars: &[f64]) -> f64 {
    let mut ll = 0.0;
    for ((x, m), v) in row.iter().zip(means).zip(vars) {
        if x.is_nan() {
            continue;
        }
        ll += -0.5 * ((x - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
    }
    ll
}

impl Classifier for GaussianNbClassifier {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let lp = self.log_prior_pos + log_likelihood(row, &self.mean_pos, &self.var_pos);
        let ln = self.log_prior_neg + log_likelihood(row, &self.mean_neg, &self.var_neg);
        // Softmax over the two log-joints, numerically stabilized.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }
}

/// Bernoulli naive Bayes: features are binarized at a threshold (default
/// 0.5 — natural for EM similarity features in `[0, 1]`) and modeled as
/// per-class Bernoulli variables with Laplace smoothing. NaN features are
/// skipped as uninformative.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliNbLearner {
    /// Binarization threshold: `x > threshold` counts as "on".
    pub threshold: f64,
}

impl Default for BernoulliNbLearner {
    fn default() -> Self {
        BernoulliNbLearner { threshold: 0.5 }
    }
}

/// Trained Bernoulli NB model.
#[derive(Debug, Clone)]
pub struct BernoulliNbClassifier {
    threshold: f64,
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// Per-feature log P(on | class) and log P(off | class).
    log_on_pos: Vec<f64>,
    log_off_pos: Vec<f64>,
    log_on_neg: Vec<f64>,
    log_off_neg: Vec<f64>,
}

fn bernoulli_stats(data: &Dataset, positive: bool, threshold: f64) -> (Vec<f64>, Vec<f64>, usize) {
    let k = data.n_features();
    let mut on = vec![0usize; k];
    let mut seen = vec![0usize; k];
    let mut n = 0usize;
    for i in 0..data.len() {
        if data.label(i) != positive {
            continue;
        }
        n += 1;
        for (j, &x) in data.row(i).iter().enumerate() {
            if !x.is_nan() {
                seen[j] += 1;
                if x > threshold {
                    on[j] += 1;
                }
            }
        }
    }
    // Laplace smoothing keeps probabilities strictly inside (0, 1).
    let log_on: Vec<f64> = on
        .iter()
        .zip(&seen)
        .map(|(&o, &s)| ((o as f64 + 1.0) / (s as f64 + 2.0)).ln())
        .collect();
    let log_off: Vec<f64> = on
        .iter()
        .zip(&seen)
        .map(|(&o, &s)| (((s - o) as f64 + 1.0) / (s as f64 + 2.0)).ln())
        .collect();
    (log_on, log_off, n)
}

impl Learner for BernoulliNbLearner {
    fn name(&self) -> &str {
        "bernoulli_nb"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let (log_on_pos, log_off_pos, n_pos) = bernoulli_stats(data, true, self.threshold);
        let (log_on_neg, log_off_neg, n_neg) = bernoulli_stats(data, false, self.threshold);
        let n = data.len() as f64;
        Box::new(BernoulliNbClassifier {
            threshold: self.threshold,
            log_prior_pos: ((n_pos as f64 + 1.0) / (n + 2.0)).ln(),
            log_prior_neg: ((n_neg as f64 + 1.0) / (n + 2.0)).ln(),
            log_on_pos,
            log_off_pos,
            log_on_neg,
            log_off_neg,
        })
    }
}

impl Classifier for BernoulliNbClassifier {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut lp = self.log_prior_pos;
        let mut ln = self.log_prior_neg;
        for (j, &x) in row.iter().enumerate() {
            if x.is_nan() {
                continue;
            }
            if x > self.threshold {
                lp += self.log_on_pos[j];
                ln += self.log_on_neg[j];
            } else {
                lp += self.log_off_pos[j];
                ln += self.log_off_neg[j];
            }
        }
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_dims(2);
        for _ in 0..n {
            let pos: bool = rng.gen_bool(0.5);
            let (cx, cy) = if pos { (1.0, 1.0) } else { (-1.0, -1.0) };
            d.push(
                &[cx + rng.gen_range(-0.7..0.7), cy + rng.gen_range(-0.7..0.7)],
                pos,
            );
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let train = blob_data(1, 300);
        let test = blob_data(2, 150);
        let c = GaussianNbLearner.fit(&train);
        let correct = (0..test.len())
            .filter(|&i| c.predict(test.row(i)) == test.label(i))
            .count();
        assert!(correct as f64 / test.len() as f64 > 0.95);
    }

    #[test]
    fn probabilities_valid_and_directional() {
        let c = GaussianNbLearner.fit(&blob_data(3, 200));
        let p_pos = c.predict_proba(&[1.0, 1.0]);
        let p_neg = c.predict_proba(&[-1.0, -1.0]);
        assert!(p_pos > 0.9 && p_neg < 0.1);
    }

    #[test]
    fn nan_features_are_uninformative() {
        let c = GaussianNbLearner.fit(&blob_data(4, 200));
        // Only the prior remains: close to 0.5 for balanced classes.
        let p = c.predict_proba(&[f64::NAN, f64::NAN]);
        assert!((0.3..=0.7).contains(&p), "{p}");
    }

    #[test]
    fn single_class_training_is_finite() {
        let d = Dataset::from_rows(&[vec![1.0], vec![2.0]], &[true, true]);
        let c = GaussianNbLearner.fit(&d);
        let p = c.predict_proba(&[1.5]);
        assert!(p.is_finite() && p > 0.5);
    }

    #[test]
    fn zero_variance_feature_is_floored() {
        let d = Dataset::from_rows(
            &[vec![1.0, 0.2], vec![1.0, 0.8], vec![1.0, 0.1], vec![1.0, 0.9]],
            &[false, true, false, true],
        );
        let c = GaussianNbLearner.fit(&d);
        assert!(c.predict_proba(&[1.0, 0.85]).is_finite());
        assert!(c.predict(&[1.0, 0.85]));
    }

    #[test]
    fn bernoulli_learns_binary_em_features() {
        // match iff isbn_on AND pages_on, like the Fig. 4 books.
        let mut d = Dataset::with_dims(2);
        for i in 0..40 {
            let isbn = f64::from(i % 2 == 0);
            let pages = f64::from(i % 3 == 0);
            d.push(&[isbn, pages], isbn == 1.0 && pages == 1.0);
        }
        let c = BernoulliNbLearner::default().fit(&d);
        assert!(c.predict(&[1.0, 1.0]));
        assert!(!c.predict(&[0.0, 0.0]));
        assert!(!c.predict(&[1.0, 0.0]));
    }

    #[test]
    fn bernoulli_nan_is_uninformative_and_threshold_respected() {
        let d = Dataset::from_rows(
            &[vec![0.9], vec![0.8], vec![0.1], vec![0.2]],
            &[true, true, false, false],
        );
        let c = BernoulliNbLearner::default().fit(&d);
        let p = c.predict_proba(&[f64::NAN]);
        assert!((0.3..=0.7).contains(&p), "{p}");
        assert!(c.predict(&[0.6]));
        assert!(!c.predict(&[0.4]));
        // Custom threshold flips the binarization point.
        let c = BernoulliNbLearner { threshold: 0.05 }.fit(&d);
        assert!(c.predict_proba(&[0.15]).is_finite());
    }
}
