//! The tokenize-once-per-record prepared layer for batch feature
//! extraction.
//!
//! The scalar path ([`crate::Feature::compute`]) re-normalizes and
//! re-tokenizes both attribute values for **every pair × every feature**.
//! But a feature set only ever needs each record's attribute in a handful
//! of distinct shapes — the feature set's distinct
//! `(attribute, normalization, tokenizer)` combinations — and each shape
//! needs computing **once per record**, not once per pair.
//!
//! [`PreparedPair`] is that cache. Given two tables and a feature list it
//! derives the distinct combinations ([`FeaturePlan`]), prepares exactly
//! the records the candidate pairs reference (lazily, so repeated
//! extractions over the same tables — e.g. Falcon's blocking-stage and
//! matching-stage matrices — reuse earlier work), and computes feature
//! rows from the prepared shapes:
//!
//! * trimmed + lowercased strings for the sequence measures;
//! * ordered token *bags* for Monge–Elkan;
//! * **sorted, deduplicated interned `u32` token sets** (one shared
//!   [`TokenInterner`] across both tables) for the set measures, which
//!   then run as allocation-free merge intersections
//!   ([`magellan_textsim::intern`]);
//! * parsed floats for the numeric measures.
//!
//! ## Bit-identity with the scalar path
//!
//! Every prepared shape is produced by the *same* normalization and
//! tokenizer calls the scalar path makes per pair, and the id kernels are
//! arithmetic-identical to the string measures (equal strings ⇔ equal
//! ids, so `|A|`, `|B|`, `|A ∩ B|` — the only inputs of any set measure —
//! are unchanged). `fvtable` pins this with a bitwise equivalence test,
//! and the golden e2e + chaos suites pin it end to end.

use std::collections::HashMap;

use magellan_par::{CacheStats, ParConfig, ParStats};
use magellan_table::Table;
use magellan_textsim::intern::{self, TokenInterner};
use magellan_textsim::tokenize::{AlphanumericTokenizer, Tokenizer};
use magellan_textsim::{numeric, seqsim, setsim};

use crate::feature::{Feature, FeatureKind, TokSpecF};
use crate::fvtable::FeatureMatrix;

/// The shape a feature needs an attribute value prepared into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PrepSpec {
    /// Trimmed, lowercased display string (sequence measures, exact match).
    LowerStr,
    /// Ordered lowercased alphanumeric token bag (Monge–Elkan).
    WordBag,
    /// Sorted deduplicated interned id set over word tokens.
    WordSet,
    /// Sorted deduplicated interned id set over padded q-grams.
    QgramSet(usize),
    /// Parsed float (numeric measures).
    Num,
}

impl PrepSpec {
    fn of(kind: FeatureKind) -> PrepSpec {
        match kind {
            FeatureKind::ExactMatch
            | FeatureKind::LevSim
            | FeatureKind::Jaro
            | FeatureKind::JaroWinkler => PrepSpec::LowerStr,
            FeatureKind::MongeElkanJw => PrepSpec::WordBag,
            FeatureKind::Jaccard(t)
            | FeatureKind::Cosine(t)
            | FeatureKind::Dice(t)
            | FeatureKind::OverlapCoeff(t) => match t {
                TokSpecF::Word => PrepSpec::WordSet,
                TokSpecF::Qgram(q) => PrepSpec::QgramSet(q),
            },
            FeatureKind::ExactNum | FeatureKind::AbsDiff | FeatureKind::RelDiff => PrepSpec::Num,
        }
    }

    /// Does preparing this shape invoke a tokenizer?
    fn tokenizes(&self) -> bool {
        matches!(
            self,
            PrepSpec::WordBag | PrepSpec::WordSet | PrepSpec::QgramSet(_)
        )
    }
}

/// One prepared cell: an attribute value in one shape.
#[derive(Debug, Clone)]
enum PrepValue {
    /// The value was null (every measure yields `NaN`).
    Null,
    /// Trimmed lowercased string.
    Str(String),
    /// Ordered token bag.
    Bag(Vec<String>),
    /// Sorted deduplicated interned token set.
    Set(Vec<u32>),
    /// Parsed float.
    Num(f64),
    /// Non-null but not parseable as a number (numeric measures → `NaN`).
    NotNum,
}

/// One `(column, shape)` combination's cells, lazily filled per record.
#[derive(Debug)]
struct PrepColumn {
    col: usize,
    spec: PrepSpec,
    /// `None` = not yet prepared; `Some(_)` = prepared exactly once.
    cells: Vec<Option<PrepValue>>,
}

/// All prepared combinations of one table.
#[derive(Debug, Default)]
struct PreparedSide {
    cols: Vec<PrepColumn>,
    index: HashMap<(usize, PrepSpec), usize>,
}

impl PreparedSide {
    fn slot(&mut self, col: usize, spec: PrepSpec, nrows: usize) -> usize {
        *self.index.entry((col, spec)).or_insert_with(|| {
            self.cols.push(PrepColumn {
                col,
                spec,
                cells: vec![None; nrows],
            });
            self.cols.len() - 1
        })
    }
}

/// A feature list resolved against a [`PreparedPair`]: per feature, the
/// computation kind plus the prepared-slot each side reads from.
#[derive(Debug, Clone)]
pub struct FeaturePlan {
    entries: Vec<PlanEntry>,
    names: Vec<String>,
    /// Features whose scalar evaluation tokenizes both sides.
    n_token_features: usize,
}

#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    kind: FeatureKind,
    l_slot: usize,
    r_slot: usize,
}

impl FeaturePlan {
    /// Number of planned features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no features are planned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tokenizer invocations the scalar path would spend on `n_pairs`
    /// pairs of this plan (two sides per token feature per pair).
    pub fn scalar_tokenize_calls(&self, n_pairs: usize) -> usize {
        2 * n_pairs * self.n_token_features
    }
}

/// The shared record-preparation cache over one `(A, B)` table pair.
///
/// Create once per workload, [`PreparedPair::plan`] each feature list
/// against it, and extract matrices with
/// [`crate::fvtable::extract_with_prepared`]. Preparation is lazy and
/// cumulative: combinations and records prepared for one plan are reused
/// by every later plan that shares them (see [`PreparedPair::cache_stats`]).
#[derive(Debug)]
pub struct PreparedPair<'t> {
    a: &'t Table,
    b: &'t Table,
    interner: TokenInterner,
    left: PreparedSide,
    right: PreparedSide,
    stats: CacheStats,
}

impl<'t> PreparedPair<'t> {
    /// Empty cache over a table pair — nothing is prepared until a plan
    /// asks for it.
    pub fn new(a: &'t Table, b: &'t Table) -> Self {
        PreparedPair {
            a,
            b,
            interner: TokenInterner::new(),
            left: PreparedSide::default(),
            right: PreparedSide::default(),
            stats: CacheStats::default(),
        }
    }

    /// Resolve a feature list into a plan, registering any new
    /// `(attribute, shape)` combinations. Errors on unknown attributes,
    /// exactly like the unprepared extractor.
    pub fn plan(&mut self, features: &[Feature]) -> magellan_table::Result<FeaturePlan> {
        let mut entries = Vec::with_capacity(features.len());
        let mut n_token_features = 0;
        for f in features {
            let li = self.a.schema().try_index_of(&f.l_attr)?;
            let ri = self.b.schema().try_index_of(&f.r_attr)?;
            let spec = PrepSpec::of(f.kind);
            if spec.tokenizes() {
                n_token_features += 1;
            }
            entries.push(PlanEntry {
                kind: f.kind,
                l_slot: self.left.slot(li, spec, self.a.nrows()),
                r_slot: self.right.slot(ri, spec, self.b.nrows()),
            });
        }
        Ok(FeaturePlan {
            entries,
            names: features.iter().map(|f| f.name.clone()).collect(),
            n_token_features,
        })
    }

    /// Prepare every record the given pairs reference, for every slot the
    /// plan reads. Cells already prepared (by this or an earlier plan)
    /// are counted as cache hits and not recomputed.
    pub fn prepare_for_pairs(&mut self, plan: &FeaturePlan, pairs: &[(u32, u32)]) {
        let mut l_ref = vec![false; self.a.nrows()];
        let mut r_ref = vec![false; self.b.nrows()];
        for &(ra, rb) in pairs {
            l_ref[ra as usize] = true;
            r_ref[rb as usize] = true;
        }
        // Distinct slots per side (several features can share one slot).
        let mut l_slots: Vec<usize> = plan.entries.iter().map(|e| e.l_slot).collect();
        l_slots.sort_unstable();
        l_slots.dedup();
        let mut r_slots: Vec<usize> = plan.entries.iter().map(|e| e.r_slot).collect();
        r_slots.sort_unstable();
        r_slots.dedup();

        let PreparedPair {
            a,
            b,
            interner,
            left,
            right,
            stats,
        } = self;
        for &s in &l_slots {
            prepare_column(&mut left.cols[s], a, &l_ref, interner, stats);
        }
        for &s in &r_slots {
            prepare_column(&mut right.cols[s], b, &r_ref, interner, stats);
        }
        stats.interner_tokens = interner.len();
    }

    /// Evaluate a planned feature row for one prepared pair.
    ///
    /// # Panics
    /// If the pair's records were not prepared for this plan (call
    /// [`PreparedPair::prepare_for_pairs`] first).
    pub fn compute_row(&self, plan: &FeaturePlan, ra: usize, rb: usize) -> Vec<f64> {
        let mut row = Vec::with_capacity(plan.entries.len());
        for e in &plan.entries {
            let va = self.left.cols[e.l_slot].cells[ra]
                .as_ref()
                .expect("left record prepared");
            let vb = self.right.cols[e.r_slot].cells[rb]
                .as_ref()
                .expect("right record prepared");
            row.push(compute_prepared(e.kind, va, vb));
        }
        row
    }

    /// Cumulative cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Distinct tokens interned so far.
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// The tables this cache was built over.
    pub fn tables(&self) -> (&'t Table, &'t Table) {
        (self.a, self.b)
    }
}

/// Fill one combination's cells for every referenced, still-unprepared
/// record.
fn prepare_column(
    column: &mut PrepColumn,
    table: &Table,
    referenced: &[bool],
    interner: &mut TokenInterner,
    stats: &mut CacheStats,
) {
    for (r, &wanted) in referenced.iter().enumerate() {
        if !wanted {
            continue;
        }
        stats.lookups += 1;
        if column.cells[r].is_some() {
            stats.hits += 1;
            continue;
        }
        let v = table.value(r, column.col);
        let cell = if v.is_null() {
            PrepValue::Null
        } else {
            match column.spec {
                PrepSpec::Num => v
                    .as_float()
                    .map(PrepValue::Num)
                    .unwrap_or(PrepValue::NotNum),
                PrepSpec::LowerStr => {
                    PrepValue::Str(v.display_string().trim().to_lowercase())
                }
                PrepSpec::WordBag => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    PrepValue::Bag(AlphanumericTokenizer::new().tokenize(&s))
                }
                PrepSpec::WordSet => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    let toks = AlphanumericTokenizer::as_set().tokenize(&s);
                    PrepValue::Set(interner.intern_set(&toks))
                }
                PrepSpec::QgramSet(q) => {
                    let s = v.display_string().trim().to_lowercase();
                    stats.tokenize_calls += 1;
                    let toks =
                        magellan_textsim::tokenize::QgramTokenizer::as_set(q).tokenize(&s);
                    PrepValue::Set(interner.intern_set(&toks))
                }
            }
        };
        column.cells[r] = Some(cell);
        stats.records_prepared += 1;
    }
}

/// The prepared-shape evaluation of one feature kind — mirrors
/// [`crate::Feature::compute`] case for case so results are bit-identical.
fn compute_prepared(kind: FeatureKind, va: &PrepValue, vb: &PrepValue) -> f64 {
    if matches!(va, PrepValue::Null) || matches!(vb, PrepValue::Null) {
        return f64::NAN;
    }
    match kind {
        FeatureKind::ExactNum | FeatureKind::AbsDiff | FeatureKind::RelDiff => {
            let (PrepValue::Num(x), PrepValue::Num(y)) = (va, vb) else {
                return f64::NAN;
            };
            match kind {
                FeatureKind::ExactNum => numeric::exact_match_num(*x, *y),
                FeatureKind::AbsDiff => numeric::abs_diff_sim(*x, *y),
                FeatureKind::RelDiff => numeric::rel_diff_sim(*x, *y),
                _ => unreachable!(),
            }
        }
        FeatureKind::ExactMatch
        | FeatureKind::LevSim
        | FeatureKind::Jaro
        | FeatureKind::JaroWinkler => {
            let (PrepValue::Str(sa), PrepValue::Str(sb)) = (va, vb) else {
                debug_assert!(false, "string feature over non-string prep");
                return f64::NAN;
            };
            match kind {
                FeatureKind::ExactMatch => f64::from(sa == sb),
                FeatureKind::LevSim => seqsim::levenshtein_sim(sa, sb),
                FeatureKind::Jaro => seqsim::jaro(sa, sb),
                FeatureKind::JaroWinkler => seqsim::jaro_winkler(sa, sb),
                _ => unreachable!(),
            }
        }
        FeatureKind::MongeElkanJw => {
            let (PrepValue::Bag(ba), PrepValue::Bag(bb)) = (va, vb) else {
                debug_assert!(false, "monge-elkan over non-bag prep");
                return f64::NAN;
            };
            setsim::monge_elkan_jw(ba, bb)
        }
        FeatureKind::Jaccard(_)
        | FeatureKind::Cosine(_)
        | FeatureKind::Dice(_)
        | FeatureKind::OverlapCoeff(_) => {
            let (PrepValue::Set(ia), PrepValue::Set(ib)) = (va, vb) else {
                debug_assert!(false, "set feature over non-set prep");
                return f64::NAN;
            };
            // The scalar path returns NaN when either tokenization is
            // empty — preserved exactly.
            if ia.is_empty() || ib.is_empty() {
                return f64::NAN;
            }
            match kind {
                FeatureKind::Jaccard(_) => intern::jaccard_ids(ia, ib),
                FeatureKind::Cosine(_) => intern::cosine_ids(ia, ib),
                FeatureKind::Dice(_) => intern::dice_ids(ia, ib),
                FeatureKind::OverlapCoeff(_) => intern::overlap_coefficient_ids(ia, ib),
                _ => unreachable!(),
            }
        }
    }
}

/// Extract a feature matrix through a shared [`PreparedPair`] cache: plan
/// the features, prepare the referenced records once each, then evaluate
/// pair rows on the `magellan-par` pool (bit-identical to
/// [`crate::extract_feature_matrix`] for any worker count).
///
/// The returned [`ParStats`] carries this call's [`CacheStats`] delta —
/// records prepared, tokenize calls spent and saved versus the scalar
/// path, lookups/hits (hits = reuse of earlier preparation), and the
/// shared interner's vocabulary size.
pub fn extract_with_prepared(
    prepared: &mut PreparedPair<'_>,
    pairs: &[(u32, u32)],
    features: &[Feature],
    cfg: &ParConfig,
) -> magellan_table::Result<(FeatureMatrix, ParStats)> {
    let plan = prepared.plan(features)?;
    let before = prepared.cache_stats();
    prepared.prepare_for_pairs(&plan, pairs);
    let after = prepared.cache_stats();

    let spent = after.tokenize_calls - before.tokenize_calls;
    let cache = CacheStats {
        records_prepared: after.records_prepared - before.records_prepared,
        tokenize_calls: spent,
        tokenize_calls_saved: plan.scalar_tokenize_calls(pairs.len()).saturating_sub(spent),
        lookups: after.lookups - before.lookups,
        hits: after.hits - before.hits,
        interner_tokens: after.interner_tokens,
    };
    // Also fold the per-call savings into the cumulative counters so
    // `PreparedPair::cache_stats` reports workload totals.
    prepared.stats.tokenize_calls_saved += cache.tokenize_calls_saved;

    let shared: &PreparedPair<'_> = prepared;
    let (rows, mut stats) = magellan_par::map_indexed(pairs.len(), cfg, |p| {
        let (ra, rb) = pairs[p];
        shared.compute_row(&plan, ra as usize, rb as usize)
    });
    // Publish this call's cache delta as `magellan_features_cache_*`
    // registry metrics (no-op when observability is disabled); the struct
    // keeps riding along in `ParStats` for reports.
    cache.publish();
    stats.cache = cache;
    Ok((
        FeatureMatrix {
            names: plan.names.clone(),
            rows,
            pairs: pairs.to_vec(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureKind, TokSpecF};
    use crate::fvtable::extract_feature_matrix_scalar;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("city", Dtype::Str),
                ("age", Dtype::Int),
            ],
            vec![
                vec!["a0".into(), "Dave  Smith".into(), "Madison".into(), Value::Int(40)],
                vec!["a1".into(), Value::Null, "Chicago!!".into(), Value::Int(31)],
                vec!["a2".into(), "O'Brien, J.R.".into(), Value::Null, Value::Null],
                vec!["a3".into(), "!!!".into(), "  ".into(), Value::Int(7)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("city", Dtype::Str),
                ("age", Dtype::Int),
            ],
            vec![
                vec!["b0".into(), "dave smith".into(), "madison".into(), Value::Int(41)],
                vec!["b1".into(), "J R O Brien".into(), "chicago".into(), Value::Null],
            ],
        )
        .unwrap();
        (a, b)
    }

    fn all_kind_features() -> Vec<Feature> {
        vec![
            Feature::new("name", "name", FeatureKind::ExactMatch),
            Feature::new("name", "name", FeatureKind::LevSim),
            Feature::new("name", "name", FeatureKind::Jaro),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("name", "name", FeatureKind::MongeElkanJw),
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Cosine(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Dice(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::OverlapCoeff(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Qgram(3))),
            Feature::new("city", "city", FeatureKind::Cosine(TokSpecF::Qgram(2))),
            Feature::new("age", "age", FeatureKind::ExactNum),
            Feature::new("age", "age", FeatureKind::AbsDiff),
            Feature::new("age", "age", FeatureKind::RelDiff),
        ]
    }

    fn all_pairs(a: &Table, b: &Table) -> Vec<(u32, u32)> {
        (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect()
    }

    /// The prepared path is **bit-identical** to the scalar per-pair path
    /// for every feature kind, including nulls, empty tokenizations,
    /// non-numeric values, and duplicate tokens.
    #[test]
    fn prepared_rows_bit_identical_to_scalar() {
        let (a, b) = tables();
        let features = all_kind_features();
        let pairs = all_pairs(&a, &b);
        let scalar = extract_feature_matrix_scalar(&pairs, &a, &b, &features).unwrap();
        let mut prepared = PreparedPair::new(&a, &b);
        let (cached, stats) =
            extract_with_prepared(&mut prepared, &pairs, &features, &ParConfig::serial())
                .unwrap();
        assert_eq!(cached.names, scalar.names);
        assert_eq!(cached.pairs, scalar.pairs);
        for (i, (cr, sr)) in cached.rows.iter().zip(&scalar.rows).enumerate() {
            for (j, (cv, sv)) in cr.iter().zip(sr).enumerate() {
                assert_eq!(
                    cv.to_bits(),
                    sv.to_bits(),
                    "pair {i} feature {j} ({}) diverged: {cv} vs {sv}",
                    cached.names[j]
                );
            }
        }
        assert!(stats.cache.records_prepared > 0);
        assert!(stats.cache.tokenize_calls > 0);
        assert!(stats.cache.tokenize_calls_saved > 0);
        assert!(stats.cache.interner_tokens > 0);
    }

    /// Parallel prepared extraction is bit-identical to serial for any
    /// worker count (prepared data is immutable during the pair map).
    #[test]
    fn prepared_extraction_worker_count_invariant() {
        let (a, b) = tables();
        let features = all_kind_features();
        let pairs = all_pairs(&a, &b);
        let mut reference_prep = PreparedPair::new(&a, &b);
        let (reference, _) = extract_with_prepared(
            &mut reference_prep,
            &pairs,
            &features,
            &ParConfig::serial(),
        )
        .unwrap();
        for w in [2, 3, 8] {
            let mut prep = PreparedPair::new(&a, &b);
            let (m, _) =
                extract_with_prepared(&mut prep, &pairs, &features, &ParConfig::workers(w))
                    .unwrap();
            for (cr, sr) in m.rows.iter().zip(&reference.rows) {
                for (cv, sv) in cr.iter().zip(sr) {
                    assert_eq!(cv.to_bits(), sv.to_bits(), "{w} workers diverged");
                }
            }
        }
    }

    /// A second plan over the same cache reuses earlier preparation:
    /// shared (attribute, tokenizer) combinations report cache hits and
    /// spend no new tokenize calls for already-prepared records.
    #[test]
    fn cross_plan_reuse_hits_cache() {
        let (a, b) = tables();
        let pairs = all_pairs(&a, &b);
        let mut prepared = PreparedPair::new(&a, &b);
        let stage1 = vec![Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word))];
        let (_, s1) =
            extract_with_prepared(&mut prepared, &pairs, &stage1, &ParConfig::serial()).unwrap();
        assert_eq!(s1.cache.hits, 0);
        assert!(s1.cache.tokenize_calls > 0);

        // Stage 2 shares the word-set combination and adds a new one.
        let stage2 = vec![
            Feature::new("name", "name", FeatureKind::Cosine(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::Dice(TokSpecF::Word)),
            Feature::new("city", "city", FeatureKind::Jaccard(TokSpecF::Word)),
        ];
        let (_, s2) =
            extract_with_prepared(&mut prepared, &pairs, &stage2, &ParConfig::serial()).unwrap();
        // name word-sets were already prepared: all those lookups hit.
        assert!(s2.cache.hits > 0, "no cross-plan reuse: {:?}", s2.cache);
        // Only the city column prepared anew: 4 A rows + 2 B rows, one of
        // which (a2's city) is Null and therefore prepared without
        // spending a tokenize call.
        assert_eq!(s2.cache.records_prepared, 6);
        assert_eq!(s2.cache.tokenize_calls, 5);
        let total = prepared.cache_stats();
        assert_eq!(total.lookups, s1.cache.lookups + s2.cache.lookups);
        assert!(total.hit_rate() > 0.0);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (a, b) = tables();
        let mut prepared = PreparedPair::new(&a, &b);
        let bad = vec![Feature::new("nope", "name", FeatureKind::ExactMatch)];
        assert!(prepared.plan(&bad).is_err());
        let (aa, bb) = prepared.tables();
        assert_eq!(aa.nrows(), a.nrows());
        assert_eq!(bb.nrows(), b.nrows());
    }

    #[test]
    fn empty_pairs_prepare_nothing() {
        let (a, b) = tables();
        let mut prepared = PreparedPair::new(&a, &b);
        let features = vec![Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word))];
        let (m, stats) =
            extract_with_prepared(&mut prepared, &[], &features, &ParConfig::serial()).unwrap();
        assert!(m.is_empty());
        assert_eq!(stats.cache.records_prepared, 0);
        assert_eq!(stats.cache.tokenize_calls, 0);
        assert_eq!(prepared.interner_len(), 0);
    }
}
