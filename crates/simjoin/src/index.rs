//! Prefix inverted index.

use std::collections::HashMap;

/// Inverted index from token id to the (record, position) pairs whose
/// *prefix* contains that token. Built over the indexed (right) side of a
/// join; probed with the prefixes of the other side.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    postings: HashMap<u32, Vec<(u32, u32)>>,
}

impl PrefixIndex {
    /// Build the index. `prefix_len_of(size)` gives the number of leading
    /// (rarest) tokens of a record of that size to index.
    pub fn build(records: &[Vec<u32>], prefix_len_of: impl Fn(usize) -> usize) -> Self {
        let mut postings: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for (rid, rec) in records.iter().enumerate() {
            let plen = prefix_len_of(rec.len()).min(rec.len());
            for (pos, &tok) in rec[..plen].iter().enumerate() {
                postings
                    .entry(tok)
                    .or_default()
                    .push((rid as u32, pos as u32));
            }
        }
        PrefixIndex { postings }
    }

    /// Postings list of a token (records whose prefix holds the token).
    pub fn get(&self, token: u32) -> &[(u32, u32)] {
        self.postings.get(&token).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct indexed tokens.
    pub fn n_tokens(&self) -> usize {
        self.postings.len()
    }

    /// Total postings across all tokens.
    pub fn n_postings(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_only_prefixes() {
        let records = vec![vec![1, 2, 3, 4], vec![2, 5], vec![]];
        // Constant prefix length of 2.
        let idx = PrefixIndex::build(&records, |_| 2);
        assert_eq!(idx.get(1), &[(0, 0)]);
        assert_eq!(idx.get(2), &[(0, 1), (1, 0)]);
        assert!(idx.get(3).is_empty(), "token 3 is beyond record 0's prefix");
        assert_eq!(idx.get(5), &[(1, 1)]);
        assert_eq!(idx.n_tokens(), 3);
        assert_eq!(idx.n_postings(), 4);
    }

    #[test]
    fn prefix_longer_than_record_is_clamped() {
        let records = vec![vec![7]];
        let idx = PrefixIndex::build(&records, |_| 10);
        assert_eq!(idx.get(7), &[(0, 0)]);
    }

    #[test]
    fn size_dependent_prefix() {
        let records = vec![vec![1, 2, 3, 4], vec![1, 2]];
        // Half the record, at least 1.
        let idx = PrefixIndex::build(&records, |s| (s / 2).max(1));
        assert_eq!(idx.get(1).len(), 2);
        assert_eq!(idx.get(2).len(), 1); // only the 4-token record indexes position 1
    }
}
