//! Query-by-committee active learning over a random forest (the learning
//! core of Falcon's Steps 2 and 5).
//!
//! The pool matrices scored here are extracted through the shared
//! tokenize-once-per-record cache
//! ([`magellan_features::PreparedPair`]) by `run_falcon`/`run_smurf`, so
//! both stages' pools reuse one interned vocabulary and per-record token
//! sets; this module itself only ever touches the dense `f64` rows.

use magellan_features::FeatureMatrix;
use magellan_ml::{Dataset, RandomForestClassifier, RandomForestLearner};
use magellan_par::ParConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Active-learning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ActiveLearnConfig {
    /// Initial labeled seed size (half similarity-ranked, half random —
    /// random seeding alone would find no positives at EM's low match
    /// densities).
    pub seed_size: usize,
    /// Labels per subsequent round.
    pub batch_size: usize,
    /// Maximum rounds after seeding.
    pub max_rounds: usize,
    /// Trees in the committee.
    pub n_trees: usize,
    /// Early stop when the highest remaining vote entropy falls below
    /// this (committee agrees everywhere).
    pub stop_entropy: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for committee training and pool scoring (the
    /// outcome is **identical for any worker count**: both loops run on
    /// the deterministic `magellan-par` executor).
    pub n_workers: usize,
}

impl Default for ActiveLearnConfig {
    fn default() -> Self {
        ActiveLearnConfig {
            seed_size: 20,
            batch_size: 10,
            max_rounds: 10,
            n_trees: 10,
            stop_entropy: 0.05,
            seed: 7,
            n_workers: 1,
        }
    }
}

/// The result of an active-learning session.
pub struct ActiveLearnOutcome {
    /// The committee trained on everything labeled.
    pub forest: RandomForestClassifier,
    /// `(pool position, label)` in ask order.
    pub labeled: Vec<(usize, bool)>,
    /// Questions asked (= `labeled.len()`).
    pub questions: usize,
    /// Rounds run after seeding.
    pub rounds: usize,
}

/// Cheap similarity proxy for seeding: mean of the non-NaN features.
fn proxy_score(row: &[f64]) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for &v in row {
        if !v.is_nan() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Run active learning over a feature-matrix pool. `label_fn` is called
/// once per chosen pool position and must answer match (true) / no-match.
pub fn active_learn(
    pool: &FeatureMatrix,
    mut label_fn: impl FnMut(usize) -> bool,
    cfg: &ActiveLearnConfig,
) -> ActiveLearnOutcome {
    assert!(!pool.is_empty(), "cannot active-learn over an empty pool");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = pool.len();
    let mut is_labeled = vec![false; n];
    let mut labeled: Vec<(usize, bool)> = Vec::new();

    // Seeding: top third by similarity proxy (hunting positives), bottom
    // third (confident negatives), and a random third.
    let mut by_proxy: Vec<usize> = (0..n).collect();
    by_proxy.sort_by(|&i, &j| {
        proxy_score(&pool.rows[j])
            .partial_cmp(&proxy_score(&pool.rows[i]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let seed_size = cfg.seed_size.min(n).max(2);
    let third = seed_size.div_ceil(3);
    let mut seed_positions: Vec<usize> = Vec::with_capacity(seed_size);
    seed_positions.extend(by_proxy.iter().take(third));
    seed_positions.extend(by_proxy.iter().rev().take(third));
    let mut random_pool: Vec<usize> = (0..n).collect();
    random_pool.shuffle(&mut rng);
    for i in random_pool {
        if seed_positions.len() >= seed_size {
            break;
        }
        if !seed_positions.contains(&i) {
            seed_positions.push(i);
        }
    }
    for &i in seed_positions.iter().take(seed_size) {
        if !is_labeled[i] {
            is_labeled[i] = true;
            labeled.push((i, label_fn(i)));
        }
    }

    let fit = |labeled: &[(usize, bool)], round: usize| -> RandomForestClassifier {
        let mut data = Dataset::new(pool.names.clone());
        for &(i, y) in labeled {
            data.push(&pool.rows[i], y);
        }
        RandomForestLearner {
            n_trees: cfg.n_trees,
            seed: cfg.seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15),
            n_workers: cfg.n_workers,
            ..Default::default()
        }
        .fit_forest(&data)
    };

    let mut forest = fit(&labeled, 0);
    let mut rounds = 0;
    for round in 1..=cfg.max_rounds {
        let n_pos = labeled.iter().filter(|(_, y)| *y).count();
        let n_neg = labeled.len() - n_pos;
        // A committee trained on almost-one-class data is unanimously
        // negative (or positive) everywhere, so its entropy signal is
        // useless *and* its early-stop criterion fires spuriously. Until a
        // minimum of each class is in hand, hunt the missing class along
        // the similarity proxy instead (highest proxy when positives are
        // missing, lowest when negatives are).
        let min_class = 5.min(pool.len() / 4).max(1);
        let single_class = n_pos < min_class || n_neg < min_class;
        // Scoring the unlabeled pool dominates a round's cost; every score
        // is a pure function of the row, so the loop runs on the pool and
        // stays bit-identical for any worker count.
        let par = ParConfig::workers(cfg.n_workers);
        let (maybe_scored, _stats) = magellan_par::map_indexed(n, &par, |i| {
            if is_labeled[i] {
                return None;
            }
            let score = if single_class {
                if n_pos < min_class {
                    proxy_score(&pool.rows[i])
                } else {
                    -proxy_score(&pool.rows[i])
                }
            } else {
                forest.vote_entropy(&pool.rows[i])
            };
            Some((score, i))
        });
        let mut scored: Vec<(f64, usize)> = maybe_scored.into_iter().flatten().collect();
        if scored.is_empty() {
            break;
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1)));
        if !single_class && scored[0].0 < cfg.stop_entropy {
            break; // committee agrees on everything left
        }
        for &(_, i) in scored.iter().take(cfg.batch_size) {
            is_labeled[i] = true;
            labeled.push((i, label_fn(i)));
        }
        forest = fit(&labeled, round);
        rounds = round;
    }

    let questions = labeled.len();
    ActiveLearnOutcome {
        forest,
        labeled,
        questions,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_ml::Classifier;
    use rand::Rng;

    /// Pool with a linear decision boundary on feature 0 and a known gold
    /// labeling; match density ~15%.
    fn pool(seed: u64, n: usize) -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut gold = Vec::with_capacity(n);
        let mut pairs = Vec::with_capacity(n);
        for i in 0..n {
            let is_match = rng.gen_bool(0.15);
            let base: f64 = if is_match {
                rng.gen_range(0.7..1.0)
            } else {
                rng.gen_range(0.0..0.55)
            };
            rows.push(vec![base, rng.gen_range(0.0..1.0)]);
            gold.push(is_match);
            pairs.push((i as u32, i as u32));
        }
        (
            FeatureMatrix {
                names: vec!["sim".into(), "noise".into()],
                rows,
                pairs,
            },
            gold,
        )
    }

    #[test]
    fn learns_the_boundary_with_few_questions() {
        let (pool, gold) = pool(1, 800);
        let mut asked = 0usize;
        let outcome = active_learn(
            &pool,
            |i| {
                asked += 1;
                gold[i]
            },
            &ActiveLearnConfig::default(),
        );
        assert_eq!(outcome.questions, asked);
        assert!(
            outcome.questions <= 120,
            "too many questions: {}",
            outcome.questions
        );
        // Accuracy on the whole pool.
        let correct = (0..pool.len())
            .filter(|&i| outcome.forest.predict(&pool.rows[i]) == gold[i])
            .count();
        let acc = correct as f64 / pool.len() as f64;
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn beats_random_sampling_at_equal_budget() {
        let (pool, gold) = pool(2, 800);
        let cfg = ActiveLearnConfig::default();
        let outcome = active_learn(&pool, |i| gold[i], &cfg);
        let budget = outcome.questions;

        // Random baseline with the same number of labels.
        let mut rng = StdRng::seed_from_u64(99);
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        idx.shuffle(&mut rng);
        let mut data = Dataset::new(pool.names.clone());
        for &i in idx.iter().take(budget) {
            data.push(&pool.rows[i], gold[i]);
        }
        let baseline = RandomForestLearner {
            n_trees: cfg.n_trees,
            ..Default::default()
        }
        .fit_forest(&data);

        let acc = |f: &RandomForestClassifier| {
            (0..pool.len())
                .filter(|&i| f.predict(&pool.rows[i]) == gold[i])
                .count() as f64
                / pool.len() as f64
        };
        let a_active = acc(&outcome.forest);
        let a_random = acc(&baseline);
        assert!(
            a_active >= a_random - 0.02,
            "active {a_active} clearly worse than random {a_random}"
        );
    }

    #[test]
    fn seed_finds_positives_at_low_density() {
        let (pool, gold) = pool(3, 600);
        let outcome = active_learn(&pool, |i| gold[i], &ActiveLearnConfig::default());
        let pos = outcome.labeled.iter().filter(|(_, y)| *y).count();
        assert!(pos >= 2, "seeding found only {pos} positives");
    }

    #[test]
    fn early_stop_on_unanimous_committee() {
        // Perfectly separable, trivially learnable: should stop well short
        // of max_rounds.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![if i % 7 == 0 { 1.0 } else { 0.0 }])
            .collect();
        let gold: Vec<bool> = (0..200).map(|i| i % 7 == 0).collect();
        let pool = FeatureMatrix {
            names: vec!["sim".into()],
            rows,
            pairs: (0..200).map(|i| (i as u32, i as u32)).collect(),
        };
        let cfg = ActiveLearnConfig {
            max_rounds: 50,
            ..Default::default()
        };
        let outcome = active_learn(&pool, |i| gold[i], &cfg);
        assert!(outcome.rounds < 50, "no early stop: {} rounds", outcome.rounds);
    }

    #[test]
    fn exhausts_tiny_pools_without_panic() {
        let pool = FeatureMatrix {
            names: vec!["sim".into()],
            rows: vec![vec![0.1], vec![0.9], vec![0.5]],
            pairs: vec![(0, 0), (1, 1), (2, 2)],
        };
        let outcome = active_learn(&pool, |i| i == 1, &ActiveLearnConfig::default());
        assert!(outcome.questions <= 3);
    }

    /// The whole active-learning session — seeding, committee training,
    /// pool scoring, batch selection — is bit-identical for any worker
    /// count: the same questions in the same order, the same rounds, and a
    /// committee with the same scores.
    #[test]
    fn outcome_is_worker_count_invariant() {
        let (pool, gold) = pool(7, 500);
        let run = |w: usize| {
            let cfg = ActiveLearnConfig {
                n_workers: w,
                ..Default::default()
            };
            active_learn(&pool, |i| gold[i], &cfg)
        };
        let reference = run(1);
        for w in [2, 3, 7, 16] {
            let outcome = run(w);
            assert_eq!(outcome.labeled, reference.labeled, "{w} workers");
            assert_eq!(outcome.questions, reference.questions);
            assert_eq!(outcome.rounds, reference.rounds);
            for i in 0..pool.len() {
                assert_eq!(
                    outcome.forest.predict_proba(&pool.rows[i]).to_bits(),
                    reference.forest.predict_proba(&pool.rows[i]).to_bits(),
                    "{w} workers diverged at row {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        let pool = FeatureMatrix {
            names: vec![],
            rows: vec![],
            pairs: vec![],
        };
        active_learn(&pool, |_| false, &ActiveLearnConfig::default());
    }
}
