//! Attribute-type inference for feature generation.

use magellan_table::{Dtype, Table};

/// The EM-relevant type of an attribute, refining the storage dtype by the
/// observed token-length distribution (short names want q-gram measures,
/// long descriptions want word-token measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Numeric attribute (int or float storage).
    Numeric,
    /// Boolean attribute.
    Boolean,
    /// String averaging ≤ 2 word tokens (codes, single names, states).
    ShortString,
    /// String averaging ≤ 8 word tokens (full names, titles, addresses).
    MediumString,
    /// Longer free text.
    LongString,
}

/// Infer the [`AttrType`] of a column from its dtype and contents.
pub fn infer_attr_type(table: &Table, attr: &str) -> magellan_table::Result<AttrType> {
    let idx = table.schema().try_index_of(attr)?;
    match table.schema().field(idx).dtype {
        Dtype::Int | Dtype::Float => return Ok(AttrType::Numeric),
        Dtype::Bool => return Ok(AttrType::Boolean),
        Dtype::Str => {}
    }
    let mut total_tokens = 0usize;
    let mut nonnull = 0usize;
    for r in table.rows() {
        let v = table.value(r, idx);
        if let Some(s) = v.as_str() {
            total_tokens += s.split_whitespace().count();
            nonnull += 1;
        }
    }
    if nonnull == 0 {
        // All-null string column: treat as short (cheapest features).
        return Ok(AttrType::ShortString);
    }
    let mean = total_tokens as f64 / nonnull as f64;
    Ok(if mean <= 2.0 {
        AttrType::ShortString
    } else if mean <= 8.0 {
        AttrType::MediumString
    } else {
        AttrType::LongString
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Value;

    #[test]
    fn numeric_and_boolean_from_dtype() {
        let t = Table::from_rows(
            "T",
            &[("n", Dtype::Int), ("f", Dtype::Float), ("b", Dtype::Bool)],
            vec![vec![Value::Int(1), Value::Float(0.5), Value::Bool(true)]],
        )
        .unwrap();
        assert_eq!(infer_attr_type(&t, "n").unwrap(), AttrType::Numeric);
        assert_eq!(infer_attr_type(&t, "f").unwrap(), AttrType::Numeric);
        assert_eq!(infer_attr_type(&t, "b").unwrap(), AttrType::Boolean);
    }

    #[test]
    fn string_length_classes() {
        let t = Table::from_rows(
            "T",
            &[("code", Dtype::Str), ("name", Dtype::Str), ("desc", Dtype::Str)],
            vec![
                vec![
                    "WI".into(),
                    "dave smith jr".into(),
                    "a very long product description with many many word tokens inside it".into(),
                ],
                vec![
                    "CA".into(),
                    "joe w wilson".into(),
                    "another quite long description of a thing with lots of words to say".into(),
                ],
            ],
        )
        .unwrap();
        assert_eq!(infer_attr_type(&t, "code").unwrap(), AttrType::ShortString);
        assert_eq!(infer_attr_type(&t, "name").unwrap(), AttrType::MediumString);
        assert_eq!(infer_attr_type(&t, "desc").unwrap(), AttrType::LongString);
    }

    #[test]
    fn all_null_string_defaults_short() {
        let t = Table::from_rows(
            "T",
            &[("s", Dtype::Str)],
            vec![vec![Value::Null], vec![Value::Null]],
        )
        .unwrap();
        assert_eq!(infer_attr_type(&t, "s").unwrap(), AttrType::ShortString);
    }

    #[test]
    fn unknown_attr_errors() {
        let t = Table::from_rows("T", &[("s", Dtype::Str)], vec![]).unwrap();
        assert!(infer_attr_type(&t, "zzz").is_err());
    }
}
