//! # magellan-table
//!
//! The tabular substrate for the Magellan-rs EM ecosystem.
//!
//! The Magellan paper (SIGMOD '19, §4.1) stores all tables — the input
//! tables `A` and `B`, candidate sets, labeled samples, feature-vector
//! tables — in a *generic, well-known* tabular data structure so that every
//! tool in the ecosystem interoperates. In PyData that structure is the
//! pandas DataFrame; here it is [`Table`]: a typed, column-oriented,
//! in-memory table with nullable cells.
//!
//! Because a generic table cannot carry EM-specific metadata (keys,
//! key–foreign-key relationships between a candidate set and its base
//! tables), Magellan keeps that metadata in a stand-alone [`catalog::Catalog`],
//! and every command that *needs* a piece of metadata re-validates it before
//! trusting it (the paper's "self-containment" principle). Both halves of
//! that design are reproduced here, including the validation paths.
//!
//! The crate also provides RFC-4180-subset CSV I/O ([`csv`]) and dataset
//! profiling ([`profile`]) used by the how-to guide's data-exploration step.

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod emtbl;
pub mod error;
pub mod profile;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{CandidateMeta, Catalog, TableMeta};
pub use column::Column;
pub use emtbl::{ColumnSlice, ColumnarBuilder, MappedTable, OpenMode};
pub use error::TableError;
pub use schema::{Field, Schema};
pub use table::{ColView, Storage, Table, TableId};
pub use value::{Dtype, Value, ValueRef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;
