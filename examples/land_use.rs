//! The "Land Use" deployment (Appendix B of the paper): matching Brazilian
//! cattle-ranch records across two registries to trace deforestation
//! supply chains.
//!
//! ```text
//! cargo run --release --example land_use
//! ```
//!
//! The paper reports that PyMatcher achieved "much higher recall than the
//! company solution, while slightly reducing precision", which put it into
//! production. This example reproduces that comparison: an incumbent
//! exact-match-style rule pipeline vs. the PyMatcher development-stage
//! pipeline, on a synthetic ranch dataset whose two registries render
//! owner names in opposite orders (a dirt profile the incumbent cannot
//! survive).

use magellan_block::{AttrEquivalenceBlocker, Blocker, OverlapBlocker};
use magellan_core::evaluate::evaluate_matches;
use magellan_core::labeling::OracleLabeler;
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_datagen::domains::ranches;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::generate_features;
use magellan_ml::{DecisionTreeLearner, Learner, LogisticRegressionLearner, RandomForestLearner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two registries of ranch records (CAR/GTA-style), moderate dirt.
    let scenario = ranches(&ScenarioConfig {
        size_a: 1500,
        size_b: 1500,
        n_matches: 500,
        dirt: DirtModel::moderate(),
        seed: 2018,
    });
    let (a, b) = (&scenario.table_a, &scenario.table_b);
    println!(
        "registries: {} x {} ranches, {} true cross-registry matches\n",
        a.nrows(),
        b.nrows(),
        scenario.gold.len()
    );

    // --- The incumbent "company solution": exact owner-name equality
    // within the same municipality. ---
    let by_owner = AttrEquivalenceBlocker::on("owner").block(a, b)?;
    let by_muni = AttrEquivalenceBlocker::on("municipality").block(a, b)?;
    let company = by_owner.intersect(&by_muni);
    let company_metrics = evaluate_matches(&company, a, b, "id", "id", &scenario.gold)?;
    println!("company solution (exact owner+municipality): {company_metrics}");

    // --- PyMatcher: the Fig. 2 development-stage pipeline. ---
    let features = generate_features(a, b, &["id"])?;
    let mut labeler = OracleLabeler::new(scenario.gold.clone(), "id", "id");
    let tree = DecisionTreeLearner::default();
    let forest = RandomForestLearner {
        n_trees: 15,
        ..Default::default()
    };
    let logit = LogisticRegressionLearner::default();
    let learners: Vec<&dyn Learner> = vec![&tree, &forest, &logit];
    let blockers: Vec<Box<dyn Blocker>> = vec![
        Box::new(OverlapBlocker::words("owner", 1)),
        Box::new(AttrEquivalenceBlocker::on("municipality")),
    ];
    let (workflow, report) = run_development_stage(
        a,
        b,
        blockers,
        features,
        &learners,
        &mut labeler,
        &DevConfig {
            sample_size: 500,
            ..Default::default()
        },
    )?;

    println!("\nPyMatcher development stage:");
    for c in &report.blocker_choices {
        println!(
            "  blocker {:45} candidates={:7} est.recall={:.2}",
            c.name, c.n_candidates, c.est_recall
        );
    }
    println!("  chose blocker: {}", report.chosen_blocker);
    for cv in &report.cv_reports {
        println!(
            "  matcher {:22} CV F1 = {:.3}",
            cv.learner,
            cv.mean_f1()
        );
    }
    println!(
        "  chose matcher: {} (labeled {} pairs; holdout {})",
        report.chosen_matcher, report.questions, report.holdout
    );

    // Production run of the captured workflow over the full registries.
    let exec = magellan_core::exec::ProductionExecutor::new(4);
    let prod = exec.run(&workflow, a, b)?;
    let py_metrics = evaluate_matches(&prod.matches, a, b, "id", "id", &scenario.gold)?;
    println!(
        "\nPyMatcher production run ({} workers, {:?} machine time): {py_metrics}",
        prod.n_workers,
        prod.timings.total()
    );

    println!(
        "\nRecall: company {:.1}% -> PyMatcher {:.1}%  (precision {:.1}% -> {:.1}%)",
        100.0 * company_metrics.recall(),
        100.0 * py_metrics.recall(),
        100.0 * company_metrics.precision(),
        100.0 * py_metrics.precision(),
    );
    assert!(
        py_metrics.recall() > company_metrics.recall() + 0.2,
        "PyMatcher should clearly beat the incumbent's recall"
    );
    Ok(())
}
