//! Sim-join vs naive cross product — the scalability claim behind
//! `py_stringsimjoin` (and behind executing blocking rules as join plans).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_textsim::setsim;
use magellan_textsim::tokenize::{Tokenizer, WhitespaceTokenizer};
use magellan_simjoin::{
    join_tokenized, join_tokenized_hashmap, set_sim_join, set_sim_join_parallel, SetSimMeasure,
    TokenizedCollection,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_strings(n: usize, seed: u64) -> Vec<Option<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(2..6);
            Some(
                (0..k)
                    .map(|_| format!("tok{}", rng.gen_range(0..500)))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

/// Token soup with a controllable frequency skew: `skew = 0` is uniform;
/// larger values concentrate mass on a few heavy-hitter tokens (the
/// regime where postings lists get long and pruning pays).
fn make_skewed_strings(n: usize, seed: u64, vocab: usize, skew: f64) -> Vec<Option<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(3..9);
            Some(
                (0..k)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        format!("tok{}", (vocab as f64 * u.powf(1.0 + skew)) as usize)
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

fn naive_join(left: &[Option<String>], right: &[Option<String>], t: f64) -> usize {
    let tok = WhitespaceTokenizer::new();
    let ltoks: Vec<Vec<String>> = left
        .iter()
        .map(|s| s.as_deref().map(|s| tok.tokenize(s)).unwrap_or_default())
        .collect();
    let rtoks: Vec<Vec<String>> = right
        .iter()
        .map(|s| s.as_deref().map(|s| tok.tokenize(s)).unwrap_or_default())
        .collect();
    let mut n = 0;
    for a in &ltoks {
        for b in &rtoks {
            if !a.is_empty() && !b.is_empty() && setsim::jaccard(a, b) >= t {
                n += 1;
            }
        }
    }
    n
}

fn bench_join_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("jaccard_join_vs_naive");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let left = make_strings(n, 1);
        let right = make_strings(n, 2);
        let tok = WhitespaceTokenizer::new();
        g.bench_with_input(BenchmarkId::new("prefix_filter_join", n), &n, |b, _| {
            b.iter(|| {
                black_box(set_sim_join(
                    black_box(&left),
                    black_box(&right),
                    &tok,
                    SetSimMeasure::Jaccard(0.6),
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_cross_product", n), &n, |b, _| {
            b.iter(|| black_box(naive_join(black_box(&left), black_box(&right), 0.6)))
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_parallelism");
    g.sample_size(10);
    let left = make_strings(6_000, 3);
    let right = make_strings(6_000, 4);
    let tok = WhitespaceTokenizer::new();
    for workers in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(set_sim_join_parallel(
                    black_box(&left),
                    black_box(&right),
                    &tok,
                    SetSimMeasure::Jaccard(0.7),
                    w,
                ))
            })
        });
    }
    g.finish();
}

/// Scaling grid of the CSR engine vs the preserved HashMap engine:
/// collection size × threshold × token-frequency skew, same tokenized
/// input for both (the engines are bit-identical, so only time differs).
fn bench_engine_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_engine_grid");
    g.sample_size(10);
    let tok = WhitespaceTokenizer::new();
    for n in [1_000usize, 4_000] {
        for (skew_name, skew) in [("uniform", 0.0), ("skewed", 3.0)] {
            let left = make_skewed_strings(n, 11, 600, skew);
            let right = make_skewed_strings(n, 13, 600, skew);
            let coll = TokenizedCollection::build(&left, &right, &tok);
            for t in [0.5f64, 0.8] {
                let id = format!("n{n}/{skew_name}/t{t}");
                g.bench_with_input(BenchmarkId::new("csr", &id), &coll, |b, coll| {
                    b.iter(|| {
                        black_box(join_tokenized(black_box(coll), SetSimMeasure::Jaccard(t)))
                    })
                });
                g.bench_with_input(BenchmarkId::new("hashmap", &id), &coll, |b, coll| {
                    b.iter(|| {
                        black_box(join_tokenized_hashmap(
                            black_box(coll),
                            SetSimMeasure::Jaccard(t),
                        ))
                    })
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_join_vs_naive, bench_parallel, bench_engine_grid);
criterion_main!(benches);
