//! Sim-join vs naive cross product — the scalability claim behind
//! `py_stringsimjoin` (and behind executing blocking rules as join plans).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_textsim::setsim;
use magellan_textsim::tokenize::{Tokenizer, WhitespaceTokenizer};
use magellan_simjoin::{set_sim_join, set_sim_join_parallel, SetSimMeasure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_strings(n: usize, seed: u64) -> Vec<Option<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(2..6);
            Some(
                (0..k)
                    .map(|_| format!("tok{}", rng.gen_range(0..500)))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

fn naive_join(left: &[Option<String>], right: &[Option<String>], t: f64) -> usize {
    let tok = WhitespaceTokenizer::new();
    let ltoks: Vec<Vec<String>> = left
        .iter()
        .map(|s| s.as_deref().map(|s| tok.tokenize(s)).unwrap_or_default())
        .collect();
    let rtoks: Vec<Vec<String>> = right
        .iter()
        .map(|s| s.as_deref().map(|s| tok.tokenize(s)).unwrap_or_default())
        .collect();
    let mut n = 0;
    for a in &ltoks {
        for b in &rtoks {
            if !a.is_empty() && !b.is_empty() && setsim::jaccard(a, b) >= t {
                n += 1;
            }
        }
    }
    n
}

fn bench_join_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("jaccard_join_vs_naive");
    g.sample_size(10);
    for n in [500usize, 2000] {
        let left = make_strings(n, 1);
        let right = make_strings(n, 2);
        let tok = WhitespaceTokenizer::new();
        g.bench_with_input(BenchmarkId::new("prefix_filter_join", n), &n, |b, _| {
            b.iter(|| {
                black_box(set_sim_join(
                    black_box(&left),
                    black_box(&right),
                    &tok,
                    SetSimMeasure::Jaccard(0.6),
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_cross_product", n), &n, |b, _| {
            b.iter(|| black_box(naive_join(black_box(&left), black_box(&right), 0.6)))
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_parallelism");
    g.sample_size(10);
    let left = make_strings(6_000, 3);
    let right = make_strings(6_000, 4);
    let tok = WhitespaceTokenizer::new();
    for workers in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(set_sim_join_parallel(
                    black_box(&left),
                    black_box(&right),
                    &tok,
                    SetSimMeasure::Jaccard(0.7),
                    w,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join_vs_naive, bench_parallel);
criterion_main!(benches);
