//! Flattened-forest invariance suite (DESIGN.md §7.2): the SoA
//! inference layout ([`FlatForest`]) must be *observationally
//! invisible* — bit-identical scores vs. the preserved scalar tree walk
//! per pair, at every worker count, and through a persistence
//! round-trip — while the leaf probabilities keep the PR 1 Laplace
//! smoothing exactly.

use magellan_ml::dataset::Dataset;
use magellan_ml::forest::{predict_proba_batch as scalar_batch, RandomForestLearner};
use magellan_ml::model::Classifier;
use magellan_ml::tree::Node;
use magellan_ml::{persist, FlatForest, RandomForestClassifier};
use magellan_par::ParConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Messy EM-flavored feature rows: a mix of separable structure, noise
/// dimensions, and NaNs (missing similarities).
fn rows(seed: u64, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| {
                    if rng.gen_bool(0.08) {
                        f64::NAN
                    } else {
                        rng.gen_range(-1.5..1.5)
                    }
                })
                .collect()
        })
        .collect()
}

fn training_data(seed: u64, n: usize, dims: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::with_dims(dims);
    for _ in 0..n {
        let pos: bool = rng.gen_bool(0.5);
        let c = if pos { 0.7 } else { -0.7 };
        let row: Vec<f64> = (0..dims)
            .map(|j| {
                if rng.gen_bool(0.05) {
                    f64::NAN
                } else if j < 2 {
                    c + rng.gen_range(-1.0..1.0)
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        d.push(&row, pos);
    }
    d
}

fn forest(seed: u64) -> RandomForestClassifier {
    RandomForestLearner {
        n_trees: 11,
        seed,
        ..Default::default()
    }
    .fit_forest(&training_data(seed, 240, 5))
}

/// Per-pair bit-identity: flat scoring vs. the scalar walk on every row,
/// including NaN-bearing ones.
#[test]
fn flat_matches_scalar_per_pair() {
    for seed in [1u64, 2, 3] {
        let f = forest(seed);
        let flat = FlatForest::from_forest(&f);
        for row in rows(seed * 10, 300, 5) {
            assert_eq!(
                flat.predict_proba(&row).to_bits(),
                f.predict_proba(&row).to_bits(),
                "proba diverged (seed {seed})"
            );
            assert_eq!(
                flat.vote_fraction(&row).to_bits(),
                f.vote_fraction(&row).to_bits(),
                "vote diverged (seed {seed})"
            );
            assert_eq!(flat.predict(&row), f.predict(&row));
        }
    }
}

/// Worker-count invariance: the flat batch path equals the preserved
/// scalar batch reference at 1/2/4/8 workers, bit for bit — and the
/// forest's own batch method (now routed through the flat layout) agrees.
#[test]
fn flat_batch_invariant_across_worker_counts() {
    let f = forest(7);
    let flat = FlatForest::from_forest(&f);
    let batch = rows(70, 500, 5);
    let reference = scalar_batch(&f, &batch, &ParConfig::serial());
    for workers in [1usize, 2, 4, 8] {
        let cfg = ParConfig::workers(workers);
        for got in [
            flat.predict_proba_batch(&batch, &cfg),
            f.predict_proba_batch(&batch, &cfg),
            scalar_batch(&f, &batch, &cfg),
        ] {
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.to_bits(), r.to_bits(), "w={workers}");
            }
        }
    }
}

/// Persistence round-trip: save → load → flatten preserves every
/// prediction bit-identically (the flat layout is derived purely from
/// the persisted structure).
#[test]
fn persist_round_trip_preserves_flat_predictions() {
    let f = forest(13);
    let loaded = persist::load_forest(&persist::save_forest(&f)).expect("round trip");
    let flat_orig = FlatForest::from_forest(&f);
    let flat_loaded = FlatForest::from_forest(&loaded);
    for row in rows(130, 250, 5) {
        let want = f.predict_proba(&row).to_bits();
        assert_eq!(flat_orig.predict_proba(&row).to_bits(), want);
        assert_eq!(flat_loaded.predict_proba(&row).to_bits(), want);
    }
}

/// Laplace-smoothed leaves: every flat leaf probability is exactly
/// `(n_pos + 1) / (n + 2)` of the corresponding arena leaf (PR 1's
/// probability-estimation-tree fix), verified by scoring rows that pin
/// single-leaf trees.
#[test]
fn flat_leaves_keep_laplace_smoothing() {
    // Constant features → each tree is one leaf over its bootstrap bag;
    // with bootstrap off every tree sees the same 1-of-4-positive bag.
    let d = Dataset::from_rows(
        &[vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
        &[true, false, false, false],
    );
    let f = RandomForestLearner {
        n_trees: 4,
        bootstrap: false,
        ..Default::default()
    }
    .fit_forest(&d);
    let flat = FlatForest::from_forest(&f);
    // (1 + 1) / (4 + 2) per tree; mean over identical trees is the same.
    assert_eq!(flat.predict_proba(&[1.0]).to_bits(), (2.0f64 / 6.0).to_bits());
    // Cross-check against the arena leaves directly.
    for tree in f.trees() {
        for node in tree.nodes() {
            if let Node::Leaf { n, n_pos } = node {
                let expected = (*n_pos as f64 + 1.0) / (*n as f64 + 2.0);
                assert_eq!(expected.to_bits(), (2.0f64 / 6.0).to_bits());
            }
        }
    }
}
