//! The generic two-table EM scenario builder.

use std::collections::HashSet;

use magellan_table::{Dtype, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dirt::DirtModel;

/// Which table a rendering lands in. Generators use the side to apply
/// systematic *format drift* (source A writes "main street", source B
/// writes "main st"), on top of the random dirt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left table.
    A,
    /// The right table.
    B,
}

/// Scenario size and dirt knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Rows in table A.
    pub size_a: usize,
    /// Rows in table B.
    pub size_b: usize,
    /// Number of matched pairs (entities rendered into both tables).
    /// Must be ≤ min(size_a, size_b).
    pub n_matches: usize,
    /// Dirt profile applied to every rendering.
    pub dirt: DirtModel,
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A convenient small default: 500×500 with 150 matches, moderate dirt.
    pub fn small(seed: u64) -> Self {
        ScenarioConfig {
            size_a: 500,
            size_b: 500,
            n_matches: 150,
            dirt: DirtModel::moderate(),
            seed,
        }
    }
}

/// A generated two-table EM task with its gold standard.
#[derive(Debug, Clone)]
pub struct EmScenario {
    /// Scenario name (e.g. "products", "vendors_no_brazil").
    pub name: String,
    /// Left table; first column is the key `id` with values `a0, a1, ...`.
    pub table_a: Table,
    /// Right table; key values `b0, b1, ...`.
    pub table_b: Table,
    /// Gold matches as `(a_id, b_id)` pairs.
    pub gold: HashSet<(String, String)>,
}

impl EmScenario {
    /// Is the given id pair a gold match?
    pub fn is_match(&self, a_id: &str, b_id: &str) -> bool {
        self.gold
            .contains(&(a_id.to_owned(), b_id.to_owned()))
    }

    /// Fraction of the cross product that matches.
    pub fn match_density(&self) -> f64 {
        self.gold.len() as f64 / (self.table_a.nrows() * self.table_b.nrows()) as f64
    }
}

/// Build a scenario from a domain's entity generator and renderer.
///
/// * `gen_entity(rng)` draws one latent entity;
/// * `render(entity, side, rng, dirt)` renders it as a row **without** the
///   id column (the builder prepends `a{i}` / `b{i}` keys).
///
/// The first `n_matches` entities are rendered into both tables (two
/// independent dirt draws — matched rows differ realistically); the rest
/// fill each side. Row order is shuffled so matches are not positionally
/// aligned.
pub fn build_scenario<E>(
    name: &str,
    cfg: &ScenarioConfig,
    columns: &[(&str, Dtype)],
    mut gen_entity: impl FnMut(&mut StdRng) -> E,
    mut render: impl FnMut(&E, Side, &mut StdRng, &DirtModel) -> Vec<Value>,
) -> EmScenario {
    assert!(
        cfg.n_matches <= cfg.size_a.min(cfg.size_b),
        "n_matches exceeds table size"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_entities = cfg.size_a + cfg.size_b - cfg.n_matches;
    let entities: Vec<E> = (0..n_entities).map(|_| gen_entity(&mut rng)).collect();

    // Entity assignment: [0, n_matches) -> both; then A-only; then B-only.
    let mut a_rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(cfg.size_a);
    let mut b_rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(cfg.size_b);
    for (e, entity) in entities.iter().enumerate() {
        if e < cfg.n_matches {
            a_rows.push((e, render(entity, Side::A, &mut rng, &cfg.dirt)));
            b_rows.push((e, render(entity, Side::B, &mut rng, &cfg.dirt)));
        } else if e < cfg.n_matches + (cfg.size_a - cfg.n_matches) {
            a_rows.push((e, render(entity, Side::A, &mut rng, &cfg.dirt)));
        } else {
            b_rows.push((e, render(entity, Side::B, &mut rng, &cfg.dirt)));
        }
    }
    a_rows.shuffle(&mut rng);
    b_rows.shuffle(&mut rng);

    let mut schema: Vec<(&str, Dtype)> = vec![("id", Dtype::Str)];
    schema.extend_from_slice(columns);

    let build_table = |name: &str, prefix: &str, rows: &[(usize, Vec<Value>)]| -> (Table, Vec<(usize, String)>) {
        let mut ids = Vec::with_capacity(rows.len());
        let mut t = Table::with_capacity(name, magellan_table::Schema::from_pairs(&schema).expect("valid schema"), rows.len());
        for (i, (entity, row)) in rows.iter().enumerate() {
            let id = format!("{prefix}{i}");
            ids.push((*entity, id.clone()));
            let mut full = Vec::with_capacity(row.len() + 1);
            full.push(Value::Str(id));
            full.extend(row.iter().cloned());
            t.push_row(full).expect("generated row matches schema");
        }
        (t, ids)
    };
    let (table_a, a_ids) = build_table("A", "a", &a_rows);
    let (table_b, b_ids) = build_table("B", "b", &b_rows);

    // Gold: pairs whose renderings came from the same (matched) entity.
    let mut b_by_entity: std::collections::HashMap<usize, &str> = std::collections::HashMap::new();
    for (e, id) in &b_ids {
        if *e < cfg.n_matches {
            b_by_entity.insert(*e, id);
        }
    }
    let gold: HashSet<(String, String)> = a_ids
        .iter()
        .filter(|(e, _)| *e < cfg.n_matches)
        .map(|(e, a_id)| {
            (
                a_id.clone(),
                (*b_by_entity.get(e).expect("matched entity rendered in B")).to_owned(),
            )
        })
        .collect();

    EmScenario {
        name: name.to_owned(),
        table_a,
        table_b,
        gold,
    }
}

impl EmScenario {
    /// Collapse the two-table scenario into a single-table *deduplication*
    /// task (§2 of the paper: "matching tuples within a single table"):
    /// all rows of A then all rows of B in one table with fresh keys
    /// `d0, d1, ...`, and the gold match pairs re-keyed accordingly
    /// (canonically ordered, A-side first).
    pub fn into_dedup(self) -> (Table, HashSet<(String, String)>) {
        let schema = magellan_table::Schema::new(self.table_a.schema().fields().to_vec())
            .expect("scenario schema is valid");
        let n_total = self.table_a.nrows() + self.table_b.nrows();
        let mut t = Table::with_capacity("D", schema, n_total);
        // Old id -> new id, per source table.
        let mut a_map = std::collections::HashMap::new();
        let mut b_map = std::collections::HashMap::new();
        let mut next = 0usize;
        for r in self.table_a.rows() {
            let mut row = self.table_a.row(r);
            let old = row[0].as_ref().display_string();
            let new_id = format!("d{next}");
            next += 1;
            a_map.insert(old, new_id.clone());
            row[0] = Value::Str(new_id);
            t.push_row(row).expect("schema matches");
        }
        for r in self.table_b.rows() {
            let mut row = self.table_b.row(r);
            let old = row[0].as_ref().display_string();
            let new_id = format!("d{next}");
            next += 1;
            b_map.insert(old, new_id.clone());
            row[0] = Value::Str(new_id);
            t.push_row(row).expect("schema matches");
        }
        let gold = self
            .gold
            .iter()
            .map(|(x, y)| (a_map[x].clone(), b_map[y].clone()))
            .collect();
        (t, gold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy(cfg: &ScenarioConfig) -> EmScenario {
        build_scenario(
            "toy",
            cfg,
            &[("name", Dtype::Str), ("n", Dtype::Int)],
            |rng| (rng.gen_range(0..1_000_000u64), rng.gen_range(0..100i64)),
            |e, side, rng, dirt| {
                let tag = match side {
                    Side::A => "alpha",
                    Side::B => "beta",
                };
                let name = dirt
                    .corrupt_string(&format!("entity {} {tag}", e.0), rng)
                    .map_or(Value::Null, Value::Str);
                vec![name, Value::Int(e.1)]
            },
        )
    }

    #[test]
    fn sizes_and_gold_cardinality() {
        let cfg = ScenarioConfig {
            size_a: 40,
            size_b: 30,
            n_matches: 10,
            dirt: DirtModel::clean(),
            seed: 1,
        };
        let s = toy(&cfg);
        assert_eq!(s.table_a.nrows(), 40);
        assert_eq!(s.table_b.nrows(), 30);
        assert_eq!(s.gold.len(), 10);
    }

    #[test]
    fn gold_ids_exist_in_tables() {
        let s = toy(&ScenarioConfig::small(2));
        let a_keys = s.table_a.key_index("id").unwrap();
        let b_keys = s.table_b.key_index("id").unwrap();
        for (a, b) in &s.gold {
            assert!(a_keys.contains_key(a), "dangling a id {a}");
            assert!(b_keys.contains_key(b), "dangling b id {b}");
        }
    }

    #[test]
    fn gold_pairs_share_the_latent_entity() {
        // With clean dirt, matched rows carry the same latent token
        // "entity <N>" modulo the side tag.
        let cfg = ScenarioConfig {
            size_a: 20,
            size_b: 20,
            n_matches: 8,
            dirt: DirtModel::clean(),
            seed: 3,
        };
        let s = toy(&cfg);
        let a_keys = s.table_a.key_index("id").unwrap();
        let b_keys = s.table_b.key_index("id").unwrap();
        for (a, b) in &s.gold {
            let ra = a_keys[a];
            let rb = b_keys[b];
            let na = s.table_a.value_by_name(ra, "name").unwrap().display_string();
            let nb = s.table_b.value_by_name(rb, "name").unwrap().display_string();
            let stem_a: Vec<&str> = na.split_whitespace().take(2).collect();
            let stem_b: Vec<&str> = nb.split_whitespace().take(2).collect();
            assert_eq!(stem_a, stem_b, "{na} vs {nb}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let s1 = toy(&ScenarioConfig::small(9));
        let s2 = toy(&ScenarioConfig::small(9));
        assert_eq!(s1.gold, s2.gold);
        assert_eq!(s1.table_a.nrows(), s2.table_a.nrows());
        for r in 0..s1.table_a.nrows() {
            assert_eq!(s1.table_a.row(r), s2.table_a.row(r));
        }
    }

    #[test]
    fn match_density() {
        let cfg = ScenarioConfig {
            size_a: 10,
            size_b: 10,
            n_matches: 5,
            dirt: DirtModel::clean(),
            seed: 4,
        };
        let s = toy(&cfg);
        assert!((s.match_density() - 0.05).abs() < 1e-12);
        let (a, b) = s.gold.iter().next().unwrap();
        assert!(s.is_match(a, b));
        assert!(!s.is_match("a999", "b999"));
    }

    #[test]
    fn into_dedup_rekeys_table_and_gold() {
        let cfg = ScenarioConfig {
            size_a: 15,
            size_b: 12,
            n_matches: 6,
            dirt: DirtModel::clean(),
            seed: 21,
        };
        let s = toy(&cfg);
        let (t, gold) = s.into_dedup();
        assert_eq!(t.nrows(), 27);
        assert_eq!(gold.len(), 6);
        let keys = t.key_index("id").unwrap();
        assert_eq!(keys.len(), 27, "fresh dedup keys must be unique");
        for (x, y) in &gold {
            assert!(keys.contains_key(x) && keys.contains_key(y));
            assert_ne!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "n_matches exceeds")]
    fn oversized_match_count_panics() {
        let cfg = ScenarioConfig {
            size_a: 5,
            size_b: 5,
            n_matches: 6,
            dirt: DirtModel::clean(),
            seed: 0,
        };
        toy(&cfg);
    }
}
