//! Blocker ablation: recall vs. reduction ratio for every blocker family
//! across scenario domains — the quantitative version of the guide's
//! "experiment with blockers X and Y" step (Fig. 2), and the data behind
//! choosing overlap blocking as the textual workhorse.

use magellan_block::metrics::evaluate_blocking;
use magellan_block::{
    AttrEquivalenceBlocker, Blocker, BlockingRule, HashBlocker, OverlapBlocker, Predicate,
    RuleBasedBlocker, SimFeature, SimJoinBlocker, SortedNeighborhoodBlocker, TokSpec,
};
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_simjoin::SetSimMeasure;

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    magellan_obs::log!(info, "Blocker ablation — recall vs reduction across domains\n");
    for (scenario, attr) in [
        ("persons", "name"),
        ("products", "title"),
        ("restaurants", "name"),
        ("citations", "title"),
    ] {
        let s = domains::by_name(
            scenario,
            &ScenarioConfig {
                size_a: 1500,
                size_b: 1500,
                n_matches: 500,
                dirt: DirtModel::moderate(),
                seed: 2024,
            },
        )
        .expect("known scenario");
        magellan_obs::log!(info, "== {scenario} (attr `{attr}`, moderate dirt, 500 gold) ==");
        magellan_obs::log!(info, 
            "{:48} {:>10} {:>8} {:>10}",
            "blocker", "|C|", "recall", "reduction"
        );
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(AttrEquivalenceBlocker::on(attr)),
            Box::new(HashBlocker {
                l_attr: attr.into(),
                r_attr: attr.into(),
                n_buckets: 1024,
            }),
            Box::new(OverlapBlocker::words(attr, 1)),
            Box::new(OverlapBlocker::words(attr, 2)),
            Box::new(OverlapBlocker {
                l_attr: attr.into(),
                r_attr: attr.into(),
                overlap_size: 4,
                qgram: Some(3),
                shards: 1,
            }),
            Box::new(SimJoinBlocker {
                l_attr: attr.into(),
                r_attr: attr.into(),
                measure: SetSimMeasure::Jaccard(0.4),
                qgram: Some(3),
                shards: 1,
            }),
            Box::new(SortedNeighborhoodBlocker {
                l_attr: attr.into(),
                r_attr: attr.into(),
                window: 7,
            }),
            Box::new(RuleBasedBlocker::new(vec![BlockingRule {
                predicates: vec![Predicate {
                    l_attr: attr.into(),
                    r_attr: attr.into(),
                    feature: SimFeature::Jaccard(TokSpec::Word),
                    threshold: 0.3,
                }],
            }])),
        ];
        for blocker in &blockers {
            let c = blocker
                .block(&s.table_a, &s.table_b)
                .expect("blocker execution");
            let rep = evaluate_blocking(&c, &s.table_a, &s.table_b, "id", "id", &s.gold)
                .expect("evaluation");
            magellan_obs::log!(info, 
                "{:48} {:>10} {:>8.3} {:>10.4}",
                blocker.name(),
                rep.n_candidates,
                rep.recall(),
                rep.reduction_ratio()
            );
        }
        magellan_obs::log!(info, "");
    }
    magellan_obs::log!(info, "shape: equality blocking collapses under dirt; token-overlap and");
    magellan_obs::log!(info, "rule-based (low-threshold jaccard) blockers keep recall ≥ ~0.9 while");
    magellan_obs::log!(info, "cutting the cross product by 2-4 orders of magnitude.");
}
