//! Hand-crafted match rules layered over ML predictions.
//!
//! §6 of the paper: "the most accurate EM workflows are likely to involve
//! a combination of ML and rules", and Table 3 lists "Rule specification
//! and execution" as its own guide step (9 commands). A [`RuleLayer`] is
//! an ordered list of [`MatchRule`]s evaluated over the *feature vector*
//! of a pair after the matcher has predicted; the first firing rule
//! overrides the prediction.

use magellan_features::FeatureMatrix;

/// Comparison operator for rule conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Feature ≤ threshold.
    Le,
    /// Feature < threshold.
    Lt,
    /// Feature ≥ threshold.
    Ge,
    /// Feature > threshold.
    Gt,
    /// Feature = threshold (exact).
    Eq,
}

impl Cmp {
    fn eval(self, x: f64, t: f64) -> bool {
        match self {
            Cmp::Le => x <= t,
            Cmp::Lt => x < t,
            Cmp::Ge => x >= t,
            Cmp::Gt => x > t,
            Cmp::Eq => x == t,
        }
    }
}

/// What a firing rule does to the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// Force the pair to "match".
    Accept,
    /// Force the pair to "no-match".
    Reject,
}

/// A conjunction of feature conditions with an override action. NaN
/// feature values never satisfy a condition (a rule cannot fire on missing
/// evidence).
#[derive(Debug, Clone)]
pub struct MatchRule {
    /// Display name for debugging reports.
    pub name: String,
    /// Conditions as `(feature name, op, threshold)`.
    pub conditions: Vec<(String, Cmp, f64)>,
    /// Override applied when all conditions hold.
    pub action: RuleAction,
}

impl MatchRule {
    /// A rejection rule (the common precision-saving shape).
    pub fn reject(name: &str, conditions: Vec<(String, Cmp, f64)>) -> Self {
        MatchRule {
            name: name.to_owned(),
            conditions,
            action: RuleAction::Reject,
        }
    }

    /// An acceptance rule.
    pub fn accept(name: &str, conditions: Vec<(String, Cmp, f64)>) -> Self {
        MatchRule {
            name: name.to_owned(),
            conditions,
            action: RuleAction::Accept,
        }
    }
}

/// An ordered rule list applied after ML prediction.
#[derive(Debug, Clone, Default)]
pub struct RuleLayer {
    /// Rules in priority order; the first that fires wins.
    pub rules: Vec<MatchRule>,
}

impl RuleLayer {
    /// No rules: predictions pass through unchanged.
    pub fn empty() -> Self {
        RuleLayer::default()
    }

    /// Build from rules.
    pub fn new(rules: Vec<MatchRule>) -> Self {
        RuleLayer { rules }
    }

    /// Apply to one feature row + prediction. Returns the (possibly
    /// overridden) prediction and the name of the rule that fired, if any.
    pub fn apply_row<'a>(
        &'a self,
        names: &[String],
        row: &[f64],
        predicted: bool,
    ) -> (bool, Option<&'a str>) {
        for rule in &self.rules {
            let fires = rule.conditions.iter().all(|(fname, op, t)| {
                match names.iter().position(|n| n == fname) {
                    Some(i) => {
                        let x = row[i];
                        !x.is_nan() && op.eval(x, *t)
                    }
                    None => false,
                }
            });
            if fires {
                return (
                    matches!(rule.action, RuleAction::Accept),
                    Some(rule.name.as_str()),
                );
            }
        }
        (predicted, None)
    }

    /// Apply to a whole feature matrix + prediction vector.
    pub fn apply(&self, matrix: &FeatureMatrix, predictions: &[bool]) -> Vec<bool> {
        assert_eq!(matrix.len(), predictions.len(), "length mismatch");
        matrix
            .rows
            .iter()
            .zip(predictions)
            .map(|(row, &p)| self.apply_row(&matrix.names, row, p).0)
            .collect()
    }

    /// Count of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the layer has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix {
            names: vec!["name_sim".into(), "price_sim".into()],
            rows: vec![
                vec![0.95, 0.1],
                vec![0.2, 0.9],
                vec![f64::NAN, 0.05],
            ],
            pairs: vec![(0, 0), (1, 1), (2, 2)],
        }
    }

    #[test]
    fn empty_layer_passes_through() {
        let layer = RuleLayer::empty();
        let m = matrix();
        let preds = vec![true, false, true];
        assert_eq!(layer.apply(&m, &preds), preds);
        assert!(layer.is_empty());
    }

    #[test]
    fn reject_rule_overrides_positive_prediction() {
        // Reject when price similarity is very low despite a predicted
        // match (the precision-on-dirty-data pattern of §6).
        let layer = RuleLayer::new(vec![MatchRule::reject(
            "price guard",
            vec![("price_sim".into(), Cmp::Lt, 0.2)],
        )]);
        let m = matrix();
        let out = layer.apply(&m, &[true, true, true]);
        // Rows 0 and 2 have price_sim < 0.2, so the guard rejects both;
        // row 1's price_sim 0.9 passes through.
        assert_eq!(out, vec![false, true, false]);
    }

    #[test]
    fn accept_rule_rescues_negatives() {
        let layer = RuleLayer::new(vec![MatchRule::accept(
            "strong name",
            vec![("name_sim".into(), Cmp::Ge, 0.9)],
        )]);
        let out = layer.apply(&matrix(), &[false, false, false]);
        assert_eq!(out, vec![true, false, false]);
    }

    #[test]
    fn first_firing_rule_wins() {
        let layer = RuleLayer::new(vec![
            MatchRule::accept("first", vec![("name_sim".into(), Cmp::Ge, 0.9)]),
            MatchRule::reject("second", vec![("name_sim".into(), Cmp::Ge, 0.9)]),
        ]);
        let (out, fired) = layer.apply_row(
            &["name_sim".into()],
            &[0.95],
            false,
        );
        assert!(out);
        assert_eq!(fired, Some("first"));
    }

    #[test]
    fn nan_never_satisfies_conditions() {
        let layer = RuleLayer::new(vec![MatchRule::reject(
            "nan guard",
            vec![("name_sim".into(), Cmp::Le, 1.0)],
        )]);
        let (out, fired) = layer.apply_row(&["name_sim".into()], &[f64::NAN], true);
        assert!(out, "NaN must not fire the rule");
        assert!(fired.is_none());
    }

    #[test]
    fn unknown_feature_never_fires() {
        let layer = RuleLayer::new(vec![MatchRule::reject(
            "ghost",
            vec![("no_such_feature".into(), Cmp::Ge, 0.0)],
        )]);
        let (out, fired) = layer.apply_row(&["name_sim".into()], &[0.5], true);
        assert!(out);
        assert!(fired.is_none());
    }

    #[test]
    fn conjunction_requires_all_conditions() {
        let layer = RuleLayer::new(vec![MatchRule::accept(
            "both",
            vec![
                ("name_sim".into(), Cmp::Ge, 0.9),
                ("price_sim".into(), Cmp::Ge, 0.5),
            ],
        )]);
        let m = matrix();
        // Row 0: name 0.95 but price 0.1 -> no fire.
        let out = layer.apply(&m, &[false, false, false]);
        assert_eq!(out, vec![false, false, false]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_predictions_panic() {
        RuleLayer::empty().apply(&matrix(), &[true]);
    }
}
