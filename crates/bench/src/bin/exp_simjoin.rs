//! Sim-join engine experiment: pairs/sec of the adaptive CSR engine
//! (flat postings, accumulating positional + suffix pruning, bounded
//! galloping verification, cost-based probe side) vs the pre-CSR HashMap
//! engine it replaced, across a collection-size × threshold ×
//! token-frequency-skew grid, plus the pruning-cascade kill rates.
//!
//! Writes `results/exp_simjoin.txt` (human-readable table) and
//! `BENCH_simjoin.json` at the repo root (the ISSUE's before/after
//! record; "before" = `join_tokenized_hashmap`, byte-for-byte the seed
//! engine, still compiled in as the oracle baseline).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_par::ParConfig;
use magellan_simjoin::{
    join_tokenized_hashmap, join_tokenized_par_side, join_tokenized_stats, ProbeSide,
    SetSimMeasure, TokenizedCollection,
};
use magellan_textsim::tokenize::WhitespaceTokenizer;
use magellan_textsim::kernels::set_mode;
use magellan_textsim::KernelMode;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Best-of-reps: the minimum is the standard noise-robust estimator for
/// a deterministic workload (every sample is the true cost plus
/// non-negative scheduler/cache noise). Used for the kernel-tier A/B,
/// where the effect size is small enough for median noise to flip the
/// sign of the comparison.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Deterministic token soup with controllable frequency skew (`skew = 0`
/// is uniform; larger values concentrate mass on heavy-hitter tokens).
fn make_strings(n: usize, seed: u64, vocab: usize, skew: f64) -> Vec<Option<String>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|_| {
            let k = 3 + (next() % 6) as usize;
            Some(
                (0..k)
                    .map(|_| {
                        let u = next() as f64 / u32::MAX as f64;
                        format!("tok{}", (vocab as f64 * u.powf(1.0 + skew)) as usize)
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

/// Wide near-duplicate pairs (150–249 tokens over a 1M-token
/// vocabulary) for the wide_sparse grid: each right record is a
/// perturbed twin of its left record (every token kept with p = 0.7,
/// else redrawn), so Jaccard lands around 0.54 and a 0.5 threshold
/// makes almost every verification *succeed* — the per-element failure
/// bound cannot early-exit a succeeding merge, so both modes walk the
/// full multi-hundred-step merge. This is the worst case for any
/// adaptive dispatch that strays from the scalar reference (the
/// block-branchless merge measured 0.89× here, the bitset kernel
/// 0.62× on a dense variant), which makes it the regression guard for
/// the PR 9 selection retune: adaptive must *tie* the reference on
/// full-length merges, where the 3–8-token grids resolve in 1–2 scalar
/// steps and could mask a bad multi-block policy.
fn make_wide_pairs(
    n: usize,
    seed: u64,
    vocab: usize,
) -> (Vec<Option<String>>, Vec<Option<String>>) {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    for _ in 0..n {
        let k = 150 + (next() % 100) as usize;
        let base: Vec<usize> = (0..k).map(|_| next() as usize % vocab).collect();
        let twin: Vec<usize> = base
            .iter()
            .map(|&t| {
                if next() % 100 < 70 {
                    t
                } else {
                    next() as usize % vocab
                }
            })
            .collect();
        let render = |toks: &[usize]| {
            Some(
                toks.iter()
                    .map(|t| format!("tok{t}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        };
        left.push(render(&base));
        right.push(render(&twin));
    }
    (left, right)
}

/// Long records (120–167 tokens) for the size-skew grid: probing a short
/// record against these puts a ≥16× length ratio on the verification
/// operands, the shape the galloping kernel exists for.
fn make_long_strings(n: usize, seed: u64, vocab: usize) -> Vec<Option<String>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|_| {
            let k = 120 + (next() % 48) as usize;
            Some(
                (0..k)
                    .map(|_| format!("tok{}", next() as usize % vocab))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

struct Grid {
    name: &'static str,
    skew: f64,
    threshold: f64,
    measure: fn(f64) -> SetSimMeasure,
    measure_name: &'static str,
    vocab: usize,
    /// Shrink the right side to long records (`n / 25` of them): total
    /// tokens stay below the left side's, so Auto probes short-vs-long.
    long_right: bool,
    /// Both sides 250 wide records, right a perturbed twin of left
    /// (see [`make_wide_pairs`]): every verification runs a
    /// multi-hundred-step merge to completion, exercising the
    /// branchless merge kernel instead of the single-block scalar path.
    wide: bool,
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let n = if smoke { 400 } else { 4000 };
    let reps = if smoke { 2 } else { 5 };
    let jaccard: fn(f64) -> SetSimMeasure = SetSimMeasure::Jaccard;
    let overlap: fn(f64) -> SetSimMeasure = |t| SetSimMeasure::OverlapSize(t as usize);
    let grids = [
        Grid { name: "skewed", skew: 3.0, threshold: 0.7, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false, wide: false },
        Grid { name: "skewed_loose", skew: 3.0, threshold: 0.5, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false, wide: false },
        Grid { name: "uniform", skew: 0.0, threshold: 0.7, measure: jaccard, measure_name: "jaccard", vocab: 800, long_right: false, wide: false },
        // ≥16× record-length skew: 3–8-token probes against 120–167-token
        // indexed records. Regression guard for the galloping verify
        // kernel — the symmetric grids above never reach the gallop ratio.
        Grid { name: "size_skew16", skew: 0.0, threshold: 2.0, measure: overlap, measure_name: "overlap_size", vocab: 4000, long_right: true, wide: false },
        // 150–249-token near-duplicate pairs over a 1M-token vocabulary:
        // nearly every verification succeeds and runs a full
        // multi-hundred-step merge — the shape where a bad multi-block
        // dispatch policy shows up undiluted (see `make_wide_pairs`).
        Grid { name: "wide_sparse", skew: 0.0, threshold: 0.5, measure: jaccard, measure_name: "jaccard", vocab: 1_000_000, long_right: false, wide: true },
    ];
    let tok = WhitespaceTokenizer::new();

    let mut txt = String::new();
    let mut json_grids = String::new();
    writeln!(
        txt,
        "Sim-join engine — CSR (flat postings + positional/suffix pruning + bounded verify) vs HashMap seed engine"
    )
    .unwrap();
    writeln!(txt, "{n} x {n} records per side, reps = {reps}, smoke = {smoke}").unwrap();
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    writeln!(txt, "host exposes {cores} core(s); the w>1 rows measure threading overhead on a 1-core host").unwrap();

    let mut skewed_speedup_w1 = 0.0;
    let mut kernel_speedups: Vec<(&str, f64)> = Vec::new();
    for grid in &grids {
        // Wide sides stay at 250 records even in smoke: the grid's
        // premise (sparse multi-block spans after rarest-first
        // remapping) needs the full-size token universe.
        let (left, right) = if grid.wide {
            make_wide_pairs(250, 101, grid.vocab)
        } else {
            let left = make_strings(n, 101, grid.vocab, grid.skew);
            let right = if grid.long_right {
                make_long_strings((n / 25).max(8), 103, grid.vocab)
            } else {
                make_strings(n, 103, grid.vocab, grid.skew)
            };
            (left, right)
        };
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = (grid.measure)(grid.threshold);

        // Bit-identity check before timing anything: pair set, order,
        // and exact f64 similarities must match the seed engine.
        let (csr_pairs, stats) = join_tokenized_stats(&coll, measure, ProbeSide::Auto);
        let hash_pairs = join_tokenized_hashmap(&coll, measure);
        assert_eq!(csr_pairs.len(), hash_pairs.len(), "CSR engine diverged");
        for (cp, hp) in csr_pairs.iter().zip(&hash_pairs) {
            assert_eq!((cp.l, cp.r), (hp.l, hp.r), "CSR engine diverged");
            assert_eq!(cp.sim.to_bits(), hp.sim.to_bits(), "CSR similarity diverged");
        }
        let n_pairs = csr_pairs.len();
        if grid.long_right {
            // The whole point of this grid: the ≥16× operand skew must
            // actually reach the galloping kernel.
            assert!(
                stats.kernel_gallop > 0,
                "size-skew grid never fired the gallop kernel"
            );
        }
        if grid.wide {
            // The whole point of this grid: verifications must actually
            // run multi-block merges (merge-family attribution, not
            // gallop), or the regression guard guards nothing.
            assert!(
                stats.kernel_merge > 0,
                "wide grid never ran a balanced multi-block merge"
            );
        }

        writeln!(txt).unwrap();
        writeln!(
            txt,
            "[{}] skew={} {}={} |pairs|={n_pairs}",
            grid.name, grid.skew, grid.measure_name, grid.threshold
        )
        .unwrap();
        writeln!(
            txt,
            "cascade: probes={} candidates={} killed_by_size={} killed_by_position={} killed_by_suffix={} verified={} verify_steps={} (pos kill {:.1}%, suffix kill {:.1}%)",
            stats.probes,
            stats.candidates,
            stats.killed_by_size,
            stats.killed_by_position,
            stats.killed_by_suffix,
            stats.verified,
            stats.verify_steps,
            100.0 * stats.position_kill_rate(),
            100.0 * stats.suffix_kill_rate(),
        )
        .unwrap();
        writeln!(
            txt,
            "kernel split: merge={} gallop={} bitset={}",
            stats.kernel_merge, stats.kernel_gallop, stats.kernel_bitset
        )
        .unwrap();

        let t_hash = median_secs(reps, || {
            std::hint::black_box(join_tokenized_hashmap(&coll, measure));
        });
        let ps_hash = n_pairs as f64 / t_hash;

        // Kernel-tier delta at 1 worker: pin the scalar reference kernels,
        // time the same CSR join, restore adaptive dispatch. Outputs are
        // bit-identical either way — this isolates the kernel speedup.
        // Interleave the two modes rep-by-rep so scheduler/frequency
        // drift lands on both sides equally, and take best-of-N per
        // mode (see `best_secs` for why min, not median).
        let serial = ParConfig::workers(1);
        let kernel_reps = (reps * 3).max(15);
        let mut t_csr_scalar = f64::INFINITY;
        let mut t_csr_adaptive = f64::INFINITY;
        for _ in 0..kernel_reps {
            set_mode(KernelMode::ScalarReference);
            t_csr_scalar = t_csr_scalar.min(best_secs(1, || {
                std::hint::black_box(join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &serial));
            }));
            set_mode(KernelMode::Adaptive);
            t_csr_adaptive = t_csr_adaptive.min(best_secs(1, || {
                std::hint::black_box(join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &serial));
            }));
        }
        let kernel_speedup = t_csr_scalar / t_csr_adaptive;
        kernel_speedups.push((grid.name, kernel_speedup));
        writeln!(
            txt,
            "kernel tier (w=1): scalar-kernel {:.3}s vs adaptive {:.3}s -> {kernel_speedup:.2}x",
            t_csr_scalar, t_csr_adaptive
        )
        .unwrap();
        writeln!(txt, "{:>3}  {:>15}  {:>15}  {:>8}", "w", "hashmap p/s", "csr p/s", "speedup")
            .unwrap();

        let mut json_rows = String::new();
        let mut speedup_w1 = 0.0;
        for w in WORKERS {
            let cfg = ParConfig::workers(w);
            let t_csr = median_secs(reps, || {
                std::hint::black_box(join_tokenized_par_side(
                    &coll,
                    measure,
                    ProbeSide::Auto,
                    &cfg,
                ));
            });
            let ps_csr = n_pairs as f64 / t_csr;
            // Time-based, so a zero-pair grid still reports a ratio.
            let speedup = t_hash / t_csr;
            if w == 1 {
                speedup_w1 = speedup;
            }
            writeln!(txt, "{w:>3}  {ps_hash:>15.0}  {ps_csr:>15.0}  {speedup:>7.2}x").unwrap();
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            write!(
                json_rows,
                "      {{\"workers\": {w}, \"csr_pairs_per_sec\": {ps_csr:.0}, \"speedup_vs_hashmap\": {speedup:.2}}}"
            )
            .unwrap();
        }
        // Per-worker busy-time evidence for the multi-worker analysis in
        // EXPERIMENTS.md: on a 1-core host the busy sum exceeding the
        // wall clock is the threading-overhead ceiling made visible.
        let (_, pstats) =
            join_tokenized_par_side(&coll, measure, ProbeSide::Auto, &ParConfig::workers(4));
        let busy: Vec<String> = pstats
            .worker_busy
            .iter()
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3))
            .collect();
        writeln!(
            txt,
            "w=4 evidence: busy=[{}] utilization={:.0}% chunks={} steals={}",
            busy.join(", "),
            100.0 * pstats.utilization(),
            pstats.chunks_total,
            pstats.chunks_stolen,
        )
        .unwrap();
        if grid.name == "skewed" {
            skewed_speedup_w1 = speedup_w1;
        }
        if !json_grids.is_empty() {
            json_grids.push_str(",\n");
        }
        write!(
            json_grids,
            "    {{\"grid\": \"{}\", \"skew\": {}, \"measure\": \"{}\", \"threshold\": {}, \"vocab\": {}, \"n_pairs\": {n_pairs}, \"hashmap_pairs_per_sec\": {ps_hash:.0}, \"speedup_w1\": {speedup_w1:.2}, \"kernel_speedup_w1\": {kernel_speedup:.2},\n     \"join_stats\": {{\"probes\": {}, \"candidates\": {}, \"killed_by_size\": {}, \"killed_by_position\": {}, \"killed_by_suffix\": {}, \"verified\": {}, \"verify_steps\": {}, \"kernel_merge\": {}, \"kernel_gallop\": {}, \"kernel_bitset\": {}, \"position_kill_rate\": {:.4}, \"suffix_kill_rate\": {:.4}}},\n     \"csr\": [\n{json_rows}\n     ]}}",
            grid.name,
            grid.skew,
            grid.measure_name,
            grid.threshold,
            grid.vocab,
            stats.probes,
            stats.candidates,
            stats.killed_by_size,
            stats.killed_by_position,
            stats.killed_by_suffix,
            stats.verified,
            stats.verify_steps,
            stats.kernel_merge,
            stats.kernel_gallop,
            stats.kernel_bitset,
            stats.position_kill_rate(),
            stats.suffix_kill_rate(),
        )
        .unwrap();
    }

    writeln!(txt).unwrap();
    writeln!(
        txt,
        "skewed-grid speedup at 1 worker: {skewed_speedup_w1:.2}x (acceptance floor: 2x CSR vs hashmap)"
    )
    .unwrap();

    // Kernel-tier acceptance (non-smoke): the adaptive selector must
    // never lose to the pinned scalar reference. After the PR 9 retune
    // the tie is structural — adaptive only dispatches the reference's
    // own code paths (scalar walk everywhere balanced, gallop on ≥16×
    // skew, which the reference also takes) — so the true ratio is 1.0
    // on every grid and the floors bound timer noise, not a real
    // effect: 0.95 per grid, 0.97 geomean. During development this
    // caught real regressions (blocked merge 0.89×, bitset 0.62× on
    // the wide grid), which is exactly what the floors are for.
    let kernel_geomean =
        (kernel_speedups.iter().map(|(_, s)| s.ln()).sum::<f64>() / kernel_speedups.len() as f64)
            .exp();
    writeln!(
        txt,
        "kernel tier acceptance: per-grid {:?}, geomean {kernel_geomean:.3}x (floors: 0.95 per grid, 0.97 geomean)",
        kernel_speedups
    )
    .unwrap();
    if !smoke {
        for (name, s) in &kernel_speedups {
            assert!(
                *s >= 0.95,
                "adaptive kernels lost to the scalar reference on grid {name}: {s:.3}x"
            );
        }
        assert!(
            kernel_geomean >= 0.97,
            "adaptive kernel tier lost to the scalar reference on net: geomean {kernel_geomean:.3}x"
        );
    }
    magellan_obs::log!(info, "{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"simjoin\",\n  \"workload\": {{\"rows_per_side\": {n}, \"vocab\": 800, \"reps\": {reps}, \"smoke\": {smoke}}},\n  \"skewed_speedup_w1\": {skewed_speedup_w1:.2},\n  \"grids\": [\n{json_grids}\n  ]\n}}\n"
    );

    // Best-effort writes (CI smoke may run from a read-only checkout).
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_simjoin.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_simjoin.json", &json);
    }
}
