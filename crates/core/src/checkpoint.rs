//! Phase-level checkpointing for the production executor.
//!
//! §4.1's production stage runs for hours over full tables; a process
//! death at hour three should not restart blocking from scratch. The
//! executor therefore writes a durable [`Checkpoint`] after each phase —
//! the candidate set after blocking, the match set when done.
//!
//! Two wire formats share one parser entry point
//! ([`Checkpoint::from_bytes`], which handshakes on the magic):
//!
//! - **`emckpt v1`** — the original line-oriented text format, still
//!   written by [`Checkpoint::to_text`] and read forever (old files keep
//!   resuming).
//! - **`emckpt v2`** — the binary format the executor writes today
//!   ([`Checkpoint::to_bytes`]): length-prefixed per-phase segments, each
//!   carrying its own FNV-1a checksum, with candidate pair lists stored
//!   as zigzag-varint deltas. A 10M-pair candidate set is a few dozen MB
//!   instead of the multi-hundred-MB text serialization, and a torn
//!   write is caught by the damaged segment's checksum instead of being
//!   half-parsed into a plausible but wrong resume state.
//!
//! The formats are deliberately dumb: a corrupt or truncated checkpoint
//! is a **fatal** [`MagellanError::Checkpoint`] (retrying cannot fix bad
//! bytes), while an I/O blip during save/load is **transient** and the
//! executor retries it under its [`magellan_faults::RetryPolicy`].
//! The helpers [`fnv1a`], [`append_checksum`], and [`verify_checksum`]
//! are public so other line-oriented persistence surfaces (e.g. the
//! service-layer `emsvc v1` checkpoint) share the same trailer
//! convention.
//!
//! Stores are pluggable via [`CheckpointStore`] — byte-oriented at the
//! trait level, with text convenience wrappers for the v1-era line
//! formats (`emsvc v1`, `emstream v1`) layered on top. [`MemStore`]
//! backs the chaos suite, [`FileStore`] backs real runs, and
//! [`FlakyStore`] wraps either with seeded transient I/O faults from a
//! [`magellan_faults::FaultPlan`] so the retry loop is exercised
//! deterministically (torn-write semantics carry over to v2 unchanged).

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

use magellan_faults::FaultPlan;

use crate::error::MagellanError;

/// The checkpointable phases of a production run, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Candidate generation over the two tables.
    Blocking,
    /// Feature extraction + prediction + rule layer.
    Matching,
}

impl Phase {
    /// Stable lowercase name used in checkpoints and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Blocking => "blocking",
            Phase::Matching => "matching",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A durable snapshot of a production run after some phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Checkpoint {
    /// Blocking finished: the candidate set survives a restart.
    Blocked {
        /// Candidate pairs `(a_row, b_row)` in blocker output order.
        candidates: Vec<(u32, u32)>,
    },
    /// The whole run finished: the match set and candidate count survive.
    Done {
        /// Predicted match pairs in decision order.
        matches: Vec<(u32, u32)>,
        /// Candidate pairs that were examined.
        n_candidates: usize,
    },
}

impl Checkpoint {
    /// The phase whose completion this checkpoint records.
    pub fn phase(&self) -> Phase {
        match self {
            Checkpoint::Blocked { .. } => Phase::Blocking,
            Checkpoint::Done { .. } => Phase::Matching,
        }
    }

    /// Serialize to the `emckpt v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("emckpt v1\n");
        match self {
            Checkpoint::Blocked { candidates } => {
                out.push_str("phase blocked\n");
                write_pairs(&mut out, candidates);
            }
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                out.push_str("phase done\n");
                out.push_str(&format!("n_candidates {n_candidates}\n"));
                write_pairs(&mut out, matches);
            }
        }
        out.push_str("end\n");
        append_checksum(&mut out);
        out
    }

    /// Parse the `emckpt v1` text format. Any deviation — wrong magic,
    /// missing or mismatched checksum trailer, unknown phase, bad pair
    /// syntax, missing `end` — is a fatal [`MagellanError::Checkpoint`]
    /// carrying the offending line number.
    pub fn from_text(text: &str) -> Result<Checkpoint, MagellanError> {
        // Magic first: "this is not a checkpoint at all" beats "this
        // checkpoint has no checksum" as a diagnosis.
        let magic = text.lines().next().ok_or_else(|| corrupt(1, "empty checkpoint"))?;
        if magic.trim() != "emckpt v1" {
            return Err(corrupt(1, format!("bad magic `{magic}`")));
        }
        let payload = verify_checksum(text)?;
        let mut lines = payload.lines().enumerate();
        lines.next(); // magic, validated above
        let (_, phase_line) = lines
            .next()
            .ok_or_else(|| corrupt(2, "missing phase line"))?;
        let phase = phase_line
            .trim()
            .strip_prefix("phase ")
            .ok_or_else(|| corrupt(2, format!("expected `phase ...`, got `{phase_line}`")))?;
        match phase {
            "blocked" => {
                let candidates = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Blocked { candidates })
            }
            "done" => {
                let (no, line) = lines
                    .next()
                    .ok_or_else(|| corrupt(3, "missing n_candidates line"))?;
                let n_candidates = line
                    .trim()
                    .strip_prefix("n_candidates ")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| {
                        corrupt(no + 1, format!("expected `n_candidates <usize>`, got `{line}`"))
                    })?;
                let matches = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Done {
                    matches,
                    n_candidates,
                })
            }
            other => Err(corrupt(2, format!("unknown phase `{other}`"))),
        }
    }

    /// Serialize to the binary `emckpt v2` format:
    ///
    /// ```text
    /// "emckpt v2\0"                                   10-byte magic
    /// segment := tag:u8 len:u32le payload[len] fnv1a(payload):u64le
    ///   0x01 phase   — 0x00 (blocked) | 0x01 n_candidates:u64le (done)
    ///   0x02 pairs   — count:u64le, then per pair zigzag-varint deltas
    ///                  (l - prev_l, r - prev_r; prev starts at (0, 0))
    ///   0xee end     — empty payload, marks a complete file
    /// ```
    ///
    /// Blocker output is near-sorted, so the deltas are tiny and most
    /// pairs cost 2–4 bytes instead of ~12 bytes of text. Each segment
    /// carries its own checksum, so a torn write is pinned to the damaged
    /// segment instead of poisoning the whole-file trailer diagnosis.
    pub fn to_bytes(&self) -> Vec<u8> {
        let _span = magellan_obs::span("ckpt_write", 0);
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC_V2);
        match self {
            Checkpoint::Blocked { candidates } => {
                push_segment(&mut out, SEG_PHASE, &[PHASE_BLOCKED]);
                push_segment(&mut out, SEG_PAIRS, &encode_pairs(candidates));
            }
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                let mut phase = vec![PHASE_DONE];
                phase.extend_from_slice(&(*n_candidates as u64).to_le_bytes());
                push_segment(&mut out, SEG_PHASE, &phase);
                push_segment(&mut out, SEG_PAIRS, &encode_pairs(matches));
            }
        }
        push_segment(&mut out, SEG_END, &[]);
        magellan_obs::span_res_add("ckpt_bytes", out.len() as u64);
        magellan_obs::counter_add("magellan_core_checkpoint_bytes_total", out.len() as u64);
        out
    }

    /// Parse a checkpoint of either format, handshaking on the magic:
    /// `emckpt v1` text parses via [`Checkpoint::from_text`] (old files
    /// keep resuming), `emckpt v2` parses the binary segments. Anything
    /// else — unknown magic, truncated or checksum-failed segment,
    /// trailing bytes, out-of-range pair — is a fatal
    /// [`MagellanError::Checkpoint`] carrying the offending byte offset.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, MagellanError> {
        let _span = magellan_obs::span("ckpt_read", 0);
        magellan_obs::span_res_add("ckpt_bytes", data.len() as u64);
        if data.starts_with(b"emckpt v1") {
            let text = std::str::from_utf8(data)
                .map_err(|_| corrupt(0, "v1 checkpoint is not UTF-8 text"))?;
            return Checkpoint::from_text(text);
        }
        if !data.starts_with(MAGIC_V2) {
            return Err(corrupt(
                0,
                "bad magic (neither `emckpt v1` nor `emckpt v2`)",
            ));
        }
        let mut r = ByteReader {
            data,
            pos: MAGIC_V2.len(),
        };
        let (tag, phase_payload) = read_segment(&mut r)?;
        if tag != SEG_PHASE {
            return Err(corrupt_at(0, format!("expected phase segment, got tag 0x{tag:02x}")));
        }
        let (tag, pairs_payload) = read_segment(&mut r)?;
        if tag != SEG_PAIRS {
            return Err(corrupt_at(0, format!("expected pairs segment, got tag 0x{tag:02x}")));
        }
        let (tag, end_payload) = read_segment(&mut r)?;
        if tag != SEG_END || !end_payload.is_empty() {
            return Err(corrupt_at(0, "missing end segment (truncated checkpoint)"));
        }
        if r.pos != data.len() {
            return Err(corrupt_at(
                r.pos,
                "trailing bytes after end segment (torn write or tampered checkpoint)",
            ));
        }
        let pairs = decode_pairs(pairs_payload)?;
        match phase_payload {
            [PHASE_BLOCKED] => Ok(Checkpoint::Blocked { candidates: pairs }),
            [PHASE_DONE, rest @ ..] if rest.len() == 8 => Ok(Checkpoint::Done {
                matches: pairs,
                n_candidates: u64::from_le_bytes(rest.try_into().expect("8 bytes")) as usize,
            }),
            _ => Err(corrupt_at(0, "malformed phase segment payload")),
        }
    }
}

fn write_pairs(out: &mut String, pairs: &[(u32, u32)]) {
    out.push_str(&format!("pairs {}\n", pairs.len()));
    for (a, b) in pairs {
        out.push_str(&format!("{a} {b}\n"));
    }
}

fn read_pairs<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<Vec<(u32, u32)>, MagellanError> {
    let (no, header) = lines
        .next()
        .ok_or_else(|| corrupt(0, "missing pairs header"))?;
    let n = header
        .trim()
        .strip_prefix("pairs ")
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| corrupt(no + 1, format!("expected `pairs <len>`, got `{header}`")))?;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let (no, line) = lines
            .next()
            .ok_or_else(|| corrupt(0, "truncated pair list"))?;
        let mut it = line.trim().split_whitespace();
        let pair = (|| {
            let a = it.next()?.parse::<u32>().ok()?;
            let b = it.next()?.parse::<u32>().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((a, b))
        })()
        .ok_or_else(|| corrupt(no + 1, format!("bad pair `{line}`")))?;
        pairs.push(pair);
    }
    Ok(pairs)
}

fn expect_end<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<(), MagellanError> {
    match lines.next() {
        Some((_, l)) if l.trim() == "end" => Ok(()),
        Some((no, l)) => Err(corrupt(no + 1, format!("expected `end`, got `{l}`"))),
        None => Err(corrupt(0, "missing `end` terminator (truncated checkpoint)")),
    }
}

/// Magic prefix of the binary v2 format. The trailing NUL can never open
/// a v1 text file (whose magic line ends in `\n`), so the handshake in
/// [`Checkpoint::from_bytes`] is unambiguous.
const MAGIC_V2: &[u8; 10] = b"emckpt v2\0";

const SEG_PHASE: u8 = 0x01;
const SEG_PAIRS: u8 = 0x02;
const SEG_END: u8 = 0xee;

const PHASE_BLOCKED: u8 = 0x00;
const PHASE_DONE: u8 = 0x01;

/// Append one `tag len payload checksum` segment.
fn push_segment(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let _span = magellan_obs::span("ckpt_segment_write", u64::from(tag));
    out.push(tag);
    out.extend_from_slice(&u32::try_from(payload.len()).expect("segment < 4 GiB").to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

/// Bounds-checked cursor over a v2 byte buffer; every failure is a fatal
/// corruption error carrying the byte offset.
struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], MagellanError> {
        if self.data.len() - self.pos < n {
            return Err(corrupt_at(self.pos, format!("truncated {what}")));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Read one segment, verifying its checksum.
fn read_segment<'a>(r: &mut ByteReader<'a>) -> Result<(u8, &'a [u8]), MagellanError> {
    let at = r.pos;
    let tag = r.take(1, "segment tag")?[0];
    let _span = magellan_obs::span("ckpt_segment_read", u64::from(tag));
    let len = u32::from_le_bytes(r.take(4, "segment length")?.try_into().expect("4 bytes"));
    let payload = r.take(len as usize, "segment payload")?;
    let stored = u64::from_le_bytes(r.take(8, "segment checksum")?.try_into().expect("8 bytes"));
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(corrupt_at(
            at,
            format!(
                "segment 0x{tag:02x} checksum mismatch: stored {stored:016x}, \
                 computed {computed:016x} (torn write or tampered checkpoint)"
            ),
        ));
    }
    Ok((tag, payload))
}

fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(payload: &[u8], pos: &mut usize) -> Result<u64, MagellanError> {
    let mut v = 0u64;
    for shift in 0..10 {
        let b = *payload
            .get(*pos)
            .ok_or_else(|| corrupt_at(*pos, "truncated varint in pair list"))?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << (shift * 7);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(corrupt_at(*pos, "overlong varint in pair list"))
}

/// Pair-list payload: `count:u64le` then zigzag-varint deltas per pair.
fn encode_pairs(pairs: &[(u32, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + pairs.len() * 3);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    let (mut pl, mut pr) = (0i64, 0i64);
    for &(l, r) in pairs {
        push_varint(&mut out, zigzag(i64::from(l) - pl));
        push_varint(&mut out, zigzag(i64::from(r) - pr));
        pl = i64::from(l);
        pr = i64::from(r);
    }
    out
}

fn decode_pairs(payload: &[u8]) -> Result<Vec<(u32, u32)>, MagellanError> {
    if payload.len() < 8 {
        return Err(corrupt_at(0, "truncated pair count"));
    }
    let n = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")) as usize;
    let mut pos = 8;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    let (mut pl, mut pr) = (0i64, 0i64);
    for _ in 0..n {
        let l = pl + unzigzag(read_varint(payload, &mut pos)?);
        let r = pr + unzigzag(read_varint(payload, &mut pos)?);
        let pair = (u32::try_from(l).ok(), u32::try_from(r).ok());
        let (Some(l32), Some(r32)) = pair else {
            return Err(corrupt_at(pos, format!("pair ({l}, {r}) out of u32 range")));
        };
        pairs.push((l32, r32));
        (pl, pr) = (l, r);
    }
    if pos != payload.len() {
        return Err(corrupt_at(pos, "trailing bytes in pair list"));
    }
    Ok(pairs)
}

fn corrupt_at(off: usize, msg: impl fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: format!("corrupt checkpoint at byte {off}: {msg}"),
        transient: false,
    }
}

/// 64-bit FNV-1a over `bytes` — the tiny, dependency-free integrity hash
/// behind every checkpoint's `sum fnv1a` trailer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append a `sum fnv1a <16 hex>\n` trailer covering everything currently
/// in `text`.
pub fn append_checksum(text: &mut String) {
    let sum = fnv1a(text.as_bytes());
    text.push_str(&format!("sum fnv1a {sum:016x}\n"));
}

/// Validate the `sum fnv1a` trailer of a checkpoint text and return the
/// payload it covers (everything before the trailer line). Missing,
/// malformed, or mismatched checksums are fatal corruption errors — a
/// mismatch is exactly what a torn write or tampered file looks like.
pub fn verify_checksum(text: &str) -> Result<&str, MagellanError> {
    let idx = text.rfind("sum fnv1a ").ok_or_else(|| {
        corrupt(0, "missing `sum fnv1a` checksum trailer (truncated checkpoint)")
    })?;
    // The trailer must start a line, not hide inside one.
    if idx > 0 && text.as_bytes()[idx - 1] != b'\n' {
        return Err(corrupt(0, "checksum trailer not at start of line"));
    }
    let (payload, trailer) = text.split_at(idx);
    let hex = trailer.trim_start_matches("sum fnv1a ").trim_end();
    let stored = if hex.len() == 16 {
        u64::from_str_radix(hex, 16).ok()
    } else {
        None
    };
    let stored = stored.ok_or_else(|| {
        corrupt(0, format!("malformed checksum trailer `{}`", trailer.trim_end()))
    })?;
    let computed = fnv1a(payload.as_bytes());
    if computed != stored {
        return Err(corrupt(
            0,
            format!(
                "checksum mismatch: stored {hex}, computed {computed:016x} \
                 (torn write or tampered checkpoint)"
            ),
        ));
    }
    Ok(payload)
}

fn corrupt(line: usize, msg: impl fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: if line == 0 {
            format!("corrupt checkpoint: {msg}")
        } else {
            format!("corrupt checkpoint at line {line}: {msg}")
        },
        transient: false,
    }
}

/// Where checkpoints live. Byte-oriented at the trait level:
/// `save_bytes`/`load_bytes` may fail transiently (I/O); callers retry
/// under a [`magellan_faults::RetryPolicy`]. `load_bytes` returning
/// `Ok(None)` means "no checkpoint yet" — a fresh run.
///
/// The provided [`save`](CheckpointStore::save)/[`load`](CheckpointStore::load)
/// wrappers serve the line-oriented text formats that share these stores
/// (`emsvc v1`, `emstream v1`): they store UTF-8 bytes, and a text
/// caller loading non-UTF-8 bytes gets a fatal corruption error.
pub trait CheckpointStore {
    /// Durably replace the stored checkpoint bytes.
    fn save_bytes(&mut self, data: &[u8]) -> Result<(), MagellanError>;
    /// Read back the stored checkpoint bytes, if any.
    fn load_bytes(&mut self) -> Result<Option<Vec<u8>>, MagellanError>;
    /// Discard any stored checkpoint.
    fn clear(&mut self) -> Result<(), MagellanError>;

    /// Text convenience over [`save_bytes`](CheckpointStore::save_bytes).
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        self.save_bytes(text.as_bytes())
    }

    /// Text convenience over [`load_bytes`](CheckpointStore::load_bytes).
    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        match self.load_bytes()? {
            None => Ok(None),
            Some(bytes) => String::from_utf8(bytes)
                .map(Some)
                .map_err(|_| corrupt(0, "stored checkpoint is not UTF-8 text")),
        }
    }
}

/// In-memory store for tests and the chaos suite.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    data: Option<Vec<u8>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// The stored text, for assertions (`None` if binary is stored).
    pub fn raw(&self) -> Option<&str> {
        self.data.as_deref().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// The raw stored bytes, for assertions.
    pub fn raw_bytes(&self) -> Option<&[u8]> {
        self.data.as_deref()
    }
}

impl CheckpointStore for MemStore {
    fn save_bytes(&mut self, data: &[u8]) -> Result<(), MagellanError> {
        self.data = Some(data.to_vec());
        Ok(())
    }

    fn load_bytes(&mut self) -> Result<Option<Vec<u8>>, MagellanError> {
        Ok(self.data.clone())
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.data = None;
        Ok(())
    }
}

/// File-backed store: writes to a sibling temp file then renames, so a
/// death mid-save leaves the previous checkpoint intact.
#[derive(Debug, Clone)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// Store at `path`. The parent directory must exist.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileStore { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileStore {
    fn save_bytes(&mut self, data: &[u8]) -> Result<(), MagellanError> {
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn load_bytes(&mut self) -> Result<Option<Vec<u8>>, MagellanError> {
        match std::fs::read(&self.path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Wraps any store with seeded transient I/O failures drawn from a
/// [`FaultPlan`], so checkpoint retry loops can be exercised
/// deterministically. Each operation site (save/load/clear) fails for a
/// bounded run of consecutive attempts, then succeeds — mirroring the
/// plan's `max_failures_per_site` convergence guarantee.
#[derive(Debug, Clone)]
pub struct FlakyStore<S> {
    /// The real store.
    pub inner: S,
    /// Where the injected faults come from.
    pub plan: FaultPlan,
    ops: [FlakyOp; 3],
}

#[derive(Debug, Clone, Copy, Default)]
struct FlakyOp {
    /// Distinct logical operation count (bumps on success).
    op: u64,
    /// Consecutive failed attempts of the current logical operation.
    attempt: u32,
}

/// Operation sites for [`FlakyStore`]'s fault keying.
const OP_SAVE: u64 = 0x5a;
const OP_LOAD: u64 = 0x10;
const OP_CLEAR: u64 = 0xc1;

impl<S> FlakyStore<S> {
    /// Wrap `inner`, drawing faults from `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FlakyStore {
            inner,
            plan,
            ops: [FlakyOp::default(); 3],
        }
    }

    /// Returns an injected transient error, or advances to success.
    fn gate(&mut self, site: usize, tag: u64, what: &str) -> Result<(), MagellanError> {
        let st = &mut self.ops[site];
        if self.plan.io_fails(tag.wrapping_add(st.op << 8), st.attempt) {
            st.attempt += 1;
            return Err(MagellanError::Checkpoint {
                message: format!("injected transient I/O failure during checkpoint {what}"),
                transient: true,
            });
        }
        st.attempt = 0;
        st.op += 1;
        Ok(())
    }
}

impl<S: CheckpointStore> CheckpointStore for FlakyStore<S> {
    fn save_bytes(&mut self, data: &[u8]) -> Result<(), MagellanError> {
        self.gate(0, OP_SAVE, "save")?;
        self.inner.save_bytes(data)
    }

    fn load_bytes(&mut self) -> Result<Option<Vec<u8>>, MagellanError> {
        self.gate(1, OP_LOAD, "load")?;
        self.inner.load_bytes()
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.gate(2, OP_CLEAR, "clear")?;
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_round_trips() {
        let ck = Checkpoint::Blocked {
            candidates: vec![(0, 1), (2, 3), (7, 7)],
        };
        assert_eq!(ck.phase(), Phase::Blocking);
        let text = ck.to_text();
        assert!(text.starts_with("emckpt v1\n"));
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
    }

    #[test]
    fn done_round_trips() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        };
        assert_eq!(ck.phase(), Phase::Matching);
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
        // Empty match set round-trips too.
        let ck = Checkpoint::Done {
            matches: vec![],
            n_candidates: 0,
        };
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
    }

    /// Appends a *correct* checksum trailer so tests can probe the
    /// structural validation behind it.
    fn with_sum(payload: &str) -> String {
        let mut s = payload.to_string();
        append_checksum(&mut s);
        s
    }

    #[test]
    fn corrupt_checkpoints_are_fatal_with_line_numbers() {
        for (text, needle) in [
            (String::new(), "empty"),
            ("not a checkpoint\n".into(), "bad magic"),
            (with_sum("emckpt v1\n"), "missing phase"),
            (with_sum("emckpt v1\nphase warp\npairs 0\nend\n"), "unknown phase"),
            (with_sum("emckpt v1\nphase blocked\npairs two\nend\n"), "pairs"),
            (with_sum("emckpt v1\nphase blocked\npairs 2\n1 2\n"), "truncated"),
            (with_sum("emckpt v1\nphase blocked\npairs 1\n1 2 3\nend\n"), "bad pair"),
            (with_sum("emckpt v1\nphase blocked\npairs 1\nx y\nend\n"), "bad pair"),
            (with_sum("emckpt v1\nphase done\npairs 0\nend\n"), "n_candidates"),
            (with_sum("emckpt v1\nphase blocked\npairs 0\nEND\n"), "expected `end`"),
            // Checksum-layer failures.
            ("emckpt v1\nphase blocked\npairs 0\nend\n".into(), "missing `sum fnv1a`"),
            ("emckpt v1\nend\nsum fnv1a zz\n".into(), "malformed checksum"),
            (
                "emckpt v1\nphase blocked\npairs 0\nend\nsum fnv1a 0000000000000000\n".into(),
                "checksum mismatch",
            ),
        ] {
            let err = Checkpoint::from_text(&text).unwrap_err();
            assert!(err.fatal(), "{text:?} should be fatal");
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
        // Line numbers point at the offending line.
        let err =
            Checkpoint::from_text(&with_sum("emckpt v1\nphase blocked\npairs 1\nbad\nend\n"))
                .unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn checksum_detects_truncation_and_tampering() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9), (11, 13)],
            n_candidates: 42,
        };
        let text = ck.to_text();
        assert!(text.contains("\nsum fnv1a "), "to_text must append a trailer");
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
        // Every strict prefix is rejected — a torn write can never be
        // mistaken for a complete checkpoint. (The final newline alone is
        // cosmetic, so the loop stops one byte short of it.)
        for cut in 1..text.len() - 1 {
            assert!(
                Checkpoint::from_text(&text[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        // Flipping one digit inside the pair list is caught by the
        // checksum even though the result is structurally valid.
        let tampered = text.replacen("5 9", "5 8", 1);
        assert_ne!(tampered, text);
        let err = Checkpoint::from_text(&tampered).unwrap_err();
        assert!(err.fatal());
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // fnv1a is the reference function (pinned vector).
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn torn_write_through_flaky_store_is_detected_not_half_parsed() {
        // An old checkpoint sits in the store; a crash mid-save splices
        // the new text's head onto the old text's tail. Pre-checksum that
        // hybrid parsed cleanly into a *wrong* resume state; now it is a
        // precise fatal corruption error.
        let old = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        }
        .to_text();
        let new = Checkpoint::Done {
            matches: vec![(3, 4), (6, 8)],
            n_candidates: 43,
        }
        .to_text();
        assert_eq!(old.len(), new.len(), "same shape so the splice stays line-valid");
        // Tear inside the pair list: new header + first new pair, old tail.
        let cut = new.find("3 4\n").unwrap() + 4;
        let torn = format!("{}{}", &new[..cut], &old[cut..]);
        let plan = FaultPlan {
            io_error_per_mille: 1000,
            ..FaultPlan::seeded(17)
        };
        let mut store = FlakyStore::new(MemStore::new(), plan);
        // The save that tore: model it by placing the hybrid bytes in the
        // inner store directly (FlakyStore injects errors, not bytes).
        store.inner.save(&torn).unwrap();
        let mut clock = magellan_faults::SimClock::new();
        let loaded = magellan_faults::run_with_retry(
            &magellan_faults::RetryPolicy::default(),
            &mut clock,
            |_| store.load(),
        )
        .expect("transient injected I/O converges under retry")
        .expect("a checkpoint is present");
        let err = Checkpoint::from_text(&loaded).unwrap_err();
        assert!(err.fatal(), "torn write must be fatal, not retried");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Control: the same hybrid payload with a freshly computed trailer
        // *would* parse — the checksum is what catches the tear.
        let payload_end = torn.rfind("sum fnv1a ").unwrap();
        let mut reblessed = torn[..payload_end].to_string();
        append_checksum(&mut reblessed);
        assert!(Checkpoint::from_text(&reblessed).is_ok());
    }

    #[test]
    fn v2_round_trips_and_handshakes_with_v1() {
        let blocked = Checkpoint::Blocked {
            candidates: vec![(0, 1), (2, 3), (7, 7), (7, 9)],
        };
        let done = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        };
        let empty = Checkpoint::Done {
            matches: vec![],
            n_candidates: 0,
        };
        for ck in [&blocked, &done, &empty] {
            let bytes = ck.to_bytes();
            assert!(bytes.starts_with(b"emckpt v2\0"));
            assert_eq!(&Checkpoint::from_bytes(&bytes).unwrap(), ck);
            // Cross-version: v1 text bytes parse through the same entry
            // point — old checkpoint files keep resuming.
            assert_eq!(&Checkpoint::from_bytes(ck.to_text().as_bytes()).unwrap(), ck);
        }
        // Deltas go negative when pairs are not sorted; zigzag handles it.
        let unsorted = Checkpoint::Blocked {
            candidates: vec![(9, 100), (0, 3), (u32::MAX, 0)],
        };
        assert_eq!(Checkpoint::from_bytes(&unsorted.to_bytes()).unwrap(), unsorted);
    }

    #[test]
    fn v2_corruption_matrix_is_fatal() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9), (11, 13)],
            n_candidates: 42,
        };
        let bytes = ck.to_bytes();
        // Every strict prefix is a truncation error, never a parse.
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(err.fatal(), "prefix of {cut} bytes must be fatal");
        }
        // Flipping any single byte after the magic is caught — by a
        // segment checksum, a structural check, or the length walk.
        for i in MAGIC_V2.len()..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flipped byte {i} must not parse"
            );
        }
        // Specific diagnoses.
        let err = Checkpoint::from_bytes(b"emtbl v1\0\0").unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        let mut pairs_flipped = bytes.clone();
        let pair_region = bytes.len() - 13 - 8 - 2; // inside the pairs payload
        pairs_flipped[pair_region] ^= 0x01;
        let err = Checkpoint::from_bytes(&pairs_flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = Checkpoint::from_bytes(&trailing).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
        // Unknown phase code: build a structurally valid file by hand.
        let mut weird = Vec::from(&MAGIC_V2[..]);
        push_segment(&mut weird, SEG_PHASE, &[0x7f]);
        push_segment(&mut weird, SEG_PAIRS, &encode_pairs(&[]));
        push_segment(&mut weird, SEG_END, &[]);
        let err = Checkpoint::from_bytes(&weird).unwrap_err();
        assert!(err.to_string().contains("phase segment"), "{err}");
    }

    #[test]
    fn v2_torn_write_through_flaky_store_is_detected() {
        // Same scenario as the v1 torn-write test, on the binary format:
        // a crash mid-save splices the new file's head onto the old
        // file's tail. The pairs segment's checksum covers the old
        // payload, so the hybrid is a precise fatal error.
        let old = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        }
        .to_bytes();
        let new = Checkpoint::Done {
            matches: vec![(3, 4), (6, 8)],
            n_candidates: 43,
        }
        .to_bytes();
        assert_eq!(old.len(), new.len(), "same shape so the splice stays segment-valid");
        // Tear inside the pairs payload: keep the new phase segment and
        // first pair's deltas, splice in the old tail (last deltas, old
        // checksum, end segment).
        let cut = new.len() - 13 /* end segment */ - 8 /* pairs checksum */ - 2;
        let torn: Vec<u8> = new[..cut].iter().chain(&old[cut..]).copied().collect();
        assert_ne!(torn, old);
        assert_ne!(torn, new);
        let plan = FaultPlan {
            io_error_per_mille: 1000,
            ..FaultPlan::seeded(17)
        };
        let mut store = FlakyStore::new(MemStore::new(), plan);
        store.inner.save_bytes(&torn).unwrap();
        let mut clock = magellan_faults::SimClock::new();
        let loaded = magellan_faults::run_with_retry(
            &magellan_faults::RetryPolicy::default(),
            &mut clock,
            |_| store.load_bytes(),
        )
        .expect("transient injected I/O converges under retry")
        .expect("a checkpoint is present");
        let err = Checkpoint::from_bytes(&loaded).unwrap_err();
        assert!(err.fatal(), "torn write must be fatal, not retried");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Control: reblessing the torn pairs segment with a freshly
        // computed checksum *would* parse (into the wrong pairs) — the
        // per-segment checksum is what catches the tear.
        let payload_start = torn.len() - 13 - 8 - 12; // count u64 + 4 delta bytes
        let sum = fnv1a(&torn[payload_start..torn.len() - 13 - 8]);
        let mut reblessed = torn.clone();
        reblessed[torn.len() - 13 - 8..torn.len() - 13].copy_from_slice(&sum.to_le_bytes());
        let wrong = Checkpoint::from_bytes(&reblessed).unwrap();
        assert_ne!(wrong.to_bytes(), old);
        assert_ne!(wrong.to_bytes(), new);
    }

    #[test]
    fn v2_is_at_most_half_the_text_size() {
        // Blocker output order: runs of ascending (l, r) — the delta
        // encoding's home turf, but the bound must hold broadly.
        let candidates: Vec<(u32, u32)> = (0..10_000u32)
            .map(|i| (i / 4 + 1000, (i % 4) * 37 + i))
            .collect();
        let ck = Checkpoint::Blocked { candidates };
        let text_len = ck.to_text().len();
        let bin_len = ck.to_bytes().len();
        assert!(
            bin_len * 2 <= text_len,
            "v2 ({bin_len} B) must be <= half of v1 text ({text_len} B)"
        );
        assert_eq!(Checkpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn text_wrappers_ride_on_byte_store() {
        let mut s = MemStore::new();
        s.save("emsvc v1\nhello\n").unwrap();
        assert_eq!(s.raw(), Some("emsvc v1\nhello\n"));
        assert_eq!(s.load().unwrap().as_deref(), Some("emsvc v1\nhello\n"));
        // Binary bytes stored, text loader: fatal corruption, not UB.
        s.save_bytes(&[0xff, 0xfe, 0x00]).unwrap();
        assert!(s.raw().is_none());
        assert_eq!(s.raw_bytes(), Some(&[0xff, 0xfe, 0x00][..]));
        let err = s.load().unwrap_err();
        assert!(err.fatal());
        assert!(err.to_string().contains("not UTF-8"), "{err}");
    }

    #[test]
    fn mem_store_round_trips_and_clears() {
        let mut s = MemStore::new();
        assert!(s.load().unwrap().is_none());
        s.save("hello").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("hello"));
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
    }

    #[test]
    fn file_store_round_trips_and_survives_missing_file() {
        let dir = std::env::temp_dir().join(format!(
            "magellan-ckpt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = FileStore::new(dir.join("run.emckpt"));
        assert!(s.load().unwrap().is_none());
        let ck = Checkpoint::Blocked {
            candidates: vec![(3, 4)],
        };
        s.save(&ck.to_text()).unwrap();
        let back = Checkpoint::from_text(&s.load().unwrap().unwrap()).unwrap();
        assert_eq!(back, ck);
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
        s.clear().unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flaky_store_fails_transiently_then_converges() {
        let plan = FaultPlan {
            io_error_per_mille: 1000, // every site draws at least one failure
            ..FaultPlan::seeded(3)
        };
        let mut s = FlakyStore::new(MemStore::new(), plan);
        let mut failures = 0u32;
        let text = Checkpoint::Blocked { candidates: vec![] }.to_text();
        loop {
            match s.save(&text) {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.transient(), "injected I/O faults must be transient");
                    failures += 1;
                    assert!(failures <= plan.max_failures_per_site, "must converge");
                }
            }
        }
        assert!(failures >= 1, "per_mille=1000 should inject at least once");
        // The same logical op retried is deterministic: a fresh store with
        // the same plan fails the same number of times.
        let mut s2 = FlakyStore::new(MemStore::new(), plan);
        let mut failures2 = 0u32;
        while s2.save(&text).is_err() {
            failures2 += 1;
        }
        assert_eq!(failures, failures2);
        // Load eventually works and returns what save stored.
        let loaded = loop {
            match s.load() {
                Ok(v) => break v,
                Err(e) => assert!(e.transient()),
            }
        };
        assert_eq!(loaded.as_deref(), Some(text.as_str()));
    }
}
