//! `emtbl` — the on-disk columnar table format of the out-of-core
//! storage tier.
//!
//! A table is written once as fixed-width typed column segments plus an
//! offset-indexed string heap, then mapped back read-only and sliced
//! zero-copy into [`ValueRef`]/[`ColumnSlice`] views. On Unix the file is
//! `mmap`ed (the kernel pages columns in on demand, so a cold scan of one
//! column touches only that column's pages); everywhere else — or when
//! `mmap` fails — the file is read into an 8-byte-aligned buffer with
//! identical semantics. Either way no row is ever materialized: the chunk
//! executor slices straight into the mapped buffer.
//!
//! ## Layout (`emtbl v1`, little-endian, all segments 8-byte aligned)
//!
//! ```text
//! magic    8B  "emtbl v1"
//! nrows    8B  u64
//! ncols    4B  u32
//! per col:     u32 name_len, name bytes (UTF-8), u8 dtype code
//! pad to 8B
//! checksum 8B  FNV-1a of everything above
//! per col:     u64 payload_len (padded), payload, u64 FNV-1a(payload)
//! ```
//!
//! Column payloads (each sub-section padded to 8 bytes):
//!
//! | dtype | payload                                                    |
//! |-------|------------------------------------------------------------|
//! | bool  | validity bitmap, value bitmap                              |
//! | int   | validity bitmap, `nrows × i64`                             |
//! | float | validity bitmap, `nrows × f64`                             |
//! | str   | validity bitmap, `(nrows+1) × u64` offsets, string heap    |
//!
//! Null cells are zero in the data section and clear in the validity
//! bitmap; a null string and an empty string differ only in validity.
//! Every segment carries its own FNV-1a checksum so a torn write or a
//! flipped byte is detected at open time, not as silent garbage rows.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::column::Column;
use crate::error::TableError;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{Dtype, Value, ValueRef};
use crate::Result;

/// File magic of the current format version.
pub const MAGIC: &[u8; 8] = b"emtbl v1";

/// Default row count per ingest batch for [`ColumnarBuilder`] users
/// (large enough to amortize per-batch work, small enough to bound the
/// working set of a streaming CSV ingest).
pub const DEFAULT_BATCH_ROWS: usize = 8192;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn err(message: impl Into<String>) -> TableError {
    TableError::Format(message.into())
}

fn dtype_code(d: Dtype) -> u8 {
    match d {
        Dtype::Bool => 0,
        Dtype::Int => 1,
        Dtype::Float => 2,
        Dtype::Str => 3,
    }
}

fn code_dtype(c: u8) -> Option<Dtype> {
    match c {
        0 => Some(Dtype::Bool),
        1 => Some(Dtype::Int),
        2 => Some(Dtype::Float),
        3 => Some(Dtype::Str),
        _ => None,
    }
}

fn bit(bits: &[u8], i: usize) -> bool {
    bits[i / 8] & (1 << (i % 8)) != 0
}

fn set_bit(bits: &mut [u8], i: usize) {
    bits[i / 8] |= 1 << (i % 8);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialize a table into `emtbl v1` bytes on `w`. Buffers one column
/// payload at a time, never the whole file.
pub fn write<W: Write>(table: &Table, w: &mut W) -> Result<()> {
    let nrows = table.nrows();
    let mut header = Vec::with_capacity(64);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&(nrows as u64).to_le_bytes());
    header.extend_from_slice(&(table.ncols() as u32).to_le_bytes());
    for f in table.schema().fields() {
        header.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
        header.extend_from_slice(f.name.as_bytes());
        header.push(dtype_code(f.dtype));
    }
    header.resize(pad8(header.len()), 0);
    let sum = fnv1a(&header);
    header.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&header)?;

    let vbytes = pad8(nrows.div_ceil(8));
    for c in 0..table.ncols() {
        let col = table.column_at(c);
        let mut payload = vec![0u8; vbytes];
        for r in 0..nrows {
            if !col.get(r).is_null() {
                set_bit(&mut payload[..vbytes], r);
            }
        }
        match col {
            Column::Bool(v) => {
                let start = payload.len();
                payload.resize(start + vbytes, 0);
                for (r, cell) in v.iter().enumerate() {
                    if cell == &Some(true) {
                        set_bit(&mut payload[start..], r);
                    }
                }
            }
            Column::Int(v) => {
                for cell in v {
                    payload.extend_from_slice(&cell.unwrap_or(0).to_le_bytes());
                }
            }
            Column::Float(v) => {
                for cell in v {
                    payload.extend_from_slice(&cell.unwrap_or(0.0).to_le_bytes());
                }
            }
            Column::Str(v) => {
                let mut off = 0u64;
                payload.extend_from_slice(&off.to_le_bytes());
                for cell in v {
                    off += cell.as_ref().map_or(0, |s| s.len() as u64);
                    payload.extend_from_slice(&off.to_le_bytes());
                }
                for cell in v {
                    if let Some(s) = cell {
                        payload.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
        payload.resize(pad8(payload.len()), 0);
        let sum = fnv1a(&payload);
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&sum.to_le_bytes())?;
    }
    Ok(())
}

/// Write a table as an `emtbl v1` file at `path` (create/truncate,
/// flushed and fsynced — the write-once half of the storage tier).
pub fn write_path(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write(table, &mut w)?;
    w.flush()?;
    w.get_ref().sync_all()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Mapped buffer (mmap on Unix, aligned read fallback elsewhere)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file.
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // Read-only bytes with no interior mutability.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                None
            } else {
                Some(Mmap { ptr, len })
            }
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping is PROT_READ, lives until Drop, and was
            // created over exactly `len` bytes.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values returned by mmap.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Backing bytes of an open table: an OS mapping or an owned aligned buffer.
enum Buf {
    /// File bytes copied into an 8-byte-aligned owned buffer.
    Owned {
        /// `u64` backing keeps the base address 8-aligned for zero-copy
        /// `i64`/`f64`/`u64` slice casts.
        words: Vec<u64>,
        len: usize,
    },
    #[cfg(unix)]
    Mapped(sys::Mmap),
}

impl Buf {
    fn bytes(&self) -> &[u8] {
        match self {
            Buf::Owned { words, len } => {
                // SAFETY: the Vec<u64> allocation covers ≥ len bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(unix)]
            Buf::Mapped(m) => m.bytes(),
        }
    }
}

impl fmt::Debug for Buf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buf({} bytes)", self.bytes().len())
    }
}

/// How [`MappedTable::open_with`] should back the file bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// `mmap` where available, aligned read otherwise (the default).
    Auto,
    /// Always read into an owned aligned buffer.
    Buffered,
}

fn read_aligned(file: &mut File, len: usize) -> Result<Buf> {
    let mut words = vec![0u64; len.div_ceil(8)];
    // SAFETY: the Vec<u64> allocation covers ≥ len bytes and u8 has no
    // validity constraints.
    let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
    file.read_exact(dst)?;
    Ok(Buf::Owned { words, len })
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Byte ranges of one column inside the mapped buffer.
#[derive(Debug, Clone)]
struct ColMeta {
    dtype: Dtype,
    /// Validity bitmap bytes.
    validity: std::ops::Range<usize>,
    /// Fixed-width data (value bitmap / i64s / f64s / u64 offsets).
    data: std::ops::Range<usize>,
    /// String heap (empty for non-string columns).
    heap: std::ops::Range<usize>,
}

/// An open `emtbl` file: schema plus zero-copy column views over the
/// mapped (or pread) file bytes. This is the `Storage::Mapped` backing of
/// a [`Table`].
#[derive(Debug)]
pub struct MappedTable {
    schema: Schema,
    nrows: usize,
    cols: Vec<ColMeta>,
    buf: Buf,
    mode: &'static str,
}

fn cast_slice<T: Copy>(bytes: &[u8]) -> &[T] {
    // SAFETY: callers only pass 8-aligned ranges of the buffer (every
    // section of the format is padded to 8 bytes and the buffer base is
    // page- or Vec<u64>-aligned), and T ∈ {i64, f64, u64} has no validity
    // constraints on any bit pattern.
    let (pre, mid, post) = unsafe { bytes.align_to::<T>() };
    debug_assert!(pre.is_empty() && post.is_empty(), "misaligned emtbl section");
    mid
}

impl MappedTable {
    /// Open an `emtbl` file (mmap where available).
    pub fn open(path: impl AsRef<Path>) -> Result<MappedTable> {
        MappedTable::open_with(path, OpenMode::Auto)
    }

    /// Open an `emtbl` file with an explicit backing mode.
    pub fn open_with(path: impl AsRef<Path>, mode: OpenMode) -> Result<MappedTable> {
        let _span = magellan_obs::span("emtbl_open", 0);
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        magellan_obs::span_res_add("emtbl_bytes", len as u64);
        magellan_obs::gauge_max("magellan_table_emtbl_mapped_bytes", len as f64);
        #[cfg(unix)]
        let (buf, mode_name) = match mode {
            OpenMode::Auto => match sys::Mmap::map(&file, len) {
                Some(m) => (Buf::Mapped(m), "mmap"),
                None => (read_aligned(&mut file, len)?, "read"),
            },
            OpenMode::Buffered => (read_aligned(&mut file, len)?, "read"),
        };
        #[cfg(not(unix))]
        let (buf, mode_name) = {
            let _ = mode;
            (read_aligned(&mut file, len)?, "read")
        };
        MappedTable::parse(buf, mode_name)
    }

    fn parse(buf: Buf, mode: &'static str) -> Result<MappedTable> {
        let b = buf.bytes();
        let rd_u64 = |at: usize| -> Result<u64> {
            let end = at.checked_add(8).filter(|&e| e <= b.len());
            let end = end.ok_or_else(|| err(format!("truncated at byte {at}")))?;
            Ok(u64::from_le_bytes(b[at..end].try_into().expect("8 bytes")))
        };
        if b.len() < 20 || &b[..8] != MAGIC {
            return Err(err("not an emtbl v1 file (bad magic)"));
        }
        let nrows = rd_u64(8)? as usize;
        let ncols =
            u32::from_le_bytes(b[16..20].try_into().expect("4 bytes")) as usize;
        let mut at = 20usize;
        let mut fields = Vec::with_capacity(ncols);
        for i in 0..ncols {
            if at + 4 > b.len() {
                return Err(err(format!("truncated header at column {i}")));
            }
            let nlen =
                u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4;
            if at + nlen + 1 > b.len() {
                return Err(err(format!("truncated header at column {i}")));
            }
            let name = std::str::from_utf8(&b[at..at + nlen])
                .map_err(|_| err(format!("column {i} name is not UTF-8")))?;
            at += nlen;
            let dtype = code_dtype(b[at])
                .ok_or_else(|| err(format!("column {i} has unknown dtype code {}", b[at])))?;
            at += 1;
            fields.push(Field::new(name, dtype));
        }
        let header_end = pad8(at);
        if header_end + 8 > b.len() {
            return Err(err("truncated header checksum"));
        }
        let want = rd_u64(header_end)?;
        let got = fnv1a(&b[..header_end]);
        if want != got {
            return Err(err(format!(
                "header checksum mismatch (stored {want:016x}, computed {got:016x})"
            )));
        }
        let schema = Schema::new(fields)?;

        let vbytes = pad8(nrows.div_ceil(8));
        let mut cols = Vec::with_capacity(ncols);
        at = header_end + 8;
        for (i, f) in schema.fields().iter().enumerate() {
            let plen = rd_u64(at)? as usize;
            at += 8;
            let pstart = at;
            let pend = pstart
                .checked_add(plen)
                .filter(|&e| e + 8 <= b.len())
                .ok_or_else(|| err(format!("truncated segment for column `{}`", f.name)))?;
            let want = rd_u64(pend)?;
            let got = fnv1a(&b[pstart..pend]);
            if want != got {
                return Err(err(format!(
                    "checksum mismatch in column `{}` (stored {want:016x}, computed {got:016x})",
                    f.name
                )));
            }
            let validity = pstart..pstart + vbytes;
            let (data, heap) = match f.dtype {
                Dtype::Bool => {
                    let need = 2 * vbytes;
                    if plen != pad8(need) {
                        return Err(err(format!("column `{}` has wrong segment size", f.name)));
                    }
                    (validity.end..validity.end + vbytes, 0..0)
                }
                Dtype::Int | Dtype::Float => {
                    let need = vbytes + nrows * 8;
                    if plen != pad8(need) {
                        return Err(err(format!("column `{}` has wrong segment size", f.name)));
                    }
                    (validity.end..validity.end + nrows * 8, 0..0)
                }
                Dtype::Str => {
                    let obytes = (nrows + 1) * 8;
                    if plen < vbytes + obytes {
                        return Err(err(format!("column `{}` has wrong segment size", f.name)));
                    }
                    let data = validity.end..validity.end + obytes;
                    let heap_padded = plen - vbytes - obytes;
                    let offsets: &[u64] = cast_slice(&b[data.clone()]);
                    if offsets[0] != 0 {
                        return Err(err(format!("column `{}` offsets do not start at 0", f.name)));
                    }
                    for w in offsets.windows(2) {
                        if w[1] < w[0] {
                            return Err(err(format!(
                                "column `{}` offsets are not monotonic",
                                f.name
                            )));
                        }
                    }
                    let heap_len = offsets[nrows] as usize;
                    if pad8(heap_len) != heap_padded {
                        return Err(err(format!(
                            "column `{}` heap length disagrees with offsets",
                            f.name
                        )));
                    }
                    let heap = data.end..data.end + heap_len;
                    // Validate every cell is UTF-8 once, here, so the hot
                    // accessors can slice with from_utf8_unchecked.
                    let heap_bytes = &b[heap.clone()];
                    for (r, w) in offsets.windows(2).enumerate() {
                        let s = &heap_bytes[w[0] as usize..w[1] as usize];
                        if std::str::from_utf8(s).is_err() {
                            return Err(err(format!(
                                "column `{}` row {r} is not UTF-8",
                                f.name
                            )));
                        }
                    }
                    (data, heap)
                }
            };
            let _ = i;
            cols.push(ColMeta {
                dtype: f.dtype,
                validity,
                data,
                heap,
            });
            at = pend + 8;
        }
        if at != b.len() {
            return Err(err(format!(
                "{} trailing bytes after the last column segment",
                b.len() - at
            )));
        }
        Ok(MappedTable {
            schema,
            nrows,
            cols,
            buf,
            mode,
        })
    }

    /// Schema of the stored table.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Total mapped file bytes.
    pub fn file_bytes(&self) -> usize {
        self.buf.bytes().len()
    }

    /// Backing mode: `"mmap"` or `"read"`.
    pub fn mode(&self) -> &'static str {
        self.mode
    }

    /// Zero-copy view of one column.
    pub fn column_slice(&self, col: usize) -> ColumnSlice<'_> {
        let m = &self.cols[col];
        let b = self.buf.bytes();
        let validity = &b[m.validity.clone()];
        match m.dtype {
            Dtype::Bool => ColumnSlice::Bool {
                validity,
                bits: &b[m.data.clone()],
                len: self.nrows,
            },
            Dtype::Int => ColumnSlice::Int {
                validity,
                data: cast_slice(&b[m.data.clone()]),
            },
            Dtype::Float => ColumnSlice::Float {
                validity,
                data: cast_slice(&b[m.data.clone()]),
            },
            Dtype::Str => ColumnSlice::Str {
                validity,
                offsets: cast_slice(&b[m.data.clone()]),
                heap: &b[m.heap.clone()],
            },
        }
    }

    /// Borrow the cell at (`row`, `col`) zero-copy.
    pub fn value(&self, row: usize, col: usize) -> ValueRef<'_> {
        self.column_slice(col).get(row)
    }

    /// Copy one column out into an in-RAM [`Column`] (the compatibility
    /// path for APIs that need `&Column`; hot paths use
    /// [`MappedTable::column_slice`] instead).
    pub fn materialize_column(&self, col: usize) -> Column {
        let _span = magellan_obs::span("emtbl_scan", col as u64);
        let slice = self.column_slice(col);
        let mut out = Column::with_capacity(self.cols[col].dtype, self.nrows);
        let name = &self.schema.field(col).name;
        for r in 0..self.nrows {
            out.push(slice.get(r).to_owned(), name)
                .expect("dtype matches by construction");
        }
        out
    }
}

/// A zero-copy borrowed view of one stored column: validity bitmap plus
/// the typed data section, sliced straight out of the mapped file.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Boolean column: validity bitmap + value bitmap.
    Bool {
        /// Validity bitmap (bit set ⇒ non-null).
        validity: &'a [u8],
        /// Value bitmap.
        bits: &'a [u8],
        /// Row count (bitmaps are padded past it).
        len: usize,
    },
    /// Integer column.
    Int {
        /// Validity bitmap.
        validity: &'a [u8],
        /// One `i64` per row (zero where null).
        data: &'a [i64],
    },
    /// Float column.
    Float {
        /// Validity bitmap.
        validity: &'a [u8],
        /// One `f64` per row (zero where null).
        data: &'a [f64],
    },
    /// String column: offsets into a shared heap.
    Str {
        /// Validity bitmap.
        validity: &'a [u8],
        /// `nrows + 1` byte offsets into `heap`.
        offsets: &'a [u64],
        /// Concatenated UTF-8 string bytes (validated at open).
        heap: &'a [u8],
    },
}

impl<'a> ColumnSlice<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::Bool { len, .. } => *len,
            ColumnSlice::Int { data, .. } => data.len(),
            ColumnSlice::Float { data, .. } => data.len(),
            ColumnSlice::Str { offsets, .. } => offsets.len() - 1,
        }
    }

    /// True if the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the cell at `row`.
    pub fn get(&self, row: usize) -> ValueRef<'a> {
        assert!(row < self.len(), "row {row} out of bounds");
        match self {
            ColumnSlice::Bool { validity, bits, .. } => {
                if bit(validity, row) {
                    ValueRef::Bool(bit(bits, row))
                } else {
                    ValueRef::Null
                }
            }
            ColumnSlice::Int { validity, data } => {
                if bit(validity, row) {
                    ValueRef::Int(data[row])
                } else {
                    ValueRef::Null
                }
            }
            ColumnSlice::Float { validity, data } => {
                if bit(validity, row) {
                    ValueRef::Float(data[row])
                } else {
                    ValueRef::Null
                }
            }
            ColumnSlice::Str {
                validity,
                offsets,
                heap,
            } => {
                if bit(validity, row) {
                    let s = &heap[offsets[row] as usize..offsets[row + 1] as usize];
                    // SAFETY: every cell was UTF-8-validated at open.
                    ValueRef::Str(unsafe { std::str::from_utf8_unchecked(s) })
                } else {
                    ValueRef::Null
                }
            }
        }
    }

    /// Borrow the string cell at `row` (`None` for nulls and non-string
    /// columns) without constructing a `ValueRef`.
    pub fn str_at(&self, row: usize) -> Option<&'a str> {
        self.get(row).as_str()
    }
}

/// Open an `emtbl` file as a [`Table`] with `Storage::Mapped` backing
/// (named after the file stem, like [`crate::csv::read_csv_path`]).
pub fn open_table(path: impl AsRef<Path>) -> Result<Table> {
    open_table_with(path, OpenMode::Auto)
}

/// Open an `emtbl` file as a [`Table`] with an explicit backing mode.
pub fn open_table_with(path: impl AsRef<Path>, mode: OpenMode) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_owned());
    let map = MappedTable::open_with(path, mode)?;
    Ok(Table::from_mapped(name, Arc::new(map)))
}

// ---------------------------------------------------------------------------
// Columnar batch builder (streaming ingest)
// ---------------------------------------------------------------------------

/// A bounded, typed, columnar staging buffer for streaming ingest.
///
/// Producers (the CSV reader, generators) push validated rows; every
/// `batch_rows` rows the batch is drained into its destination
/// ([`Table::append_batch`] or an `emtbl` writer) so ingest never holds
/// more than one batch of rows beyond the destination's own storage.
#[derive(Debug)]
pub struct ColumnarBuilder {
    schema: Schema,
    batch: Vec<Column>,
    rows: usize,
    batch_rows: usize,
}

impl ColumnarBuilder {
    /// A builder staging up to `batch_rows` rows at a time (0 means
    /// [`DEFAULT_BATCH_ROWS`]).
    pub fn new(schema: Schema, batch_rows: usize) -> Self {
        let batch_rows = if batch_rows == 0 {
            DEFAULT_BATCH_ROWS
        } else {
            batch_rows
        };
        let batch = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, batch_rows))
            .collect();
        ColumnarBuilder {
            schema,
            batch,
            rows: 0,
            batch_rows,
        }
    }

    /// The builder's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows currently staged.
    pub fn staged_rows(&self) -> usize {
        self.rows
    }

    /// True once the batch should be drained via [`ColumnarBuilder::take_batch`].
    pub fn is_full(&self) -> bool {
        self.rows >= self.batch_rows
    }

    /// Append one row, draining `row`. All-or-nothing like
    /// [`Table::push_row`]: on arity or type error nothing is staged.
    pub fn push_row(&mut self, row: &mut Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(TableError::RowArity {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (value, field) in row.iter().zip(self.schema.fields()) {
            if let Some(d) = value.dtype() {
                let ok = d == field.dtype || (d == Dtype::Int && field.dtype == Dtype::Float);
                if !ok {
                    return Err(TableError::TypeMismatch {
                        column: field.name.clone(),
                        expected: field.dtype,
                        found: d,
                    });
                }
            }
        }
        for ((value, col), field) in row
            .drain(..)
            .zip(self.batch.iter_mut())
            .zip(self.schema.fields())
        {
            col.push(value, &field.name)
                .expect("validated before mutation");
        }
        self.rows += 1;
        Ok(())
    }

    /// Drain the staged batch (possibly empty) as same-length columns.
    pub fn take_batch(&mut self) -> Vec<Column> {
        let fresh = self
            .schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, self.batch_rows))
            .collect();
        self.rows = 0;
        std::mem::replace(&mut self.batch, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            "S",
            &[
                ("id", Dtype::Str),
                ("name", Dtype::Str),
                ("age", Dtype::Int),
                ("score", Dtype::Float),
                ("ok", Dtype::Bool),
            ],
            vec![
                vec![
                    "a1".into(),
                    "Dave Smith".into(),
                    Value::Int(40),
                    Value::Float(1.5),
                    Value::Bool(true),
                ],
                vec![
                    "a2".into(),
                    "Jöe Wilsön 💡".into(),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
                vec![
                    "a3".into(),
                    "".into(),
                    Value::Int(-7),
                    Value::Float(-0.25),
                    Value::Bool(false),
                ],
            ],
        )
        .unwrap()
    }

    fn roundtrip(t: &Table, mode: OpenMode) -> Table {
        let dir = std::env::temp_dir().join(format!(
            "emtbl_test_{}_{:?}",
            std::process::id(),
            t.id().raw()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.emtbl");
        write_path(t, &path).unwrap();
        let back = open_table_with(&path, mode).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        back
    }

    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.nrows(), b.nrows());
        for r in 0..a.nrows() {
            for c in 0..a.ncols() {
                assert_eq!(a.value(r, c), b.value(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn roundtrips_all_dtypes_nulls_and_non_ascii() {
        let t = sample();
        for mode in [OpenMode::Auto, OpenMode::Buffered] {
            let back = roundtrip(&t, mode);
            assert_tables_equal(&t, &back);
            // Null string and empty string stay distinct.
            assert!(back.value(1, 4).is_null());
            assert_eq!(back.value(2, 1).as_str(), Some(""));
            assert_eq!(back.value(1, 1).as_str(), Some("Jöe Wilsön 💡"));
        }
    }

    #[test]
    fn roundtrips_empty_table() {
        let t = Table::new(
            "E",
            Schema::from_pairs(&[("a", Dtype::Str), ("b", Dtype::Int)]).unwrap(),
        );
        let back = roundtrip(&t, OpenMode::Buffered);
        assert_eq!(back.nrows(), 0);
        assert_eq!(back.schema(), t.schema());
    }

    #[test]
    fn corruption_is_detected() {
        let t = sample();
        let mut bytes = Vec::new();
        write(&t, &mut bytes).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(MappedTable::parse(to_buf(&bad), "read").is_err());

        // A flipped byte anywhere in a payload fails that column's checksum.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        assert!(MappedTable::parse(to_buf(&bad), "read").is_err());

        // Every strict prefix is rejected (torn write).
        for cut in [1, 8, 20, bytes.len() / 3, bytes.len() - 1] {
            assert!(
                MappedTable::parse(to_buf(&bytes[..cut]), "read").is_err(),
                "prefix of {cut} bytes parsed"
            );
        }

        // Trailing garbage is rejected too.
        let mut bad = bytes.clone();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(MappedTable::parse(to_buf(&bad), "read").is_err());

        // The untouched bytes still parse.
        assert!(MappedTable::parse(to_buf(&bytes), "read").is_ok());
    }

    fn to_buf(bytes: &[u8]) -> Buf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len())
        };
        dst.copy_from_slice(bytes);
        Buf::Owned {
            words,
            len: bytes.len(),
        }
    }

    #[test]
    fn column_slices_are_zero_copy_views() {
        let t = sample();
        let mut bytes = Vec::new();
        write(&t, &mut bytes).unwrap();
        let map = MappedTable::parse(to_buf(&bytes), "read").unwrap();
        match map.column_slice(2) {
            ColumnSlice::Int { data, .. } => assert_eq!(data, &[40, 0, -7]),
            other => panic!("expected int slice, got {other:?}"),
        }
        match map.column_slice(1) {
            ColumnSlice::Str { offsets, .. } => assert_eq!(offsets.len(), 4),
            other => panic!("expected str slice, got {other:?}"),
        }
        assert_eq!(map.value(0, 1).as_str(), Some("Dave Smith"));
    }

    #[test]
    fn mapped_backing_promotes_to_ram_on_mutation() {
        use crate::table::Storage;
        let t = sample();
        let back = roundtrip(&t, OpenMode::Auto);
        assert_eq!(back.storage(), Storage::Mapped);
        // Read paths stay mapped; &Column materializes lazily.
        assert_eq!(back.value(0, 0).as_str(), Some("a1"));
        assert_eq!(back.column_at(2).len(), 3);
        assert_eq!(back.storage(), Storage::Mapped);
        // Mutation promotes to RAM with identical contents.
        let mut back = back;
        back.push_row(vec![
            "a4".into(),
            "New Row".into(),
            Value::Int(1),
            Value::Float(0.5),
            Value::Bool(true),
        ])
        .unwrap();
        assert_eq!(back.storage(), Storage::InRam);
        assert_eq!(back.nrows(), 4);
        for r in 0..3 {
            for c in 0..t.ncols() {
                assert_eq!(t.value(r, c), back.value(r, c));
            }
        }
    }

    #[test]
    fn columnar_builder_batches_and_validates() {
        let schema = Schema::from_pairs(&[("s", Dtype::Str), ("n", Dtype::Int)]).unwrap();
        let mut b = ColumnarBuilder::new(schema.clone(), 2);
        let mut row = vec![Value::from("x"), Value::Int(1)];
        b.push_row(&mut row).unwrap();
        assert!(row.is_empty() && !b.is_full());
        let mut bad = vec![Value::Int(9), Value::Int(1)];
        assert!(b.push_row(&mut bad).is_err());
        assert_eq!(b.staged_rows(), 1);
        let mut row = vec![Value::Null, Value::Int(2)];
        b.push_row(&mut row).unwrap();
        assert!(b.is_full());
        let cols = b.take_batch();
        assert_eq!(cols[0].len(), 2);
        assert_eq!(b.staged_rows(), 0);
    }
}
