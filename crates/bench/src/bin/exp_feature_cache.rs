//! Feature-extraction cache experiment: pairs/sec of the interned
//! tokenize-once-per-record prepared path vs. the per-pair scalar path it
//! replaced, at 1/2/4/8 workers, plus the cache telemetry.
//!
//! Writes `results/exp_feature_cache.txt` (human-readable table) and
//! `BENCH_feature_extraction.json` at the repo root (the ISSUE's
//! before/after record; "before" = the scalar path, byte-for-byte the
//! seed implementation, still compiled in as
//! `extract_feature_matrix_scalar_par`).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_block::{Blocker, OverlapBlocker};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::{
    extract_feature_matrix_par, extract_feature_matrix_scalar_par, extract_with_prepared,
    generate_features, PreparedPair,
};
use magellan_par::ParConfig;
use magellan_textsim::kernels::set_mode;
use magellan_textsim::KernelMode;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let n = if smoke { 250 } else { 1500 };
    let reps = if smoke { 2 } else { 5 };
    let s = persons(&ScenarioConfig {
        size_a: n,
        size_b: n,
        n_matches: n / 4,
        dirt: DirtModel::light(),
        seed: 23,
    });
    let (a, b) = (&s.table_a, &s.table_b);
    let features = generate_features(a, b, &["id"]).expect("features");
    let (cands, _) = OverlapBlocker::words("name", 1)
        .block_par(a, b, &ParConfig::workers(4))
        .expect("blocking");
    let pairs = cands.pairs().to_vec();
    let n_pairs = pairs.len();

    // Bit-identity check before timing anything.
    let (cached_m, cache_stats) =
        extract_feature_matrix_par(&pairs, a, b, &features, &ParConfig::serial()).unwrap();
    let (scalar_m, _) =
        extract_feature_matrix_scalar_par(&pairs, a, b, &features, &ParConfig::serial()).unwrap();
    for (cr, sr) in cached_m.rows.iter().zip(&scalar_m.rows) {
        for (cv, sv) in cr.iter().zip(sr) {
            assert_eq!(cv.to_bits(), sv.to_bits(), "cached path diverged from scalar");
        }
    }

    let mut txt = String::new();
    let mut json_rows = String::new();
    writeln!(
        txt,
        "Feature-extraction cache — {} x {} tuples, {} features, |pairs| = {}",
        a.nrows(),
        b.nrows(),
        features.len(),
        n_pairs
    )
    .unwrap();
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    writeln!(txt, "host exposes {cores} core(s); the w>1 rows measure threading overhead on a 1-core host").unwrap();
    writeln!(
        txt,
        "cache telemetry (serial run): records_prepared={} tokenize_calls={} saved={} interner_tokens={}",
        cache_stats.cache.records_prepared,
        cache_stats.cache.tokenize_calls,
        cache_stats.cache.tokenize_calls_saved,
        cache_stats.cache.interner_tokens
    )
    .unwrap();
    writeln!(txt).unwrap();
    writeln!(
        txt,
        "{:>3}  {:>15}  {:>15}  {:>15}  {:>8}  {:>8}",
        "w", "scalar p/s", "cached p/s", "warm p/s", "speedup", "warm x"
    )
    .unwrap();

    let mut speedup_w1 = 0.0;
    for w in WORKERS {
        let cfg = ParConfig::workers(w);
        let t_scalar = median_secs(reps, || {
            std::hint::black_box(
                extract_feature_matrix_scalar_par(&pairs, a, b, &features, &cfg).unwrap(),
            );
        });
        let t_cached = median_secs(reps, || {
            std::hint::black_box(
                extract_feature_matrix_par(&pairs, a, b, &features, &cfg).unwrap(),
            );
        });
        let mut prepared = PreparedPair::new(a, b);
        extract_with_prepared(&mut prepared, &pairs, &features, &cfg).unwrap();
        let t_warm = median_secs(reps, || {
            std::hint::black_box(
                extract_with_prepared(&mut prepared, &pairs, &features, &cfg).unwrap(),
            );
        });
        let (ps_scalar, ps_cached, ps_warm) = (
            n_pairs as f64 / t_scalar,
            n_pairs as f64 / t_cached,
            n_pairs as f64 / t_warm,
        );
        let speedup = ps_cached / ps_scalar;
        if w == 1 {
            speedup_w1 = speedup;
        }
        writeln!(
            txt,
            "{w:>3}  {ps_scalar:>15.0}  {ps_cached:>15.0}  {ps_warm:>15.0}  {speedup:>7.2}x  {:>7.2}x",
            ps_warm / ps_scalar
        )
        .unwrap();
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        write!(
            json_rows,
            "    {{\"workers\": {w}, \"scalar_pairs_per_sec\": {ps_scalar:.0}, \"cached_pairs_per_sec\": {ps_cached:.0}, \"warm_pairs_per_sec\": {ps_warm:.0}, \"speedup\": {speedup:.2}}}"
        )
        .unwrap();
    }
    // Kernel-tier delta at 1 worker: pin the scalar reference kernels
    // under the interned id-measure path, time it, restore adaptive
    // dispatch. Outputs are bit-identical either way.
    let serial = ParConfig::workers(1);
    set_mode(KernelMode::ScalarReference);
    let t_kscalar = median_secs(reps, || {
        std::hint::black_box(
            extract_feature_matrix_par(&pairs, a, b, &features, &serial).unwrap(),
        );
    });
    set_mode(KernelMode::Adaptive);
    let t_kadaptive = median_secs(reps, || {
        std::hint::black_box(
            extract_feature_matrix_par(&pairs, a, b, &features, &serial).unwrap(),
        );
    });
    let kernel_speedup = t_kscalar / t_kadaptive;

    writeln!(txt).unwrap();
    writeln!(
        txt,
        "kernel tier (w=1): scalar-kernel {t_kscalar:.3}s vs adaptive {t_kadaptive:.3}s -> {kernel_speedup:.2}x"
    )
    .unwrap();
    writeln!(
        txt,
        "speedup at 1 worker: {speedup_w1:.2}x (acceptance floor: 3x cached vs scalar)"
    )
    .unwrap();
    magellan_obs::log!(info, "{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"feature_extraction\",\n  \"workload\": {{\"rows_a\": {}, \"rows_b\": {}, \"n_features\": {}, \"n_pairs\": {n_pairs}, \"reps\": {reps}, \"smoke\": {smoke}}},\n  \"cache\": {{\"records_prepared\": {}, \"tokenize_calls\": {}, \"tokenize_calls_saved\": {}, \"interner_tokens\": {}}},\n  \"kernel_speedup_w1\": {kernel_speedup:.2},\n  \"results\": [\n{json_rows}\n  ]\n}}\n",
        a.nrows(),
        b.nrows(),
        features.len(),
        cache_stats.cache.records_prepared,
        cache_stats.cache.tokenize_calls,
        cache_stats.cache.tokenize_calls_saved,
        cache_stats.cache.interner_tokens,
    );

    // Best-effort writes (CI smoke may run from a read-only checkout).
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_feature_cache.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_feature_extraction.json", &json);
    }
}
