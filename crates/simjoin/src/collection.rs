//! Tokenized collections with frequency-ordered integer token ids.
//!
//! Prefix filtering needs a *global token order* in which rare tokens come
//! first: a set's "prefix" under that order is maximally selective. We
//! tokenize both collections **once per record** into a shared
//! [`TokenInterner`] (the same substrate the prepared feature cache uses),
//! count document frequencies over their union, assign join-local ids
//! rarest-first (ties broken lexicographically for determinism), and store
//! each record as a sorted `Vec<u32>` of those ids.
//!
//! Because interning happens through a caller-suppliable interner
//! ([`TokenizedCollection::build_with_interner`]), several joins over the
//! same columns — e.g. a rule blocker's per-predicate sim-joins — share
//! one vocabulary and skip re-hashing token strings they have already
//! seen. The rarest-first remap is a pure permutation of interner ids, so
//! join results are independent of which interner is supplied.

use std::collections::HashMap;

use magellan_textsim::tokenize::Tokenizer;
use magellan_textsim::TokenInterner;

/// A pair of string collections tokenized under one shared token order.
#[derive(Debug, Clone)]
pub struct TokenizedCollection {
    /// Sorted token-id sets, one per left record (empty for null/empty input).
    pub left: Vec<Vec<u32>>,
    /// Sorted token-id sets, one per right record.
    pub right: Vec<Vec<u32>>,
    /// Number of distinct tokens across both sides.
    pub vocab_size: usize,
}

impl TokenizedCollection {
    /// Tokenize two collections with set semantics and a shared,
    /// rarest-first token order. `None` entries produce empty token sets
    /// (they can never reach a positive similarity threshold).
    pub fn build<S: AsRef<str>>(
        left: &[Option<S>],
        right: &[Option<S>],
        tokenizer: &dyn Tokenizer,
    ) -> Self {
        let mut interner = TokenInterner::new();
        Self::build_with_interner(left, right, tokenizer, &mut interner)
    }

    /// [`TokenizedCollection::build`] through a caller-owned
    /// [`TokenInterner`]: token strings already interned (by an earlier
    /// collection over the same columns, or by the prepared feature cache)
    /// are not re-hashed. The result is **identical** for any interner
    /// contents — the join-local ids are a rarest-first permutation keyed
    /// by `(document frequency, token string)`, both independent of
    /// interner id assignment.
    pub fn build_with_interner<S: AsRef<str>>(
        left: &[Option<S>],
        right: &[Option<S>],
        tokenizer: &dyn Tokenizer,
        interner: &mut TokenInterner,
    ) -> Self {
        let _span = magellan_obs::span("tokenize_collection", 0);
        // Tokenize once per record into sorted deduped interner-id sets.
        let tokenize_side = |side: &[Option<S>], interner: &mut TokenInterner| {
            side.iter()
                .map(|s| match s {
                    Some(s) => interner.intern_set(&tokenizer.tokenize(s.as_ref())),
                    None => Vec::new(),
                })
                .collect::<Vec<Vec<u32>>>()
        };
        let lrecs = tokenize_side(left, interner);
        let rrecs = tokenize_side(right, interner);

        // Document frequency over the union of both sides, keyed by
        // interner id (cheap u32 hashing instead of string hashing).
        let mut df: HashMap<u32, u32> = HashMap::new();
        for rec in lrecs.iter().chain(rrecs.iter()) {
            for &t in rec {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        // Rarest-first, lexicographic tiebreak for determinism. Resolving
        // through the interner recovers the exact ordering the string
        // vocabulary would produce, whatever ids the interner assigned.
        let mut vocab: Vec<(u32, u32)> = df.into_iter().collect();
        vocab.sort_unstable_by(|a, b| {
            a.1.cmp(&b.1)
                .then_with(|| interner.resolve(a.0).cmp(interner.resolve(b.0)))
        });
        let mut rank: HashMap<u32, u32> = HashMap::with_capacity(vocab.len());
        for (i, (id, _)) in vocab.iter().enumerate() {
            rank.insert(*id, i as u32);
        }

        let map_side = |recs: &[Vec<u32>]| -> Vec<Vec<u32>> {
            recs.iter()
                .map(|rec| {
                    let mut ids_rec: Vec<u32> = rec.iter().map(|t| rank[t]).collect();
                    ids_rec.sort_unstable();
                    ids_rec
                })
                .collect()
        };
        magellan_obs::span_res_add("interner_vocab_bytes", interner.vocab_bytes() as u64);
        magellan_obs::gauge_max(
            "magellan_textsim_interner_vocab_bytes",
            interner.vocab_bytes() as f64,
        );
        TokenizedCollection {
            left: map_side(&lrecs),
            right: map_side(&rrecs),
            vocab_size: vocab.len(),
        }
    }
}

/// Exact intersection size of two sorted id sets (merge walk).
pub fn overlap_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::tokenize::WhitespaceTokenizer;

    fn some(items: &[&str]) -> Vec<Option<String>> {
        items.iter().map(|s| Some((*s).to_owned())).collect()
    }

    #[test]
    fn shared_vocabulary_across_sides() {
        let tok = WhitespaceTokenizer::new();
        let c = TokenizedCollection::build(
            &some(&["a b", "b c"]),
            &some(&["c d"]),
            &tok,
        );
        assert_eq!(c.vocab_size, 4);
        assert_eq!(c.left.len(), 2);
        assert_eq!(c.right.len(), 1);
        // Every record's ids are sorted and deduped.
        for rec in c.left.iter().chain(c.right.iter()) {
            let mut sorted = rec.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(*rec, sorted);
        }
    }

    #[test]
    fn rare_tokens_get_small_ids() {
        let tok = WhitespaceTokenizer::new();
        // "common" appears in 3 records, "rare" in 1.
        let c = TokenizedCollection::build(
            &some(&["common rare", "common"]),
            &some(&["common"]),
            &tok,
        );
        // The record with both tokens: the rare token id must come first in
        // sorted order, i.e. have the smaller id.
        let both = &c.left[0];
        assert_eq!(both.len(), 2);
        assert!(both[0] < both[1]);
        // And the singleton records hold the common token = the larger id.
        assert_eq!(c.left[1], vec![both[1]]);
    }

    #[test]
    fn nulls_become_empty_sets() {
        let tok = WhitespaceTokenizer::new();
        let left: Vec<Option<String>> = vec![None, Some("x".to_owned())];
        let c = TokenizedCollection::build(&left, &some(&["x"]), &tok);
        assert!(c.left[0].is_empty());
        assert_eq!(c.left[1], c.right[0]);
    }

    #[test]
    fn overlap_sorted_matches_naive() {
        assert_eq!(overlap_sorted(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(overlap_sorted(&[], &[1]), 0);
        assert_eq!(overlap_sorted(&[4], &[4]), 1);
        assert_eq!(overlap_sorted(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn duplicate_tokens_in_record_are_deduped() {
        let tok = WhitespaceTokenizer::new();
        let c = TokenizedCollection::build(&some(&["a a a b"]), &some(&["a"]), &tok);
        assert_eq!(c.left[0].len(), 2);
    }

    /// The join-local rarest-first order is independent of the supplied
    /// interner's existing contents: a pre-seeded shared interner yields
    /// exactly the same collection as a fresh one.
    #[test]
    fn shared_interner_does_not_change_ids() {
        let tok = WhitespaceTokenizer::new();
        let left = some(&["sony wireless mouse", "apple pencil", "mouse pad"]);
        let right = some(&["sony mouse", "pencil case"]);
        let fresh = TokenizedCollection::build(&left, &right, &tok);

        let mut interner = magellan_textsim::TokenInterner::new();
        // Seed with unrelated and overlapping tokens in scrambled order.
        for t in ["zebra", "mouse", "case", "aardvark", "sony"] {
            interner.intern(t);
        }
        let seeded =
            TokenizedCollection::build_with_interner(&left, &right, &tok, &mut interner);
        assert_eq!(fresh.left, seeded.left);
        assert_eq!(fresh.right, seeded.right);
        assert_eq!(fresh.vocab_size, seeded.vocab_size);
        // The interner accumulated the join's vocabulary on top of the seed.
        assert!(interner.len() >= fresh.vocab_size);
    }
}
