//! Tokenized collections with frequency-ordered integer token ids.
//!
//! Prefix filtering needs a *global token order* in which rare tokens come
//! first: a set's "prefix" under that order is maximally selective. We
//! tokenize both collections, count document frequencies over their union,
//! assign ids rarest-first (ties broken lexicographically for determinism),
//! and store each record as a sorted `Vec<u32>` of token ids.

use std::collections::HashMap;

use magellan_textsim::tokenize::Tokenizer;

/// A pair of string collections tokenized under one shared token order.
#[derive(Debug, Clone)]
pub struct TokenizedCollection {
    /// Sorted token-id sets, one per left record (empty for null/empty input).
    pub left: Vec<Vec<u32>>,
    /// Sorted token-id sets, one per right record.
    pub right: Vec<Vec<u32>>,
    /// Number of distinct tokens across both sides.
    pub vocab_size: usize,
}

impl TokenizedCollection {
    /// Tokenize two collections with set semantics and a shared,
    /// rarest-first token order. `None` entries produce empty token sets
    /// (they can never reach a positive similarity threshold).
    pub fn build<S: AsRef<str>>(
        left: &[Option<S>],
        right: &[Option<S>],
        tokenizer: &dyn Tokenizer,
    ) -> Self {
        let tokenize_side = |side: &[Option<S>]| -> Vec<Vec<String>> {
            side.iter()
                .map(|s| match s {
                    Some(s) => {
                        let mut toks = tokenizer.tokenize(s.as_ref());
                        toks.sort_unstable();
                        toks.dedup();
                        toks
                    }
                    None => Vec::new(),
                })
                .collect()
        };
        let ltoks = tokenize_side(left);
        let rtoks = tokenize_side(right);

        // Document frequency over the union of both sides.
        let mut df: HashMap<&str, u32> = HashMap::new();
        for rec in ltoks.iter().chain(rtoks.iter()) {
            for t in rec {
                *df.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        // Rarest-first, lexicographic tiebreak for determinism.
        let mut vocab: Vec<(&str, u32)> = df.into_iter().collect();
        vocab.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        let ids: HashMap<&str, u32> = vocab
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (*t, i as u32))
            .collect();

        let map_side = |toks: &[Vec<String>]| -> Vec<Vec<u32>> {
            toks.iter()
                .map(|rec| {
                    let mut ids_rec: Vec<u32> =
                        rec.iter().map(|t| ids[t.as_str()]).collect();
                    ids_rec.sort_unstable();
                    ids_rec
                })
                .collect()
        };
        TokenizedCollection {
            left: map_side(&ltoks),
            right: map_side(&rtoks),
            vocab_size: vocab.len(),
        }
    }
}

/// Exact intersection size of two sorted id sets (merge walk).
pub fn overlap_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::tokenize::WhitespaceTokenizer;

    fn some(items: &[&str]) -> Vec<Option<String>> {
        items.iter().map(|s| Some((*s).to_owned())).collect()
    }

    #[test]
    fn shared_vocabulary_across_sides() {
        let tok = WhitespaceTokenizer::new();
        let c = TokenizedCollection::build(
            &some(&["a b", "b c"]),
            &some(&["c d"]),
            &tok,
        );
        assert_eq!(c.vocab_size, 4);
        assert_eq!(c.left.len(), 2);
        assert_eq!(c.right.len(), 1);
        // Every record's ids are sorted and deduped.
        for rec in c.left.iter().chain(c.right.iter()) {
            let mut sorted = rec.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(*rec, sorted);
        }
    }

    #[test]
    fn rare_tokens_get_small_ids() {
        let tok = WhitespaceTokenizer::new();
        // "common" appears in 3 records, "rare" in 1.
        let c = TokenizedCollection::build(
            &some(&["common rare", "common"]),
            &some(&["common"]),
            &tok,
        );
        // The record with both tokens: the rare token id must come first in
        // sorted order, i.e. have the smaller id.
        let both = &c.left[0];
        assert_eq!(both.len(), 2);
        assert!(both[0] < both[1]);
        // And the singleton records hold the common token = the larger id.
        assert_eq!(c.left[1], vec![both[1]]);
    }

    #[test]
    fn nulls_become_empty_sets() {
        let tok = WhitespaceTokenizer::new();
        let left: Vec<Option<String>> = vec![None, Some("x".to_owned())];
        let c = TokenizedCollection::build(&left, &some(&["x"]), &tok);
        assert!(c.left[0].is_empty());
        assert_eq!(c.left[1], c.right[0]);
    }

    #[test]
    fn overlap_sorted_matches_naive() {
        assert_eq!(overlap_sorted(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(overlap_sorted(&[], &[1]), 0);
        assert_eq!(overlap_sorted(&[4], &[4]), 1);
        assert_eq!(overlap_sorted(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn duplicate_tokens_in_record_are_deduped() {
        let tok = WhitespaceTokenizer::new();
        let c = TokenizedCollection::build(&some(&["a a a b"]), &some(&["a"]), &tok);
        assert_eq!(c.left[0].len(), 2);
    }
}
