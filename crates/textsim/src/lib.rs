//! # magellan-textsim
//!
//! Tokenizers and string similarity measures: the Rust analog of Magellan's
//! `py_stringmatching` package (Appendix A of the SIGMOD '19 paper), which
//! the blockers and the automatic feature generator "heavily use".
//!
//! Three families of measures are provided, mirroring the package:
//!
//! * **sequence-based** ([`seqsim`]): Levenshtein, Jaro, Jaro–Winkler,
//!   Needleman–Wunsch, Smith–Waterman, affine-gap, Hamming;
//! * **set/token-based** ([`setsim`]): Jaccard, Dice, cosine, overlap
//!   coefficient, Monge–Elkan;
//! * **corpus-based** ([`corpsim`]): TF-IDF and soft TF-IDF over a fitted
//!   document-frequency model.
//!
//! Tokenizers ([`tokenize`]) cover whitespace, delimiter, q-gram
//! (padded/unpadded), and alphanumeric tokenization, each with an optional
//! set-semantics mode, matching `py_stringmatching`'s `return_set` flag.
//!
//! For batch workloads, [`intern`] provides the shared [`TokenInterner`]
//! (token → dense `u32` id) plus allocation-free merge-intersection
//! kernels over sorted id sets — bit-identical to the [`setsim`] string
//! measures on the same token sets, and the substrate of the
//! tokenize-once-per-record prepared caches in `magellan-features`,
//! `magellan-simjoin`, and `magellan-block`.

#![warn(missing_docs)]

pub mod corpsim;
pub mod intern;
pub mod kernels;
pub mod numeric;
pub mod seqsim;
pub mod setsim;
pub mod tokenize;

pub use corpsim::TfIdfModel;
pub use intern::TokenInterner;
pub use kernels::{Kernel, KernelCounters, KernelMode};
pub use tokenize::{
    AlphanumericTokenizer, DelimiterTokenizer, QgramTokenizer, Tokenizer, WhitespaceTokenizer,
};
