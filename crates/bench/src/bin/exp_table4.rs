//! Table 4 — the list of CloudMatcher services (basic + composite), from
//! the live service registry.

use magellan_falcon::services::{services, ServiceKind};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    magellan_obs::log!(info, "Table 4 analog — CloudMatcher services");
    for kind in [ServiceKind::Basic, ServiceKind::Composite] {
        magellan_obs::log!(info, 
            "\n== {} services ==",
            match kind {
                ServiceKind::Basic => "basic",
                ServiceKind::Composite => "composite",
            }
        );
        for s in services().into_iter().filter(|s| s.kind == kind) {
            magellan_obs::log!(info, "  {:26} [{:?}] {}", s.name, s.engine, s.description);
            magellan_obs::log!(info, "  {:26}  impl: {}", "", s.implemented_by);
            if !s.composes.is_empty() {
                magellan_obs::log!(info, "  {:26}  composes: {}", "", s.composes.join(", "));
            }
        }
    }
    let n_basic = services().iter().filter(|s| s.kind == ServiceKind::Basic).count();
    let n_comp = services().iter().filter(|s| s.kind == ServiceKind::Composite).count();
    magellan_obs::log!(info, "\n{n_basic} basic + {n_comp} composite services (paper: 18 basic + composites incl. Falcon)");
}
