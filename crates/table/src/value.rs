//! Cell values and data types.

use std::fmt;

/// The data type of a [`crate::Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// Boolean cells.
    Bool,
    /// 64-bit signed integer cells.
    Int,
    /// 64-bit IEEE-754 float cells.
    Float,
    /// UTF-8 string cells.
    Str,
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dtype::Bool => "bool",
            Dtype::Int => "int",
            Dtype::Float => "float",
            Dtype::Str => "str",
        };
        f.write_str(s)
    }
}

/// An owned cell value. `Null` is a first-class citizen because real EM
/// inputs are full of missing values (§6 of the paper lists missing values
/// among the interoperability challenges).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The dtype this value would occupy, or `None` for `Null` (a null fits
    /// any column).
    pub fn dtype(&self) -> Option<Dtype> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(Dtype::Bool),
            Value::Int(_) => Some(Dtype::Int),
            Value::Float(_) => Some(Dtype::Float),
            Value::Str(_) => Some(Dtype::Str),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow this value as a [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Str(s) => ValueRef::Str(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(f)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Value::from)
    }
}

/// A borrowed cell value: what [`crate::Table::value`] hands out without
/// cloning string data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// Missing value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Borrowed string value.
    Str(&'a str),
}

impl<'a> ValueRef<'a> {
    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Borrow as `&str` when the cell holds a string.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integer when the cell holds one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ValueRef::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float; integers widen losslessly (within f64 precision),
    /// matching the numeric coercion feature generators rely on.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ValueRef::Float(f) => Some(*f),
            ValueRef::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a boolean when the cell holds one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ValueRef::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Promote to an owned [`Value`].
    pub fn to_owned(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Str(s) => Value::Str((*s).to_owned()),
        }
    }

    /// Render the cell the way the CSV writer and displays do: nulls become
    /// the empty string.
    pub fn display_string(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Null => Ok(()),
            ValueRef::Bool(b) => write!(f, "{b}"),
            ValueRef::Int(i) => write!(f, "{i}"),
            ValueRef::Float(x) => write!(f, "{x}"),
            ValueRef::Str(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Bool(true).dtype(), Some(Dtype::Bool));
        assert_eq!(Value::Int(3).dtype(), Some(Dtype::Int));
        assert_eq!(Value::Float(0.5).dtype(), Some(Dtype::Float));
        assert_eq!(Value::Str("x".into()).dtype(), Some(Dtype::Str));
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
    }

    #[test]
    fn value_ref_roundtrip() {
        let v = Value::Str("hello".into());
        let r = v.as_ref();
        assert_eq!(r.as_str(), Some("hello"));
        assert_eq!(r.to_owned(), v);
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(ValueRef::Int(4).as_float(), Some(4.0));
        assert_eq!(ValueRef::Str("4").as_float(), None);
    }

    #[test]
    fn null_displays_empty() {
        assert_eq!(ValueRef::Null.display_string(), "");
        assert_eq!(ValueRef::Int(-2).display_string(), "-2");
    }
}
